"""Quickstart: the whole paper in ~30 lines.

Builds a small synthetic Korean Twitter corpus, runs the correlation
study (profile location vs tweet GPS districts), and prints the paper's
two figures plus the learned reliability weight factors.

Run:  python examples/quickstart.py
"""

from repro import (
    ReliabilityTable,
    render_fig6,
    render_fig7,
    run_korean_study,
)
from repro.datasets import KoreanDatasetConfig
from repro.twitter import CollectionWindow


def main() -> None:
    config = KoreanDatasetConfig(
        population_size=1_500,
        crawl_limit=1_200,
        window=CollectionWindow(start_ms=1_314_835_200_000, days=60),
        use_api_timelines=False,  # bulk-load timelines; fast path
        seed=7,
    )
    output = run_korean_study(config)
    study = output.study

    print(f"dataset: {output.dataset.summary.name}")
    print(f"  crawled users:     {output.dataset.summary.user_count}")
    print(f"  tweets collected:  {output.dataset.summary.tweet_count}")
    print(f"  geotagged tweets:  {output.dataset.summary.geotagged_tweet_count}")
    print(f"  final study users: {study.funnel.study_users}")
    print()
    print(render_fig7(study.statistics))
    print()
    print(render_fig6(study.statistics))
    print()

    table = ReliabilityTable.from_statistics(study.statistics)
    print("reliability weight factors (P[tweet posted at profile district]):")
    for group_label, weight in table.as_dict().items():
        print(f"  {group_label:<8} {weight:.3f}")

    top12 = study.statistics.user_share(
        *[row.group for row in study.statistics.rows[:2]]
    )
    none_share = study.statistics.rows[-1].user_share
    print()
    print(
        f"headline: {top12:.0%} of users post most tweets at their profile "
        f"location (Top-1+Top-2); {none_share:.0%} never tweet there (None)."
    )


if __name__ == "__main__":
    main()
