"""Query a running `repro fleet` front — stdlib only.

Start a fleet in one terminal:

    PYTHONPATH=src python -m repro study --save study.json
    PYTHONPATH=src python -m repro fleet run --snapshot study.json \
        --replicas 3 --port 8090

then run this client against it:

    python examples/fleet_client.py http://127.0.0.1:8090

It walks the fleet surface: fleet health (per-replica rows), a few
proxied data queries (byte-identical to what any single replica would
answer), rollout status, and the fleet's own routing/retry metrics.
Pass a second argument — a saved study path *on the server's machine* —
to trigger a health-gated publish and watch it promote or roll back:

    python examples/fleet_client.py http://127.0.0.1:8090 study_v2.json
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.parse
import urllib.request


def call(base: str, path: str, method: str = "GET") -> tuple[int, dict]:
    """One request; JSON body either way (errors are JSON too)."""
    request = urllib.request.Request(base + path, method=method)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> int:
    base = sys.argv[1] if len(sys.argv) > 1 else "http://127.0.0.1:8090"
    snapshot = sys.argv[2] if len(sys.argv) > 2 else None
    print(f"querying fleet front at {base}")

    _, health = call(base, "/fleet/healthz")
    print(f"fleet: {health['status']} — {health['routable']} routable, "
          f"route={health['route']}"
          + (f", serving version {health['version']}"
             if health.get("version") else ""))
    for row in health["replicas"]:
        print(f"  {row['id']}: {row['host']}:{row['port']} [{row['state']}]")

    # Data requests go through the front and proxy byte-for-byte to a
    # replica — same endpoints, same bodies as `repro serve` itself.
    _, stats = call(base, "/stats")
    print(f"proxied /stats: {sum(r['users'] for r in stats['statistics'].values())} "
          f"users under snapshot {stats['version']}")
    _, regions = call(base, "/regions")
    print(f"proxied /regions: {len(regions['regions'])} regions")

    status_code, rollout = call(base, "/fleet/status")
    if status_code == 200:
        print(f"rollout state: {rollout['state']}"
              + (f" (last: promoted={rollout['last_rollout']['promoted']}, "
                 f"verdict={rollout['last_rollout'].get('verdict')})"
                 if rollout.get("last_rollout") else ""))

    if snapshot is not None:
        quoted = urllib.parse.quote(snapshot, safe="")
        code, body = call(base, f"/fleet/publish?snapshot={quoted}", "POST")
        if code != 202:
            print(f"publish refused ({code}): {body.get('error')}")
            return 1
        print(f"publish accepted (gated={body['gated']}); shadowing needs "
              "live traffic — offering some while we wait...")
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            call(base, "/stats")          # feeds the shadow mirror
            _, rollout = call(base, "/fleet/status")
            if rollout["state"] == "idle":
                last = rollout["last_rollout"]
                print(f"rollout finished: promoted={last['promoted']} "
                      f"verdict={last.get('verdict')}"
                      + (f" error={last['error']}" if last.get("error") else ""))
                break
            time.sleep(0.2)
        else:
            print("rollout still running after 120s; check /fleet/status")

    _, metrics = call(base, "/fleet/metrics")
    counters = metrics["metrics"]
    print(f"fleet metrics: {counters.get('fleet.requests', 0)} requests, "
          f"{counters.get('fleet.retries', 0)} retries, "
          f"{counters.get('fleet.replicas_healthy', 0)} healthy replicas, "
          f"p95 {counters.get('fleet.latency.p95', 0) * 1e3:.1f}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
