"""Query a running `repro serve` instance — stdlib only.

Start a server in one terminal:

    PYTHONPATH=src python -m repro study --save study.json
    PYTHONPATH=src python -m repro serve --snapshot study.json --port 8080

then run this client against it:

    python examples/serving_client.py http://127.0.0.1:8080

It walks the API surface: health, the dataset overview, one user's match
record, one region's agreement stats, a reverse-geocode, and the
server's own latency/admission metrics.  Every snapshot-backed response
carries the snapshot's content version — the client checks they all
agree, which is exactly the consistency a hot-swap must preserve.
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.parse
import urllib.request


def get(base: str, path: str, quiet: bool = False) -> dict:
    """One GET; JSON body either way (errors are JSON too)."""
    try:
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = json.loads(error.read())
        if not quiet:
            print(f"  ({error.code} on {path}: {body.get('error')})")
        return body


def main() -> int:
    base = sys.argv[1] if len(sys.argv) > 1 else "http://127.0.0.1:8080"
    print(f"querying {base}")

    health = get(base, "/healthz")
    print(f"health: {health['status']} — dataset {health['dataset']!r}, "
          f"snapshot {health['version']} (generation {health['generation']})")

    overview = get(base, "/")
    print(f"study: {overview['users']} users, {overview['tweets']} tweets, "
          f"{overview['regions']} regions")
    print(f"reliability weights: {overview['reliability']}")

    versions = {health["version"]}

    # Pick a real user and region off the listing endpoints.
    regions = get(base, "/regions")
    versions.add(regions["version"])
    if regions["regions"]:
        top = max(regions["regions"], key=lambda row: row["users"])
        region = get(base, f"/region?state={urllib.parse.quote(top['state'])}")
        versions.add(region["version"])
        print(f"largest region: {region['state']} — {region['users']} users, "
              f"top-1 share {region['top1_share']:.1%}, "
              f"matched share {region['matched_share']:.1%}")

    stats = get(base, "/stats")
    versions.add(stats["version"])
    some_user = None
    for label, row in stats["statistics"].items():
        print(f"  {label:<8} {row['users']:>5} users  "
              f"avg locations {row['avg_tweet_locations']:.2f}")

    # /lookup wants a user id; probe a few until one resolves (the 404s
    # along the way are expected — ids are sparse).
    for user_id in range(1000, 1200):
        body = get(base, f"/lookup?user={user_id}", quiet=True)
        if "user_id" in body:
            some_user = body
            versions.add(body["version"])
            break
    if some_user is not None:
        print(f"user {some_user['user_id']}: group {some_user['group']}, "
              f"matched {some_user['matched_string']!r} "
              f"(rank {some_user['matched_rank']}), "
              f"weight {some_user['weight']:.3f}")

    reverse = get(base, "/reverse?lat=37.5665&lon=126.978")
    versions.add(reverse["version"])
    if reverse.get("resolved"):
        print(f"reverse(37.5665, 126.978) -> {reverse['state']} {reverse['county']}")
    else:
        print("reverse(37.5665, 126.978) -> unresolved (world gazetteer not loaded?)")

    metrics = get(base, "/metrics")["metrics"]
    served = metrics.get("serving.requests", 0)
    shed = metrics.get("serving.shed", 0)
    p95 = metrics.get("serving.latency.lookup.p95")
    print(f"server metrics: {served} requests, {shed} shed"
          + (f", lookup p95 {p95 * 1e6:.0f}us" if p95 else ""))

    if len(versions) == 1:
        print(f"all responses consistent with snapshot {versions.pop()}")
    else:
        print(f"note: responses span snapshot versions {sorted(versions)} "
              "(a hot-swap happened mid-walk — each response is still "
              "internally consistent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
