"""The full Korean-dataset study, step by step.

Unlike the quickstart's one-call pipeline, this example walks the stages
the paper describes, exercising each public API on the way:

1. generate the platform (population, follower graph, tweets);
2. crawl users breadth-first from a seed through the simulated REST API,
   surviving rate limits;
3. persist the collected corpus to JSONL and reload it (the collection /
   analysis phases of the real study were separate programs);
4. refine per Section III-B, reverse-geocoding GPS tweets through the
   simulated Yahoo PlaceFinder (XML round trip, cache, quota);
5. group users with the text-based grouping method and print every
   Korean-dataset artefact (Figs. 6-7, tweets-per-group, funnel).

Run:  python examples/korean_study.py
"""

import tempfile
from pathlib import Path

from repro.analysis import (
    render_fig6,
    render_fig7,
    render_funnel,
    render_tweet_distribution,
    run_study,
)
from repro.datasets import KoreanDatasetConfig, build_korean_dataset
from repro.geo import Gazetteer, ReverseGeocoder
from repro.storage import TweetStore, UserStore
from repro.twitter import CollectionWindow
from repro.yahooapi import PlaceFinderClient


def main() -> None:
    # Stages 1-2: build the platform and crawl it (the builder runs the
    # crawler internally; crawl provenance is kept on the dataset).
    config = KoreanDatasetConfig(
        population_size=2_500,
        crawl_limit=2_000,
        window=CollectionWindow(start_ms=1_314_835_200_000, days=60),
        use_api_timelines=True,  # fetch timelines through the API simulator
        seed=7,
    )
    dataset = build_korean_dataset(config)
    crawl = dataset.crawl
    print("collection phase")
    print(f"  crawled users:          {len(dataset.users)}")
    print(f"  follower-page API calls: {crawl.api_calls}")
    print(f"  rate-limit waits:        {crawl.rate_limit_waits}")
    print(f"  simulated crawl time:    {crawl.simulated_duration_s / 3600:.1f} h")
    print(f"  tweets collected:        {len(dataset.tweets)}")
    print(f"  GPS-tagged tweets:       {dataset.tweets.gps_count()}")

    # Stage 3: persist and reload, as a real two-phase study would.
    with tempfile.TemporaryDirectory() as tmp:
        users_path = Path(tmp) / "users.jsonl"
        tweets_path = Path(tmp) / "tweets.jsonl"
        dataset.users.save(users_path)
        dataset.tweets.save(tweets_path)
        users = UserStore.load(users_path)
        tweets = TweetStore.load(tweets_path)
    print(f"  reloaded from JSONL:     {len(users)} users, {len(tweets)} tweets")
    print()

    # Stages 4-5: refinement + grouping, with explicit PlaceFinder client
    # so its usage statistics can be reported.
    gazetteer = Gazetteer.korean()
    placefinder = PlaceFinderClient(ReverseGeocoder(gazetteer), daily_quota=10**9)
    study = run_study(
        users, tweets, gazetteer, dataset_name="Korean", placefinder=placefinder
    )

    print(render_funnel(study.funnel))
    print()
    print("PlaceFinder usage:", placefinder.stats.snapshot())
    print()
    print(render_fig7(study.statistics))
    print()
    print(render_fig6(study.statistics))
    print()
    print(render_tweet_distribution(study.statistics))


if __name__ == "__main__":
    main()
