"""Poll a running `repro live` instance's freshness metrics — stdlib only.

Start the live pipeline in one terminal (paced so swaps are visible):

    PYTHONPATH=src python -m repro live --dataset korean \
        --state-dir ./live_state --cadence 8 --pace-ms 20 --port 8080

then run this dashboard against it:

    python examples/live_dashboard_client.py http://127.0.0.1:8080

Every second it reads `/metrics` and `/healthz` and prints one line of
the loop's vital signs: the serving generation and snapshot version,
how long ago the last swap landed (`serving.snapshot.age_seconds`), how
many batches the served snapshot trails the stream by
(`live.snapshot_age_batches`), the rebuild backlog (`live.dirty_users`),
and the publish cost (`live.swap_lag_seconds`).  A healthy pipeline
shows the generation climbing while age and backlog keep returning to
zero; a wedged one shows age growing without bound — which is the whole
point of exporting these gauges.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request


def get(base: str, path: str) -> dict:
    """One GET; JSON body either way (errors are JSON too)."""
    try:
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        return json.loads(error.read())


def main() -> int:
    base = sys.argv[1] if len(sys.argv) > 1 else "http://127.0.0.1:8080"
    interval_s = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    print(f"polling {base} every {interval_s:g}s — ctrl-C to stop", flush=True)
    print(f"{'gen':>5} {'version':<16} {'age_s':>7} {'behind':>7} "
          f"{'dirty':>6} {'lag_ms':>7} {'swaps':>6} {'skip':>5} {'fail':>5}",
          flush=True)

    last_generation = None
    try:
        while True:
            health = get(base, "/healthz")
            metrics = get(base, "/metrics").get("metrics", {})
            generation = health.get("generation", 0)
            marker = " *" if generation != last_generation else ""
            last_generation = generation
            print(
                f"{generation:>5} {health.get('version', '?'):<16} "
                f"{metrics.get('serving.snapshot.age_seconds', 0.0):>7.1f} "
                f"{int(metrics.get('live.snapshot_age_batches', 0)):>7} "
                f"{int(metrics.get('live.dirty_users', 0)):>6} "
                f"{metrics.get('live.swap_lag_seconds', 0.0) * 1e3:>7.1f} "
                f"{int(metrics.get('live.swaps', 0)):>6} "
                f"{int(metrics.get('live.swaps_skipped', 0)):>5} "
                f"{int(metrics.get('live.build_failures', 0)):>5}"
                f"{marker}",
                flush=True,
            )
            time.sleep(interval_s)
    except KeyboardInterrupt:
        print("\nstopped")
    except (urllib.error.URLError, OSError) as error:
        print(f"\nserver unreachable: {error}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
