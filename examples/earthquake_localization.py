"""Reliability-weighted earthquake localisation (the paper's future work).

The paper's closing claim (§V): using the Top-k study to "determine the
weight factor for the location information ... might be helpful to
improve the performance for the event location estimation".  This example
runs that experiment end to end:

1. run the Korean correlation study and learn the per-group weights;
2. simulate earthquakes with known epicentres; witnesses are the study's
   own users placed by their empirical tweet-district distributions;
3. detect each event through the Toretter pipeline (classifier + burst
   detector) and report alarm latency;
4. localise each event with four estimators (weighted centroid,
   geographic median, Kalman filter, particle filter) under three
   weighting schemes, and compare errors against the true epicentre.

Run:  python examples/earthquake_localization.py
"""

from repro.datasets import KoreanDatasetConfig
from repro.events import (
    LocalizationExperiment,
    make_korean_scenarios,
    mean_error_by_scheme,
    render_localization_table,
)
from repro.analysis.reliability import WeightingScheme
from repro.pipelines import run_korean_study
from repro.twitter import CollectionWindow


def main() -> None:
    output = run_korean_study(
        KoreanDatasetConfig(
            population_size=3_000,
            crawl_limit=2_400,
            window=CollectionWindow(start_ms=1_314_835_200_000, days=60),
            use_api_timelines=False,
        )
    )
    study = output.study
    print(f"study users: {study.funnel.study_users}")

    experiment = LocalizationExperiment(
        study,
        output.dataset.gazetteer,
        study.profile_districts,
        gps_rate=0.2,
    )
    print("learned weight factors:", experiment.reliability_table.as_dict())
    print()

    scenarios = make_korean_scenarios(output.dataset.gazetteer)

    # Detection: Toretter alarm path.
    for outcome in experiment.run_detection(scenarios):
        if outcome.detected:
            assert outcome.latency_ms is not None
            print(
                f"{outcome.scenario_name:<14} detected after "
                f"{outcome.latency_ms / 60000:.1f} min "
                f"({outcome.positive_reports} positive reports)"
            )
        else:
            print(
                f"{outcome.scenario_name:<14} NOT detected "
                f"({outcome.positive_reports} positive reports)"
            )
    print()

    # Localisation: estimators x weighting schemes.
    outcomes = experiment.run_localization(scenarios)
    print(render_localization_table(outcomes))
    print()

    means = mean_error_by_scheme(outcomes)
    uniform = means[("kalman", WeightingScheme.UNIFORM)]
    weighted = means[("kalman", WeightingScheme.GROUP_MATCHED_SHARE)]
    print(
        f"Kalman filter: weighting profile locations by the study's "
        f"group weights cuts mean error from {uniform:.1f} km to "
        f"{weighted:.1f} km ({uniform / max(weighted, 0.001):.1f}x better)."
    )


if __name__ == "__main__":
    main()
