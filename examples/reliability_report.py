"""Full reliability report: the study plus every extension analysis.

This is the workflow a downstream event-detection team would actually
run: build the study once, persist it, then analyse the saved result —
confidence intervals on the headline shares, region-conditional
reliability, and the temporal stability of the weight factors.

Run:  python examples/reliability_report.py
"""

import tempfile
from pathlib import Path

from repro.analysis import (
    ReliabilityTable,
    bootstrap_share_intervals,
    load_study,
    regional_breakdown,
    render_fig7,
    render_regional_breakdown,
    render_stability,
    save_study,
    split_half_stability,
)
from repro.datasets import KoreanDatasetConfig
from repro.geo import Gazetteer
from repro.pipelines import run_korean_study
from repro.twitter import CollectionWindow


def main() -> None:
    output = run_korean_study(
        KoreanDatasetConfig(
            population_size=2_500,
            crawl_limit=2_000,
            window=CollectionWindow(start_ms=1_314_835_200_000, days=60),
            use_api_timelines=False,
        )
    )

    # Persist and reload — analysis never re-runs collection.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "korean_study.json"
        save_study(output.study, path)
        print(f"study saved ({path.stat().st_size / 1024:.0f} KiB); reloading...")
        study = load_study(path, Gazetteer.korean())

    print()
    print(render_fig7(study.statistics))
    print()

    print("95% bootstrap confidence intervals on user shares:")
    for group, ci in bootstrap_share_intervals(study.groupings.values()).items():
        print(f"  {group.value:<8} {ci.share:7.2%}  [{ci.low:6.2%}, {ci.high:6.2%}]")
    print()

    table = ReliabilityTable.from_statistics(study.statistics)
    print("weight factors an event system would load:", table.as_dict())
    print()

    rows = regional_breakdown(study.groupings, study.profile_districts, min_users=15)
    print(render_regional_breakdown(rows))
    print()

    print(render_stability(split_half_stability(study.observations)))


if __name__ == "__main__":
    main()
