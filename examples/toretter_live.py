"""Live Toretter: streaming detection with reliability-weighted location.

Simulates the deployed system the paper aims to improve: the platform's
full tweet stream flows through an online detector (keyword filter ->
classifier -> sliding-window alarm), and when an earthquake injected into
the stream trips the alarm, the event is localised from the window's
tweets — GPS fixes at weight 1.0, profile districts at the weight the
correlation study learned for each author.

Run:  python examples/toretter_live.py
"""

from repro.analysis import ReliabilityTable
from repro.datasets import KoreanDatasetConfig
from repro.events import EventTweetInjector, OnlineEventDetector, make_korean_scenarios
from repro.pipelines import run_korean_study
from repro.twitter import CollectionWindow

WINDOW = CollectionWindow(start_ms=1_314_835_200_000, days=45)


def main() -> None:
    # Phase 1 (offline): the paper's study — learn the weight factors.
    output = run_korean_study(
        KoreanDatasetConfig(
            population_size=2_000,
            crawl_limit=1_600,
            window=WINDOW,
            use_api_timelines=False,
        )
    )
    study = output.study
    table = ReliabilityTable.from_statistics(study.statistics)
    print(f"offline study: {study.statistics.total_users} users grouped; "
          f"weights: {table.as_dict()}")

    # Phase 2 (online): an earthquake hits mid-stream.
    scenario = make_korean_scenarios(
        output.dataset.gazetteer, onset_ms=WINDOW.start_ms + 20 * 86_400_000
    )[0]
    injector = EventTweetInjector(output.dataset.gazetteer, gps_rate=0.2)
    stream = injector.inject(scenario, study.groupings, list(output.dataset.tweets))
    print(f"stream: {len(stream)} tweets "
          f"(quake '{scenario.name}' injected at t={scenario.onset_ms})")

    detector = OnlineEventDetector(
        reliability=table,
        profile_districts=study.profile_districts,
        groupings=study.groupings,
        alarm_threshold=4,
    )
    stats = detector.run(stream)

    print(f"pipeline: {stats.tweets_seen} tweets seen, "
          f"{stats.keyword_hits} keyword hits, "
          f"{stats.classified_positive} classified positive")
    if not stats.alarms:
        print("no alarm raised")
        return
    for alarm in stats.alarms:
        latency_min = (alarm.triggered_at_ms - scenario.onset_ms) / 60_000
        line = (
            f"ALARM at +{latency_min:.1f} min "
            f"({alarm.window_positive_count} positives in window; "
            f"{alarm.gps_measurements} GPS, "
            f"{alarm.profile_measurements} weighted profiles)"
        )
        if alarm.estimate is not None:
            error_km = alarm.estimate.distance_km(scenario.epicenter)
            line += f" -> estimate {error_km:.1f} km from true epicentre"
        print(line)


if __name__ == "__main__":
    main()
