"""The worldwide streaming dataset and the two-dataset comparison.

Reproduces the slide-deck extension of the paper: collect a second corpus
through the Streaming API's ``track`` filter on a celebrity keyword, run
the same correlation study over its worldwide city gazetteer, and print
the Korean-vs-Lady-Gaga comparison figures (slides 4-5).

Run:  python examples/ladygaga_stream.py
"""

from repro.analysis import render_comparison, render_dataset_summary
from repro.datasets import KoreanDatasetConfig, LadyGagaDatasetConfig
from repro.pipelines import run_korean_study, run_ladygaga_study
from repro.twitter import CollectionWindow

WINDOW = CollectionWindow(start_ms=1_314_835_200_000, days=60)


def main() -> None:
    korean = run_korean_study(
        KoreanDatasetConfig(
            population_size=2_000,
            crawl_limit=1_600,
            window=WINDOW,
            use_api_timelines=False,
        )
    )
    ladygaga = run_ladygaga_study(
        LadyGagaDatasetConfig(population_size=2_000, window=WINDOW)
    )

    print(render_dataset_summary(korean.dataset.summary, ladygaga.dataset.summary))
    print()
    stats = ladygaga.dataset.stream_stats
    print(
        f"stream filter: delivered {stats.delivered} tweets, "
        f"filtered out {stats.filtered_out} "
        f"(track={ladygaga.dataset.summary.extra['track']!r})"
    )
    print()
    print(
        render_comparison(
            korean.study.statistics, ladygaga.study.statistics, metric="user_share"
        )
    )
    print()
    print(
        render_comparison(
            korean.study.statistics,
            ladygaga.study.statistics,
            metric="avg_tweet_locations",
        )
    )
    print()
    korean_top1 = korean.study.statistics.rows[0].user_share
    gaga_top1 = ladygaga.study.statistics.rows[0].user_share
    print(
        f"note: the streaming sample's study population is small and "
        f"fan-skewed (Top-1 {gaga_top1:.0%} vs Korean {korean_top1:.0%}); "
        f"its users contribute far fewer tweets each, as in the slides."
    )


if __name__ == "__main__":
    main()
