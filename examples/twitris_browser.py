"""Twitris-style spatio-temporal-thematic browsing.

Reproduces the other related system the paper builds on (§II): Twitris
extracts the TF-IDF-strongest terms per (location, day) slice of the
tweet stream — the "when / where / what" browsing of its Fig. 1.  Here we
ingest the Korean corpus, then inject an earthquake day in one district
and show its themes surfacing to the top of that slice.

Run:  python examples/twitris_browser.py
"""

from repro.datasets import KoreanDatasetConfig, build_korean_dataset
from repro.events import TwitrisSummarizer
from repro.geo import Gazetteer, ReverseGeocoder
from repro.twitter import CollectionWindow, Tweet
from repro.twitter.idgen import SnowflakeGenerator


def main() -> None:
    window = CollectionWindow(start_ms=1_314_835_200_000, days=30)
    dataset = build_korean_dataset(
        KoreanDatasetConfig(
            population_size=1_200,
            crawl_limit=1_000,
            window=window,
            use_api_timelines=False,
        )
    )
    gazetteer = Gazetteer.korean()
    summarizer = TwitrisSummarizer(ReverseGeocoder(gazetteer))

    sliced = summarizer.ingest(list(dataset.tweets))
    print(f"ingested {len(dataset.tweets)} tweets; {sliced} landed in slices")

    # Inject an event day: earthquake chatter from Gangnam-gu.
    gangnam = gazetteer.get("Seoul", "Gangnam-gu")
    idgen = SnowflakeGenerator(worker_id=9)
    event_day_ms = window.start_ms + 10 * 86_400_000
    event_texts = [
        "earthquake!! the whole building in gangnam is shaking",
        "strong earthquake just hit, everyone outside",
        "did you feel that earthquake just now? so scary",
        "earthquake again, things falling everywhere",
        "big earthquake, the shaking lasted forever",
    ]
    event_tweets = [
        Tweet(
            tweet_id=idgen.next_id(event_day_ms + i * 60_000),
            user_id=999_000 + i,
            created_at_ms=event_day_ms + i * 60_000,
            text=text,
            coordinates=gangnam.center,
            true_state=gangnam.state,
            true_county=gangnam.name,
        )
        for i, text in enumerate(event_texts)
    ]
    summarizer.ingest(event_tweets)

    print()
    print("top themes per (district, day) slice — busiest slices first:")
    summaries = summarizer.summarize_all(top_k=4, min_tweets=4)
    summaries.sort(key=lambda s: -s.tweet_count)
    for summary in summaries[:8]:
        terms = ", ".join(t.term for t in summary.top_terms)
        print(
            f"  day {summary.key.day}  {summary.key.state}/{summary.key.county:<16}"
            f" ({summary.tweet_count:3d} tweets): {terms}"
        )

    print()
    event_key = next(
        k
        for k in summarizer.slice_keys()
        if k.county == "Gangnam-gu" and k.day == event_day_ms // 86_400_000
    )
    event_summary = summarizer.summarize(event_key, top_k=5)
    print(
        f"event slice {event_summary.key.state}/{event_summary.key.county} "
        f"day {event_summary.key.day}:"
    )
    for term in event_summary.top_terms:
        print(f"  {term.term:<12} tfidf={term.score:6.2f} (tf={term.tf}, df={term.df})")


if __name__ == "__main__":
    main()
