"""Columnar grouping benchmark: dict path vs packed columns (BENCH_columnar.json).

Times the grouping *merge phase* — the work the columnar core replaced —
on both datasets at the default benchmark scale:

* **dict path**: build a :class:`LocationString` per observation, merge
  into per-user ``Counter`` tables (``merge_strings``);
* **columnar path**: intern into :class:`MatchColumns`, pack and
  run-length count (``merged_rows_packed``).

Downstream classification (``classify_rows``) is shared verbatim by both
paths, so it is timed separately and reported as the end-to-end numbers
(``group_users`` vs ``columnar_group_users``) without a floor.  Peak
allocation for each path is measured with ``tracemalloc``.

The acceptance floor — columnar merge throughput >= 2x the dict path on
the ladygaga dataset — is asserted here, so the CI smoke step fails if
the packed representation ever loses its raw-speed edge.

Results accumulate machine-readably in
``benchmarks/output/BENCH_columnar.json``.
"""

import json
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.columnar.grouping import columnar_group_users, merged_rows_packed
from repro.columnar.records import MatchColumns
from repro.grouping.merge import merge_strings
from repro.grouping.strings import LocationString
from repro.grouping.topk import group_users

_OUTPUT = Path(__file__).parent / "output" / "BENCH_columnar.json"

#: Timing repetitions; best-of keeps scheduler noise out of the floor.
_REPEATS = 5


def _best_of(fn):
    best = float("inf")
    result = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _peak_kib(fn):
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def _dict_merge(observations):
    return merge_strings(
        [LocationString.from_observation(o) for o in observations]
    )


def _columnar_merge(observations):
    return merged_rows_packed(MatchColumns.from_observations(observations))


@pytest.mark.slow
def test_columnar_grouping_throughput(ctx):
    report = {}
    for name, study in (("korean", ctx.korean_study), ("ladygaga", ctx.ladygaga_study)):
        observations = study.observations
        rows = len(observations)

        dict_s, _ = _best_of(lambda: _dict_merge(observations))
        columnar_s, _ = _best_of(lambda: _columnar_merge(observations))
        end_dict_s, reference = _best_of(lambda: group_users(observations))
        end_columnar_s, grouped = _best_of(
            lambda: columnar_group_users(MatchColumns.from_observations(observations))
        )
        assert grouped == reference, "columnar grouping diverged from dict path"

        report[name] = {
            "observations": rows,
            "merge": {
                "dict_s": round(dict_s, 5),
                "columnar_s": round(columnar_s, 5),
                "dict_obs_per_s": round(rows / dict_s),
                "columnar_obs_per_s": round(rows / columnar_s),
                "speedup": round(dict_s / columnar_s, 3),
            },
            "end_to_end": {
                "dict_s": round(end_dict_s, 5),
                "columnar_s": round(end_columnar_s, 5),
                "speedup": round(end_dict_s / end_columnar_s, 3),
            },
            "peak_kib": {
                "dict": round(_peak_kib(lambda: _dict_merge(observations)), 1),
                "columnar": round(
                    _peak_kib(lambda: _columnar_merge(observations)), 1
                ),
            },
        }
        print(
            f"\ncolumnar grouping [{name}]: merge {report[name]['merge']['speedup']}x "
            f"({report[name]['merge']['columnar_obs_per_s']:,} vs "
            f"{report[name]['merge']['dict_obs_per_s']:,} obs/s), "
            f"end-to-end {report[name]['end_to_end']['speedup']}x, "
            f"peak {report[name]['peak_kib']['columnar']:.0f} vs "
            f"{report[name]['peak_kib']['dict']:.0f} KiB"
        )

    _OUTPUT.parent.mkdir(exist_ok=True)
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # The acceptance floor: the packed merge must stay >= 2x the dict
    # path on ladygaga (the harder dataset: high distinct-row ratio).
    assert report["ladygaga"]["merge"]["speedup"] >= 2.0
