"""Staged-engine overhead and sharding benchmark (BENCH_engine.json).

Measures, at the default benchmark scale:

* the seed ``run_study`` monolith (verbatim pre-refactor copy, kept below
  as the reference) vs the staged ``StudyEngine`` on one serial shard —
  the engine's structural overhead must stay within 10%;
* serial vs process-pool sharding of the study phase.

With ``REPRO_PAPER_SCALE=1`` the serial-vs-sharded comparison also runs
on ``KoreanDatasetConfig.paper_scale()`` (minutes, several GiB).  The
process-pool-beats-serial assertion applies wherever more than one CPU
core is available; on single-core machines the timings are still
recorded, flagged ``single_core``.

Everything is written machine-readable to
``benchmarks/output/BENCH_engine.json`` so the bench trajectory
accumulates across runs.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.correlation import StudyResult, run_study
from repro.datasets.korean import KoreanDatasetConfig, build_korean_dataset
from repro.datasets.refine import RefinementFunnel
from repro.engine import EngineConfig
from repro.geo.forward import GeocodeStatus, TextGeocoder
from repro.geo.reverse import ReverseGeocoder
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import group_users
from repro.twitter.models import GeotaggedObservation
from repro.yahooapi.client import PlaceFinderClient

_OUTPUT = Path(__file__).parent / "output" / "BENCH_engine.json"

#: Shard count for the process-pool comparison.
SHARDS = max(4, os.cpu_count() or 1)


def seed_monolith(users, tweets, gazetteer, dataset_name="dataset"):
    """The pre-refactor ``run_study``, verbatim — the overhead baseline."""
    text_geocoder = TextGeocoder(gazetteer)
    placefinder = PlaceFinderClient(ReverseGeocoder(gazetteer), daily_quota=10**9)

    funnel = RefinementFunnel()
    funnel.crawled_users = len(users)
    funnel.total_tweets = len(tweets)
    funnel.gps_tweets = tweets.gps_count()

    profile_districts = {}
    for user in users:
        result = text_geocoder.geocode(user.profile_location)
        funnel.profile_status_counts[result.status.value] += 1
        if result.status is GeocodeStatus.RESOLVED and result.district is not None:
            profile_districts[user.user_id] = result.district
    funnel.well_defined_users = len(profile_districts)

    observations, study_users, kept = [], {}, {}
    for user_id, district in profile_districts.items():
        gps_tweets = [t for t in tweets.by_user(user_id) if t.has_gps]
        if not gps_tweets:
            continue
        funnel.users_with_gps += 1
        user_rows = []
        for tweet in gps_tweets:
            path = placefinder.resolve_admin_path(tweet.coordinates)
            if path is None:
                funnel.unresolvable_gps_tweets += 1
                continue
            user_rows.append(
                GeotaggedObservation(
                    user_id=user_id,
                    profile_state=district.state,
                    profile_county=district.name,
                    tweet_state=path.state,
                    tweet_county=path.county,
                    timestamp_ms=tweet.created_at_ms,
                )
            )
        if not user_rows:
            continue
        observations.extend(user_rows)
        study_users[user_id] = users.get(user_id)
        kept[user_id] = district

    funnel.resolved_observations = len(observations)
    funnel.study_users = len(study_users)
    groupings = group_users(observations)
    statistics = compute_group_statistics(groupings.values())
    return StudyResult(
        dataset_name=dataset_name,
        funnel=funnel,
        observations=observations,
        groupings=groupings,
        statistics=statistics,
        profile_districts=kept,
        api_stats=placefinder.stats,
    )


def _best_of(fn, rounds=3):
    """Best-of-N wall time (the stablest point statistic for short runs)."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _merge_into_report(payload: dict) -> None:
    _OUTPUT.parent.mkdir(exist_ok=True)
    report = {}
    if _OUTPUT.exists():
        report = json.loads(_OUTPUT.read_text(encoding="utf-8"))
    report.update(payload)
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def test_engine_overhead_and_sharding(ctx):
    users = ctx.korean_dataset.users
    tweets = ctx.korean_dataset.tweets
    gazetteer = ctx.korean_dataset.gazetteer

    seed_s, seed_result = _best_of(
        lambda: seed_monolith(users, tweets, gazetteer, "Korean")
    )
    engine_s, engine_result = _best_of(
        lambda: run_study(users, tweets, gazetteer, "Korean")
    )
    assert engine_result.statistics == seed_result.statistics
    assert engine_result.api_stats == seed_result.api_stats
    overhead = (engine_s - seed_s) / seed_s

    serial_sharded_s, _ = _best_of(
        lambda: run_study(
            users, tweets, gazetteer, "Korean",
            engine_config=EngineConfig(shards=SHARDS, backend="serial"),
        ),
        rounds=1,
    )
    process_s, process_result = _best_of(
        lambda: run_study(
            users, tweets, gazetteer, "Korean",
            engine_config=EngineConfig(shards=SHARDS, backend="process"),
        ),
        rounds=1,
    )
    assert process_result.statistics == seed_result.statistics

    cpu = os.cpu_count() or 1
    _merge_into_report(
        {
            "default_scale": {
                "seed_monolith_s": round(seed_s, 4),
                "engine_serial_s": round(engine_s, 4),
                "overhead_pct": round(overhead * 100, 2),
                "sharded_serial_s": round(serial_sharded_s, 4),
                "sharded_process_s": round(process_s, 4),
                "shards": SHARDS,
                "cpu_count": cpu,
                "single_core": cpu < 2,
            }
        }
    )

    print(
        f"\nengine overhead: seed {seed_s:.3f}s vs engine {engine_s:.3f}s "
        f"({overhead:+.1%}); {SHARDS}-shard serial {serial_sharded_s:.3f}s, "
        f"process {process_s:.3f}s on {cpu} cpu(s)"
    )
    assert overhead <= 0.10, (
        f"staged engine overhead {overhead:.1%} exceeds the 10% budget "
        f"(seed {seed_s:.3f}s, engine {engine_s:.3f}s)"
    )
    if cpu >= 2:
        assert process_s < serial_sharded_s, (
            f"process pool ({process_s:.3f}s) should beat serial "
            f"({serial_sharded_s:.3f}s) on {cpu} cores"
        )


@pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale run is opt-in: set REPRO_PAPER_SCALE=1",
)
def test_engine_sharding_paper_scale():
    dataset = build_korean_dataset(KoreanDatasetConfig.paper_scale())

    def timed(config):
        start = time.perf_counter()
        result = run_study(
            dataset.users, dataset.tweets, dataset.gazetteer,
            "Korean(paper-scale)", engine_config=config,
        )
        return time.perf_counter() - start, result

    serial_s, serial_result = timed(EngineConfig(shards=1, backend="serial"))
    process_s, process_result = timed(EngineConfig(shards=SHARDS, backend="process"))
    assert process_result.statistics == serial_result.statistics

    cpu = os.cpu_count() or 1
    _merge_into_report(
        {
            "paper_scale": {
                "serial_s": round(serial_s, 3),
                "process_s": round(process_s, 3),
                "shards": SHARDS,
                "study_users": serial_result.funnel.study_users,
                "cpu_count": cpu,
                "single_core": cpu < 2,
            }
        }
    )
    print(
        f"\npaper-scale study: serial {serial_s:.1f}s vs "
        f"{SHARDS}-shard process {process_s:.1f}s on {cpu} cpu(s)"
    )
    if cpu >= 2:
        assert process_s < serial_s
