"""Extension E14 — regional breakdown of the grouping outcomes.

Breaks the Fig.-7 distribution down by profile state.  The paper's
granularity choice (metro *gu* vs province *si*) predicts a structural
effect: metro users face a harder matching problem (smaller districts),
so their matched shares should trail the provinces'.  The bench verifies
the breakdown is well-formed and reports the per-region table event
systems can use as region-conditional priors.
"""

from repro.analysis.regional import regional_breakdown, render_regional_breakdown
from repro.geo.korea import METROPOLITAN_STATES


def test_regional_breakdown(benchmark, ctx, artefact_sink):
    study = ctx.korean_study

    rows = benchmark(
        regional_breakdown, study.groupings, study.profile_districts, 15
    )

    artefact_sink("E14_ext_regional", render_regional_breakdown(rows))

    assert len(rows) >= 3, "the default corpus spans many regions"
    covered = sum(r.users for r in rows)
    assert covered >= study.statistics.total_users * 0.7
    for row in rows:
        assert 0.0 <= row.top1_share <= row.matched_share <= 1.0
        assert row.avg_tweet_locations >= 1.0

    # Report the metro-vs-province contrast the granularity choice makes.
    metro = [r for r in rows if r.state in METROPOLITAN_STATES]
    provinces = [r for r in rows if r.state not in METROPOLITAN_STATES]
    assert metro and provinces
