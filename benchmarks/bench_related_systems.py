"""Related-systems benches — Twitris and TwitterMonitor over the corpus.

The paper motivates itself against the event systems of §II.  These
benches run both on the reproduced Korean corpus:

* Twitris — spatio-temporal-thematic summaries per (district, day) slice,
  with an earthquake day injected so the event themes surface (Fig. 1's
  "what" axis);
* TwitterMonitor (ref. [5]) — bursty-keyword trend detection over the
  same injected stream.
"""

from repro.events.evaluation import make_korean_scenarios
from repro.events.injector import EventTweetInjector
from repro.events.trends import TrendDetector
from repro.events.twitris import TwitrisSummarizer
from repro.geo.reverse import ReverseGeocoder


def _injected_stream(ctx):
    gazetteer = ctx.korean_dataset.gazetteer
    scenario = make_korean_scenarios(gazetteer, onset_ms=1_316_000_000_000)[0]
    injector = EventTweetInjector(gazetteer, gps_rate=0.5)
    stream = injector.inject(
        scenario, ctx.korean_study.groupings, list(ctx.korean_dataset.tweets)
    )
    return scenario, stream


def test_twitris_summaries(benchmark, ctx, artefact_sink):
    gazetteer = ctx.korean_dataset.gazetteer
    scenario, stream = _injected_stream(ctx)

    def build_and_summarize():
        summarizer = TwitrisSummarizer(ReverseGeocoder(gazetteer))
        summarizer.ingest(stream)
        return summarizer.summarize_all(top_k=4, min_tweets=5)

    summaries = benchmark.pedantic(build_and_summarize, rounds=1, iterations=1)

    assert summaries
    event_day = scenario.onset_ms // 86_400_000
    event_slices = [
        s
        for s in summaries
        if s.key.day == event_day
        and any(t.term in ("earthquake", "shaking") for t in s.top_terms)
    ]
    assert event_slices, "the quake day's slices must surface event themes"

    busiest = max(event_slices, key=lambda s: s.tweet_count)
    lines = [
        "Twitris-style slice summaries (event day)",
        "------------------------------------------",
        f"slices summarised           {len(summaries):6d}",
        f"event-theme slices on day   {len(event_slices):6d}",
        f"busiest event slice         {busiest.key.state}/{busiest.key.county} "
        f"({busiest.tweet_count} tweets)",
        "top terms: " + ", ".join(t.term for t in busiest.top_terms),
    ]
    artefact_sink("related_twitris", "\n".join(lines))


def test_twittermonitor_trends(benchmark, ctx, artefact_sink):
    scenario, stream = _injected_stream(ctx)

    def run_detector():
        return TrendDetector(min_count=5).run(stream)

    trends = benchmark.pedantic(run_detector, rounds=1, iterations=1)

    quake_trends = [t for t in trends if "earthquake" in t.keywords]
    assert quake_trends, "the injected quake must trend"
    first = quake_trends[0]
    latency_min = (first.detected_at_ms - scenario.onset_ms) / 60_000
    assert 0 <= latency_min < 120

    lines = [
        "TwitterMonitor-style trend detection",
        "-------------------------------------",
        f"trends detected             {len(trends):6d}",
        f"quake trend keywords        {', '.join(first.keywords)}",
        f"detected                    {latency_min:6.1f} min after onset",
        f"window tweets               {first.tweet_count:6d}",
        f"sample: {first.sample_text}",
    ]
    artefact_sink("related_twittermonitor", "\n".join(lines))
