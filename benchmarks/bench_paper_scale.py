"""Opt-in paper-scale run: the study at the paper's real corpus size.

`KoreanDatasetConfig.paper_scale()` builds ~52 200 crawled users over a
180-day window (~10 M tweets) — the full size of the original collection.
It takes minutes and several GiB, so it only runs when explicitly asked:

    REPRO_PAPER_SCALE=1 pytest benchmarks/bench_paper_scale.py --benchmark-only

The default CI-sized benches cover the same code paths at 1/17 scale.
"""

import os

import pytest

from repro.analysis.correlation import run_study
from repro.analysis.report import render_fig7
from repro.datasets.korean import KoreanDatasetConfig, build_korean_dataset
from repro.grouping.topk import TopKGroup

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale run is opt-in: set REPRO_PAPER_SCALE=1",
)


def test_paper_scale_study(benchmark, artefact_sink):
    config = KoreanDatasetConfig.paper_scale()

    def full_run():
        dataset = build_korean_dataset(config)
        return dataset, run_study(
            dataset.users, dataset.tweets, dataset.gazetteer, "Korean(paper-scale)"
        )

    dataset, study = benchmark.pedantic(full_run, rounds=1, iterations=1)

    assert len(dataset.users) == 52_200
    assert study.funnel.study_users > 5_000
    artefact_sink(
        "paper_scale_fig7",
        render_fig7(study.statistics, title="Fig. 7 at paper scale (52.2k crawl)"),
    )
    top12 = study.statistics.user_share(TopKGroup.TOP_1, TopKGroup.TOP_2)
    assert top12 > 0.40
