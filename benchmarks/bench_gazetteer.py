"""Gazetteer worker-load benchmark: mmap open vs object-graph rebuild.

Builds a planetary-scale synthetic catalogue (>= 100k districts, each in
its own grid cell) and times the two ways a process-pool worker can come
up with a usable gazetteer:

* **object graph**: unpickle the full in-memory :class:`Gazetteer` —
  what shipping the catalogue by value costs on *every* worker;
* **mmap**: open the shared ``RGAZ1`` artifact with
  :class:`MmapGazetteer` and answer a first query — what
  ``__reduce__``-by-path costs (columns stay in the page cache, district
  objects materialise lazily per query).

The acceptance floor — mmap worker load (open + first query) at least
10x faster than the object-graph rebuild — is asserted here, so the CI
smoke step fails if zero-copy loading ever loses its edge.  Query
throughput over the mapped columns is reported without a floor.

Results accumulate machine-readably in
``benchmarks/output/BENCH_gazetteer.json``.
"""

import json
import pickle
import time
from pathlib import Path

import pytest

from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.geo.region import District, DistrictKind
from repro.geodata.artifact import write_gazetteer_artifact
from repro.geodata.mmapgaz import MmapGazetteer

_OUTPUT = Path(__file__).parent / "output" / "BENCH_gazetteer.json"

#: Synthetic catalogue size; every district occupies its own 0.5° cell.
_DISTRICTS = 100_000
_GRID_DEG = 0.5
_LON_COLS = 720

#: Timing repetitions; best-of keeps scheduler noise out of the floor.
_REPEATS = 3

_QUERIES = 2_000


def _synthetic_districts():
    """>= 100k districts, one per grid cell, spread over lat -60..60."""
    districts = []
    for i in range(_DISTRICTS):
        row, col = divmod(i, _LON_COLS)
        districts.append(
            District(
                name=f"D{i:06d}",
                state=f"S{i // 1000:03d}",
                country="Synthetica",
                kind=DistrictKind.CITY,
                center=GeoPoint(
                    -60.0 + row * _GRID_DEG + 0.1, -180.0 + col * _GRID_DEG + 0.1
                ),
                radius_km=5.0,
                aliases=(),
            )
        )
    return districts


def _best_of(fn):
    best = float("inf")
    result = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.slow
def test_mmap_worker_load_floor(tmp_path):
    districts = _synthetic_districts()
    probe = GeoPoint(1.37, 42.73)

    build_start = time.perf_counter()
    memory = Gazetteer(districts, grid_deg=_GRID_DEG)
    build_s = time.perf_counter() - build_start

    prepare_start = time.perf_counter()
    artifact = write_gazetteer_artifact(
        tmp_path / "synthetic.rgaz", districts, grid_deg=_GRID_DEG
    )
    prepare_s = time.perf_counter() - prepare_start
    payload = pickle.dumps(memory)

    def rebuild_from_graph():
        return pickle.loads(payload)

    def load_from_mmap():
        gazetteer = MmapGazetteer(artifact)
        gazetteer.nearest(probe)  # first query: the worker is live
        return gazetteer

    graph_s, graph = _best_of(rebuild_from_graph)
    mmap_s, mapped = _best_of(load_from_mmap)
    assert mapped.nearest(probe) == graph.nearest(probe)

    query_start = time.perf_counter()
    for i in range(_QUERIES):
        row, col = divmod((i * 7919) % _DISTRICTS, _LON_COLS)
        mapped.nearest(
            GeoPoint(-60.0 + row * _GRID_DEG + 0.3, -180.0 + col * _GRID_DEG)
        )
    query_s = time.perf_counter() - query_start

    speedup = graph_s / mmap_s
    report = {
        "districts": _DISTRICTS,
        "grid_deg": _GRID_DEG,
        "artifact_bytes": artifact.stat().st_size,
        "pickle_bytes": len(payload),
        "build_memory_s": round(build_s, 4),
        "prepare_artifact_s": round(prepare_s, 4),
        "worker_load": {
            "object_graph_s": round(graph_s, 5),
            "mmap_s": round(mmap_s, 5),
            "speedup": round(speedup, 2),
        },
        "mmap_nearest_qps": round(_QUERIES / query_s),
    }
    print(
        f"\ngazetteer worker load [{_DISTRICTS:,} districts]: "
        f"mmap {mmap_s * 1e3:.2f} ms vs object graph {graph_s * 1e3:.1f} ms "
        f"({speedup:.1f}x), {report['mmap_nearest_qps']:,} nearest/s, "
        f"artifact {report['artifact_bytes'] / 1e6:.1f} MB"
    )

    _OUTPUT.parent.mkdir(exist_ok=True)
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # The acceptance floor: zero-copy worker load must stay >= 10x faster
    # than rebuilding the catalogue object graph from a pickled payload.
    assert speedup >= 10.0
