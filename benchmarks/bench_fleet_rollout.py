"""Fleet serving benchmark: rollout convergence, rollback latency, front
overhead (BENCH_fleet.json).

Three questions an operator asks of the fleet layer, each with a gated
floor so a regression fails the bench run:

* **Convergence** — from ``start_publish`` to every replica serving the
  new digest, through the full canary/shadow/promote pipeline under
  live traffic.  Floor: under ``CONVERGENCE_FLOOR_S``.
* **Rollback latency** — from ``start_publish`` of a snapshot whose
  canary error-spikes to the fleet being verifiably back on the old
  version.  Floor: under ``ROLLBACK_FLOOR_S``.
* **Front overhead** — closed-loop throughput through the fleet front
  (routing + admission + proxy pooling) against the same client pool
  hitting one replica directly.  Floor: the front keeps at least
  ``OVERHEAD_FLOOR`` of direct throughput.

Replicas are in-process (real ``ServingApp`` on real threaded-server
sockets) so the numbers measure the fleet machinery, not subprocess
boot cost.  Run with ``-m slow -s``; results merge into
``benchmarks/output/BENCH_fleet.json``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

import pytest

from repro.errors import NotFoundError
from repro.fleet import (
    FleetController,
    FleetFront,
    ReplicaSet,
    ReplicaTarget,
    RolloutConfig,
    SnapshotPublisher,
)
from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import ServingApp, ServingSnapshot, SnapshotStore
from repro.serving.aio import ThreadedServerHandle

_OUTPUT = Path(__file__).parent / "output" / "BENCH_fleet.json"

#: In-process replicas behind the front.
REPLICAS = 3

#: Closed-loop client threads offering traffic.
WORKERS = 4

#: Requests per worker in the overhead comparison.
REQUESTS_PER_WORKER = 300

#: Shadow samples the gate needs during the timed rollouts.
SHADOW_SAMPLES = 20

#: A full gated rollout (canary + shadow + promote) must converge in this.
CONVERGENCE_FLOOR_S = 20.0

#: Detecting a bad canary and restoring the old version must fit in this.
ROLLBACK_FLOOR_S = 20.0

#: The front must retain at least this fraction of direct throughput.
OVERHEAD_FLOOR = 0.5


def _merge_into_report(payload: dict) -> None:
    _OUTPUT.parent.mkdir(exist_ok=True)
    report = {}
    if _OUTPUT.exists():
        report = json.loads(_OUTPUT.read_text(encoding="utf-8"))
    report.update(payload)
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


class _ErrorOnV2:
    """App wrapper that 500s data requests once snapshot v2 is live."""

    def __init__(self, app: ServingApp):
        self.app = app
        self.bad_digest: str | None = None

    @property
    def metrics(self):
        return self.app.metrics

    def dispatch(self, method: str, target: str):
        if (
            self.bad_digest is not None
            and self.app.store.current().digest == self.bad_digest
            and not target.startswith(("/healthz", "/metrics", "/admin"))
        ):
            return 500, b'{"error": "injected canary fault"}'
        return self.app.dispatch(method, target)

    def dispatch_blocks(self, method: str, target: str) -> bool:
        return self.app.dispatch_blocks(method, target)


def _build_fleet(ctx, faulty_first: bool = False):
    """REPLICAS in-process replicas on v1 (korean), v2 = ladygaga."""
    v1 = ServingSnapshot.from_study(ctx.korean_study)
    v2 = ServingSnapshot.from_study(ctx.ladygaga_study)
    snapshots = {"v1": v1, "v2": v2}
    targets = ReplicaSet()
    servers, wrappers = [], []
    for index in range(REPLICAS):
        def loader(path, _s=snapshots):
            if path not in _s:
                raise NotFoundError(f"unknown snapshot key: {path}")
            return _s[path]

        app = ServingApp(
            SnapshotStore(v1),
            GeocodeService(
                DirectBackend(ReverseGeocoder(ctx.korean_dataset.gazetteer))
            ),
            snapshot_loader=loader,
        )
        mounted = app
        if faulty_first and index == 0:
            mounted = _ErrorOnV2(app)
            mounted.bad_digest = v2.digest
            wrappers.append(mounted)
        server = ThreadedServerHandle(mounted).start()
        servers.append(server)
        targets.add(ReplicaTarget(f"r{index}", "127.0.0.1", server.port))
    return v1, v2, targets, servers


def _traffic(front, stop, user_ids):
    rng = random.Random(23)
    while not stop.is_set():
        front.dispatch("GET", f"/lookup?user={rng.choice(user_ids)}")
        front.dispatch("GET", "/stats")


def _run_rollout(ctx, faulty_first: bool):
    """Time one gated rollout under traffic; returns (outcome, seconds, ...)."""
    v1, v2, targets, servers = _build_fleet(ctx, faulty_first=faulty_first)
    front = FleetFront(targets)
    publisher = SnapshotPublisher(targets, metrics=front.metrics)
    controller = FleetController(
        front,
        publisher,
        current_path="v1",
        current_digest=v1.digest,
        config=RolloutConfig(
            min_shadow_samples=SHADOW_SAMPLES,
            max_error_rate=0.05,
            shadow_timeout_s=CONVERGENCE_FLOOR_S,
        ),
        metrics=front.metrics,
    )
    stop = threading.Event()
    user_ids = sorted(v1.users)[:50]
    drivers = [
        threading.Thread(target=_traffic, args=(front, stop, user_ids))
        for _ in range(WORKERS)
    ]
    try:
        for driver in drivers:
            driver.start()
        start = time.perf_counter()
        controller.start_publish("v2")
        assert controller.wait(timeout_s=CONVERGENCE_FLOOR_S * 3)
        expected = v1.digest if faulty_first else v2.digest
        deadline = time.perf_counter() + 10.0
        while not publisher.converged(expected):
            assert time.perf_counter() < deadline, "fleet never converged"
            time.sleep(0.02)
        elapsed = time.perf_counter() - start
    finally:
        stop.set()
        for driver in drivers:
            driver.join(timeout=10.0)
        controller.shutdown()
        for server in servers:
            server.shutdown()
        targets.close()
    return controller.status()["last_rollout"], elapsed


@pytest.mark.slow
def test_rollout_convergence_time(ctx):
    """Canary → shadow → promote under traffic, timed to convergence."""
    outcome, elapsed = _run_rollout(ctx, faulty_first=False)
    assert outcome["promoted"] is True, outcome
    _merge_into_report(
        {
            "rollout_convergence": {
                "replicas": REPLICAS,
                "shadow_samples": outcome["shadow"]["samples"],
                "convergence_s": round(elapsed, 3),
                "floor_s": CONVERGENCE_FLOOR_S,
            }
        }
    )
    print(
        f"\ngated rollout over {REPLICAS} replicas converged in "
        f"{elapsed:.2f}s (floor {CONVERGENCE_FLOOR_S:.0f}s, "
        f"{outcome['shadow']['samples']} shadow samples)"
    )
    assert elapsed < CONVERGENCE_FLOOR_S, (
        f"rollout took {elapsed:.2f}s, over the {CONVERGENCE_FLOOR_S:.0f}s floor"
    )


@pytest.mark.slow
def test_rollback_latency_after_canary_fault(ctx):
    """An error-spiking canary must be caught and rolled back quickly."""
    outcome, elapsed = _run_rollout(ctx, faulty_first=True)
    assert outcome["promoted"] is False, outcome
    assert outcome["verdict"] == "fail-error-rate", outcome
    _merge_into_report(
        {
            "rollback_latency": {
                "replicas": REPLICAS,
                "verdict": outcome["verdict"],
                "shadow_error_rate": outcome["shadow"]["error_rate"],
                "rollback_s": round(elapsed, 3),
                "floor_s": ROLLBACK_FLOOR_S,
            }
        }
    )
    print(
        f"\ncanary error spike detected and rolled back in {elapsed:.2f}s "
        f"(floor {ROLLBACK_FLOOR_S:.0f}s)"
    )
    assert elapsed < ROLLBACK_FLOOR_S, (
        f"rollback took {elapsed:.2f}s, over the {ROLLBACK_FLOOR_S:.0f}s floor"
    )


@pytest.mark.slow
def test_front_overhead_vs_direct(ctx):
    """The front's routing/admission/proxy layer keeps most of the
    throughput of hitting a single replica directly."""
    v1, _, targets, servers = _build_fleet(ctx)
    front = FleetFront(targets)
    direct = targets.targets()[0]
    user_ids = sorted(v1.users)[:50]
    rng = random.Random(29)
    plan = [f"/lookup?user={rng.choice(user_ids)}" for _ in range(REQUESTS_PER_WORKER)]

    def closed_loop(issue) -> float:
        stop_err: list[str] = []

        def worker():
            for target in plan:
                status, _ = issue("GET", target)
                if status not in (200, 404):
                    stop_err.append(f"status {status}")
                    return

        threads = [threading.Thread(target=worker) for _ in range(WORKERS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        assert not stop_err, stop_err[0]
        return (WORKERS * len(plan)) / wall

    try:
        direct_rps = closed_loop(direct.request)
        front_rps = closed_loop(front.dispatch)
    finally:
        for server in servers:
            server.shutdown()
        targets.close()

    ratio = front_rps / direct_rps
    _merge_into_report(
        {
            "front_overhead": {
                "workers": WORKERS,
                "requests": WORKERS * len(plan) * 2,
                "direct_rps": round(direct_rps, 1),
                "front_rps": round(front_rps, 1),
                "front_vs_direct": round(ratio, 3),
                "floor": OVERHEAD_FLOOR,
            }
        }
    )
    print(
        f"\nfront overhead: direct {direct_rps:.0f} rps, via front "
        f"{front_rps:.0f} rps ({ratio:.2f}x, floor {OVERHEAD_FLOOR}x)"
    )
    assert ratio >= OVERHEAD_FLOOR, (
        f"front retained {ratio:.2f}x of direct throughput, "
        f"below the {OVERHEAD_FLOOR}x floor"
    )
