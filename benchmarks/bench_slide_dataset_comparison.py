"""E4+E5 / slides 4-5 — Korean vs Lady Gaga comparison.

Regenerates both comparison series (users per group; average tweet
locations per group) and benchmarks the streaming study's grouping stage.

Slide shape: the worldwide streaming sample is less home-anchored than
the Korean crawl — a flatter matched-group profile and fewer tweets (and
thus fewer distinct districts) per user.
"""

from repro.analysis.report import render_comparison
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import TopKGroup, group_users


def test_dataset_comparison(benchmark, ctx, artefact_sink):
    groupings = benchmark(group_users, ctx.ladygaga_study.observations)

    statistics = compute_group_statistics(groupings.values())
    assert statistics.total_users == ctx.ladygaga_study.statistics.total_users

    korean = ctx.korean_study.statistics
    ladygaga = ctx.ladygaga_study.statistics
    artefact_sink(
        "E4_user_share_comparison",
        render_comparison(korean, ladygaga, metric="user_share"),
    )
    artefact_sink(
        "E5_avg_locations_comparison",
        render_comparison(korean, ladygaga, metric="avg_tweet_locations"),
    )

    # Streaming users contribute fewer geotagged tweets each ...
    korean_rate = korean.total_tweets / korean.total_users
    gaga_rate = ladygaga.total_tweets / ladygaga.total_users
    assert gaga_rate < korean_rate
    # ... and therefore fewer observed districts in Top-1.
    assert (
        ladygaga.row(TopKGroup.TOP_1).avg_tweet_locations
        < korean.row(TopKGroup.TOP_1).avg_tweet_locations
    )
