"""E1 / paper Fig. 6 — average number of tweet locations per group.

Regenerates the figure's series from the Korean study and benchmarks the
aggregation stage (grouping outcomes -> per-group statistics).

Paper shape: Top-1 users average ~3 posting districts; the average grows
with k; the None group sits lower, around 2.5.
"""

from repro.analysis.report import render_fig6
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import TopKGroup


def test_fig6_avg_tweet_locations(benchmark, ctx, artefact_sink):
    groupings = list(ctx.korean_study.groupings.values())

    statistics = benchmark(compute_group_statistics, groupings)

    artefact_sink("E1_fig6_avg_tweet_locations", render_fig6(statistics))

    top1 = statistics.row(TopKGroup.TOP_1).avg_tweet_locations
    none = statistics.row(TopKGroup.NONE).avg_tweet_locations
    top6 = statistics.row(TopKGroup.TOP_6_PLUS).avg_tweet_locations
    # Paper shape constraints.
    assert 2.0 <= top1 <= 5.5, f"Top-1 average {top1} out of the paper's band"
    assert none < top1, "None group should roam less than Top-1 (paper: ~2.5)"
    assert top6 > top1, "averages grow with k (paper Fig. 6 trend)"
    assert 2.0 <= statistics.overall_avg_tweet_locations <= 5.0
