"""Shared fixtures for the benchmark harness.

The experiment context (both datasets + both studies) is built once per
session at the default scale; every benchmark that regenerates a paper
artefact draws from it.  Rendered artefacts are printed and also written
to ``benchmarks/output/`` so they can be inspected after a captured run.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.pipelines.experiments import ExperimentContext, get_context

_OUTPUT_DIR = Path(__file__).parent / "output"


def pytest_sessionfinish(session, exitstatus):
    """Stamp host metadata into every ``BENCH_*.json`` report.

    Benchmark numbers are meaningless without the machine that produced
    them: a throughput regression on 2 cores is business as usual on a
    report captured on 16.  Stamping happens once at session end so every
    report — whichever benchmark module wrote it — carries the same
    ``host`` block, and re-running any benchmark refreshes it.
    """
    host = {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    for path in sorted(_OUTPUT_DIR.glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(report, dict):
            continue
        report["host"] = host
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """The shared default-scale experiment context."""
    return get_context("default")


@pytest.fixture(scope="session")
def artefact_sink():
    """Callable that records a rendered artefact: print + file."""
    _OUTPUT_DIR.mkdir(exist_ok=True)

    def record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (_OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return record
