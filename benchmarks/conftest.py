"""Shared fixtures for the benchmark harness.

The experiment context (both datasets + both studies) is built once per
session at the default scale; every benchmark that regenerates a paper
artefact draws from it.  Rendered artefacts are printed and also written
to ``benchmarks/output/`` so they can be inspected after a captured run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.pipelines.experiments import ExperimentContext, get_context

_OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """The shared default-scale experiment context."""
    return get_context("default")


@pytest.fixture(scope="session")
def artefact_sink():
    """Callable that records a rendered artefact: print + file."""
    _OUTPUT_DIR.mkdir(exist_ok=True)

    def record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (_OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return record
