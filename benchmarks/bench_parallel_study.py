"""Parallel-engine benchmark: serial vs process backend (BENCH_parallel.json).

Times a full ``run_study`` at the default benchmark scale on the serial
backend, then on the process backend at 2 and 4 shards, asserting every
parallel run is byte-identical to the serial reference before recording
wall times.  The speedup floor (>= 1.5x at 4 shards) is only asserted on
machines with at least 4 cores — the pool is capped at ``os.cpu_count()``,
so on smaller boxes the benchmark records honest numbers without failing.

Results accumulate machine-readably in
``benchmarks/output/BENCH_parallel.json``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.correlation import run_study
from repro.engine import EngineConfig, RunContext

_OUTPUT = Path(__file__).parent / "output" / "BENCH_parallel.json"


def _timed_study(ctx, shards, backend):
    dataset = ctx.korean_dataset
    context = RunContext(dataset_name="korean")
    start = time.perf_counter()
    study = run_study(
        dataset.users,
        dataset.tweets,
        dataset.gazetteer,
        dataset_name="Korean",
        engine_config=EngineConfig(shards=shards, backend=backend),
        context=context,
    )
    return time.perf_counter() - start, study, context.metrics.snapshot()


def _identical(reference, candidate):
    return (
        candidate.funnel == reference.funnel
        and candidate.observations == reference.observations
        and candidate.groupings == reference.groupings
        and candidate.statistics == reference.statistics
        and candidate.profile_districts == reference.profile_districts
        and candidate.api_stats == reference.api_stats
    )


@pytest.mark.slow
def test_serial_vs_process_study_runs(ctx):
    cpus = os.cpu_count() or 1
    serial_s, reference, _ = _timed_study(ctx, shards=1, backend="serial")

    runs = {}
    for shards in (2, 4):
        parallel_s, study, snapshot = _timed_study(
            ctx, shards=shards, backend="process"
        )
        assert _identical(reference, study)
        runs[shards] = {
            "parallel_s": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
            "max_workers": int(snapshot["sharding.max_workers"]),
        }

    _OUTPUT.parent.mkdir(exist_ok=True)
    report = {}
    if _OUTPUT.exists():
        report = json.loads(_OUTPUT.read_text(encoding="utf-8"))
    report.update(
        {
            "cpu_count": cpus,
            "serial_s": round(serial_s, 4),
            "process": {str(shards): stats for shards, stats in runs.items()},
        }
    )
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for shards, stats in runs.items():
        print(
            f"\nparallel study: serial {serial_s:.3f}s vs "
            f"{shards} shards {stats['parallel_s']:.3f}s "
            f"({stats['speedup']:.2f}x, {stats['max_workers']} worker(s), "
            f"{cpus} cpu(s))"
        )

    # The acceptance floor only binds where the hardware can deliver it.
    if cpus >= 4:
        assert runs[4]["speedup"] >= 1.5
