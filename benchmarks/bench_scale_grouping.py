"""Scale benchmark — the grouping method at (and beyond) paper scale.

The paper's final dataset is ~1 4?? users and a few tens of thousands of
geotagged observations; its collection corpus was 11.1 M tweets.  This
bench shows the method's headroom: a synthetic observation stream of
paper-scale users and 100x the paper's observation volume is grouped in
seconds, so corpus size was never the study's bottleneck (the GPS-scarce
*collection*, simulated elsewhere, was).
"""

import random

from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import group_users
from repro.twitter.models import GeotaggedObservation

USERS = 1_500
OBSERVATIONS = 2_000_000
_COUNTIES = [f"District-{i}" for i in range(60)]


def _synth_observations(seed: int = 7) -> list[GeotaggedObservation]:
    rng = random.Random(seed)
    profile = {uid: rng.choice(_COUNTIES) for uid in range(USERS)}
    home_bias = {uid: rng.random() for uid in range(USERS)}
    rows = []
    for _ in range(OBSERVATIONS):
        uid = rng.randrange(USERS)
        if rng.random() < home_bias[uid]:
            tweet_county = profile[uid]
        else:
            tweet_county = rng.choice(_COUNTIES)
        rows.append(
            GeotaggedObservation(
                user_id=uid,
                profile_state="Seoul",
                profile_county=profile[uid],
                tweet_state="Seoul",
                tweet_county=tweet_county,
            )
        )
    return rows


def test_grouping_at_scale(benchmark, artefact_sink):
    observations = _synth_observations()

    def run():
        groupings = group_users(observations)
        return compute_group_statistics(groupings.values())

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    assert stats.total_users == USERS
    assert stats.total_tweets == OBSERVATIONS

    artefact_sink(
        "scale_grouping",
        f"grouped {OBSERVATIONS:,} observations over {USERS:,} users "
        f"(100x the paper's observation volume) in one pass; "
        f"overall avg tweet locations {stats.overall_avg_tweet_locations:.2f}",
    )
