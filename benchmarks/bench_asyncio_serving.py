"""Asyncio vs threaded front door under the batched serving workload
(BENCH_asyncio.json).

BENCH_serving measures the transport-free dispatch core (the ~18.7k rps
batching number on this box); this benchmark measures the *transports*:
the same duplicate-heavy ``/lookup`` mix — the BENCH_serving shedding
workload shape — driven over real sockets through keep-alive connections
that pipeline requests in batches, against both servers mounted on
byte-identical apps.

Measured per server:

* **batched rps** — wall-clock throughput with W closed-loop client
  connections each sending pipelined batches of B requests and reading
  B responses before the next batch;
* **client p95 per request** — per-batch wall time divided by the batch
  size, aggregated over every batch (what a caller batching its queries
  actually experiences end-to-end, parsing included);
* **dispatch p95** — the server-side ``serving.latency.lookup`` p95, to
  separate transport cost from core cost.

**Gated floor**: asyncio throughput must be >= 1.0x the threaded server
on this workload — the event loop must at least match thread-per-
connection before it can claim the front door.  Results accumulate in
``benchmarks/output/BENCH_asyncio.json``.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import (
    ServingApp,
    ServingSnapshot,
    SnapshotStore,
    start_background_server,
)

_OUTPUT = Path(__file__).parent / "output" / "BENCH_asyncio.json"

#: Closed-loop client connections (each is one keep-alive socket).
WORKERS = 8

#: Requests pipelined per batch: send B, then read B responses.
BATCH_SIZE = 32

#: Batches each worker sends (per measured phase).
BATCHES_PER_WORKER = 25

#: The asyncio server must at least match the threaded server.
THROUGHPUT_FLOOR = 1.0


def _merge_into_report(payload: dict) -> None:
    _OUTPUT.parent.mkdir(exist_ok=True)
    report = {}
    if _OUTPUT.exists():
        report = json.loads(_OUTPUT.read_text(encoding="utf-8"))
    report.update(payload)
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def _build_app(ctx) -> ServingApp:
    snapshot = ServingSnapshot.from_study(ctx.korean_study)
    geocoder = GeocodeService(
        DirectBackend(ReverseGeocoder(ctx.korean_dataset.gazetteer))
    )
    return ServingApp(SnapshotStore(snapshot), geocoder)


def _batch_bytes(targets: list[str]) -> bytes:
    """One pipelined batch: B framed GETs in a single send."""
    return b"".join(
        f"GET {target} HTTP/1.1\r\n\r\n".encode("latin-1") for target in targets
    )


def _read_responses(reader, count: int) -> int:
    """Read ``count`` responses off a buffered reader; returns 200s seen."""
    ok = 0
    for _ in range(count):
        status_line = reader.readline()
        if not status_line:
            raise AssertionError("server closed the connection mid-batch")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value)
        body = reader.read(length)
        assert len(body) == length
        if status == 200:
            ok += 1
    return ok


def _closed_loop(port: int, plans: list[list[list[str]]]):
    """Drive every worker's batch plan; returns (ok_count, batch_times, wall_s).

    Each worker holds one keep-alive connection and runs a closed loop at
    batch granularity: send one pipelined batch, read all its responses,
    record the batch's wall time, repeat.
    """
    lock = threading.Lock()
    totals = {"ok": 0}
    batch_times: list[float] = []

    def worker(batches: list[list[str]]) -> None:
        sock = socket.create_connection(("127.0.0.1", port), timeout=30.0)
        reader = sock.makefile("rb")
        ok = 0
        times = []
        try:
            for targets in batches:
                started = time.perf_counter()
                sock.sendall(_batch_bytes(targets))
                ok += _read_responses(reader, len(targets))
                times.append(time.perf_counter() - started)
        finally:
            reader.close()
            sock.close()
        with lock:
            totals["ok"] += ok
            batch_times.extend(times)

    threads = [threading.Thread(target=worker, args=(plan,)) for plan in plans]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    return totals["ok"], batch_times, wall_s


def _p95(values: list[float]) -> float:
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(0.95 * len(ranked)))]


def _bench_server(ctx, kind: str, plans) -> dict:
    """Measure one front end; returns its report row."""
    app = _build_app(ctx)
    server = start_background_server(app, kind)
    try:
        # Untimed warmup round so thread spawn / loop start / allocator
        # noise lands outside the measured phase for both servers alike.
        _closed_loop(server.port, [plan[:2] for plan in plans])
        ok, batch_times, wall_s = _closed_loop(server.port, plans)
    finally:
        server.shutdown()
    requests = sum(len(batch) for plan in plans for batch in plan)
    assert ok == requests, f"{kind}: {requests - ok} non-200 responses"
    metrics = app.metrics.snapshot()
    return {
        "requests": requests,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(requests / wall_s, 1),
        "client_p95_us_per_request": round(
            _p95(batch_times) / BATCH_SIZE * 1e6, 2
        ),
        "dispatch_p95_us": round(
            metrics["serving.latency.lookup.p95"] * 1e6, 2
        ),
    }


@pytest.mark.slow
def test_asyncio_meets_threaded_throughput(ctx):
    """Batched socket workload: asyncio rps >= 1.0x threaded rps."""
    rng = random.Random(17)
    user_ids = list(ctx.korean_study.groupings)
    plans = [
        [
            [f"/lookup?user={rng.choice(user_ids)}" for _ in range(BATCH_SIZE)]
            for _ in range(BATCHES_PER_WORKER)
        ]
        for _ in range(WORKERS)
    ]

    results = {kind: _bench_server(ctx, kind, plans) for kind in ("thread", "asyncio")}
    speedup = (
        results["asyncio"]["throughput_rps"] / results["thread"]["throughput_rps"]
    )

    _merge_into_report(
        {
            "batched_lookup": {
                "workers": WORKERS,
                "batch_size": BATCH_SIZE,
                "thread": results["thread"],
                "asyncio": results["asyncio"],
                "asyncio_vs_thread": round(speedup, 3),
                "floor": THROUGHPUT_FLOOR,
            }
        }
    )
    print(
        f"\nbatched /lookup over sockets: thread "
        f"{results['thread']['throughput_rps']} rps, asyncio "
        f"{results['asyncio']['throughput_rps']} rps "
        f"({speedup:.2f}x, floor {THROUGHPUT_FLOOR}x)"
    )
    assert speedup >= THROUGHPUT_FLOOR, (
        f"asyncio served {speedup:.2f}x the threaded baseline, "
        f"below the {THROUGHPUT_FLOOR}x floor"
    )


@pytest.mark.slow
def test_single_flight_survives_the_event_loop(ctx):
    """The BENCH_serving batching claim holds through the asyncio
    transport: a duplicate-heavy cold ``/reverse`` mix over many
    connections still costs at most one backend call per distinct cell
    (the executor split re-enters the same single-flight service)."""

    class SlowBackend:
        """Millisecond-scale lookups so duplicate misses really overlap."""

        def __init__(self, inner, delay_s: float = 0.005):
            self._inner = inner
            self._delay_s = delay_s

        def lookup(self, point):
            """One delayed lookup through the wrapped backend."""
            time.sleep(self._delay_s)
            return self._inner.lookup(point)

    snapshot = ServingSnapshot.from_study(ctx.korean_study)
    geocoder = GeocodeService(
        SlowBackend(DirectBackend(ReverseGeocoder(ctx.korean_dataset.gazetteer)))
    )
    app = ServingApp(SnapshotStore(snapshot), geocoder)

    rng = random.Random(19)
    districts = list(ctx.korean_study.profile_districts.values())
    cells = [
        f"/reverse?lat={d.center.lat:.4f}&lon={d.center.lon:.4f}"
        for d in rng.sample(districts, min(16, len(districts)))
    ]
    # Every worker opens with the same cold walk, so misses collide.
    plans = [
        [cells + [rng.choice(cells) for _ in range(BATCH_SIZE - len(cells))]]
        for _ in range(WORKERS)
    ]

    server = start_background_server(app, "asyncio")
    try:
        ok, _, wall_s = _closed_loop(server.port, plans)
    finally:
        server.shutdown()

    requests = sum(len(batch) for plan in plans for batch in plan)
    assert ok == requests
    metrics = app.metrics.snapshot()
    backend_lookups = int(metrics["serving.geocode.backend.lookups"])
    assert backend_lookups <= len(cells)
    assert app.flight.stats().followers > 0

    _merge_into_report(
        {
            "asyncio_single_flight": {
                "requests": requests,
                "distinct_cells": len(cells),
                "backend_lookups": backend_lookups,
                "coalesced_followers": app.flight.stats().followers,
                "wall_s": round(wall_s, 4),
            }
        }
    )
    print(
        f"\nasyncio single-flight: {requests} geocode requests over "
        f"{len(cells)} cells -> {backend_lookups} backend lookups"
    )
