"""E3 / slide 3 — number of tweets in each group.

Regenerates the tweet-share series: how the geotagged tweet volume
distributes over the Top-k user groups.  Benchmarks the full merge path
(per-tweet location strings -> merged, ordered lists).

Slide shape: Top-1 dominates the tweet volume; shares decay over k; the
None group still contributes a sizeable block (its users tweet, just
never from their profile district).
"""

from repro.analysis.report import render_tweet_distribution
from repro.grouping.merge import merge_strings
from repro.grouping.strings import LocationString
from repro.grouping.topk import TopKGroup


def test_tweet_distribution(benchmark, ctx, artefact_sink):
    records = [
        LocationString.from_observation(obs) for obs in ctx.korean_study.observations
    ]

    merged = benchmark(merge_strings, records)

    assert sum(sum(m.count for m in rows) for rows in merged.values()) == len(records)

    statistics = ctx.korean_study.statistics
    artefact_sink("E3_tweet_distribution", render_tweet_distribution(statistics))

    top1 = statistics.row(TopKGroup.TOP_1).tweet_share
    top3 = statistics.row(TopKGroup.TOP_3).tweet_share
    assert top1 == max(row.tweet_share for row in statistics.rows), (
        "Top-1 users contribute the largest tweet share"
    )
    assert top1 > top3, "tweet shares decay over k"
