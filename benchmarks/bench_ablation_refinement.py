"""Ablation #2 (DESIGN.md) — refinement strictness.

The paper admits users into the study with as little as one GPS tweet.  A
single GPS fix is a noisy basis for ranking districts; this ablation
sweeps the ``min_gps_tweets`` threshold and shows the trade-off: stricter
entry shrinks the study population but stabilises the Top-k shares (the
None group shrinks as one-offs caught away from home stop counting).
"""

from repro.analysis.correlation import run_study
from repro.grouping.topk import TopKGroup


def test_refinement_threshold_sweep(benchmark, ctx, artefact_sink):
    dataset = ctx.korean_dataset

    def sweep():
        results = {}
        for threshold in (1, 3, 5, 10):
            study = run_study(
                dataset.users,
                dataset.tweets,
                dataset.gazetteer,
                dataset_name=f"Korean(min_gps={threshold})",
                min_gps_tweets=threshold,
            )
            results[threshold] = study.statistics
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Refinement strictness sweep (min GPS tweets per study user)",
        "------------------------------------------------------------",
        f"{'threshold':>9} {'users':>7} {'Top-1':>8} {'Top1+2':>8} {'None':>8}",
    ]
    for threshold, stats in sorted(results.items()):
        lines.append(
            f"{threshold:>9} {stats.total_users:>7} "
            f"{stats.row(TopKGroup.TOP_1).user_share:>8.2%} "
            f"{stats.user_share(TopKGroup.TOP_1, TopKGroup.TOP_2):>8.2%} "
            f"{stats.row(TopKGroup.NONE).user_share:>8.2%}"
        )
    artefact_sink("ablation_refinement_threshold", "\n".join(lines))

    users_by_threshold = [results[t].total_users for t in (1, 3, 5, 10)]
    assert users_by_threshold == sorted(users_by_threshold, reverse=True), (
        "stricter thresholds must shrink the study population"
    )
    assert results[10].row(TopKGroup.NONE).user_share <= results[1].row(
        TopKGroup.NONE
    ).user_share + 0.02, "one-GPS-tweet users inflate the None group"
