"""Closed-loop serving load benchmark (BENCH_serving.json).

Drives the transport-free :class:`~repro.serving.http.ServingApp`
dispatch path — the exact code every HTTP request traverses minus the
socket — with a closed loop of worker threads (each worker issues its
next request only after the previous one returns).  Two claims are
measured:

* **Single-flight batching**: under a duplicate-heavy ``/reverse`` mix
  against a cold cache, the number of backend geocode lookups is
  strictly fewer than the number of geocode-bearing requests — duplicate
  concurrent misses coalesce into one backend call and everything else
  is served from the tier cache.
* **Load shedding**: with a token-bucket rate far below the offered
  load, excess requests are answered 429 immediately while the admitted
  requests keep latency percentiles comparable to an unthrottled run —
  overload degrades *capacity*, not *quality*.

Results accumulate machine-readably in
``benchmarks/output/BENCH_serving.json``.
"""

from __future__ import annotations

import json
import random
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import ServingApp, ServingSnapshot, SnapshotStore, TokenBucket

_OUTPUT = Path(__file__).parent / "output" / "BENCH_serving.json"

WORKERS = 8
REQUESTS_PER_WORKER = 400
DISTINCT_CELLS = 24


def _merge_into_report(payload: dict) -> None:
    _OUTPUT.parent.mkdir(exist_ok=True)
    report = {}
    if _OUTPUT.exists():
        report = json.loads(_OUTPUT.read_text(encoding="utf-8"))
    report.update(payload)
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


class _SlowBackend:
    """A backend with a realistic per-lookup latency.

    The in-process gazetteer answers in microseconds, which makes
    concurrent duplicate misses too short-lived to ever overlap; a real
    geocoding API answers in milliseconds.  Injecting that latency makes
    the single-flight coalescing measurable instead of merely possible.
    """

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s

    def lookup(self, point):
        """One delayed lookup through the wrapped backend."""
        time.sleep(self._delay_s)
        return self._inner.lookup(point)


def _build_app(
    ctx, bucket: TokenBucket | None = None, backend_delay_s: float = 0.0
) -> ServingApp:
    snapshot = ServingSnapshot.from_study(ctx.korean_study)
    backend = DirectBackend(ReverseGeocoder(ctx.korean_dataset.gazetteer))
    if backend_delay_s > 0.0:
        backend = _SlowBackend(backend, backend_delay_s)
    geocoder = GeocodeService(backend)
    return ServingApp(SnapshotStore(snapshot), geocoder, bucket=bucket)


def _closed_loop(app: ServingApp, targets_per_worker: list[list[str]]):
    """Run one closed-loop phase; returns (statuses, wall_s)."""

    def worker(targets: list[str]) -> dict[int, int]:
        counts: dict[int, int] = {}
        for target in targets:
            status, _ = app.dispatch("GET", target)
            counts[status] = counts.get(status, 0) + 1
        return counts

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(targets_per_worker)) as pool:
        results = list(pool.map(worker, targets_per_worker))
    wall_s = time.perf_counter() - start
    statuses: dict[int, int] = {}
    for counts in results:
        for status, n in counts.items():
            statuses[status] = statuses.get(status, 0) + n
    return statuses, wall_s


def _latency(app: ServingApp, endpoint: str) -> dict[str, float]:
    metrics = app.metrics.snapshot()
    return {
        q: round(metrics[f"serving.latency.{endpoint}.{q}"] * 1e6, 2)  # µs
        for q in ("p50", "p95", "p99")
    }


@pytest.mark.slow
def test_single_flight_batches_duplicate_geocodes(ctx):
    """Cold cache + duplicate-heavy mix: backend lookups < requests."""
    app = _build_app(ctx, backend_delay_s=0.005)
    rng = random.Random(11)
    districts = list(ctx.korean_study.profile_districts.values())
    cells = [
        f"/reverse?lat={d.center.lat:.4f}&lon={d.center.lon:.4f}"
        for d in rng.sample(districts, min(DISTINCT_CELLS, len(districts)))
    ]
    # Every worker walks the cold cells in the same order before its
    # random tail, so duplicate misses genuinely collide in flight.
    plans = [
        cells + [rng.choice(cells) for _ in range(REQUESTS_PER_WORKER - len(cells))]
        for _ in range(WORKERS)
    ]
    statuses, wall_s = _closed_loop(app, plans)

    total = WORKERS * REQUESTS_PER_WORKER
    metrics = app.metrics.snapshot()
    backend_lookups = int(metrics["serving.geocode.backend.lookups"])
    flight = app.flight.stats()

    assert statuses.get(200, 0) == total
    # The batching claim: every request bears a geocode, yet the backend
    # saw at most one lookup per distinct cell — strictly fewer than the
    # geocode-bearing requests.
    assert backend_lookups < total
    assert backend_lookups <= len(cells)
    # With an 8-wide cold walk over 5 ms lookups, duplicate misses must
    # have overlapped — the coalescer, not luck, kept the backend count
    # at one per distinct cell.
    assert flight.followers > 0

    _merge_into_report(
        {
            "batching": {
                "requests": total,
                "distinct_cells": len(cells),
                "backend_lookups": backend_lookups,
                "coalesced_followers": flight.followers,
                "l1_hits": int(metrics["serving.geocode.l1.hits"]),
                "wall_s": round(wall_s, 4),
                "throughput_rps": round(total / wall_s, 1),
                "latency_us": _latency(app, "reverse"),
            }
        }
    )
    print(
        f"\nbatching: {total} geocode requests over {len(cells)} cells -> "
        f"{backend_lookups} backend lookups "
        f"({flight.followers} coalesced followers)"
    )


@pytest.mark.slow
def test_shedding_preserves_admitted_latency(ctx):
    """An overloaded, rate-limited server sheds with 429s while admitted
    requests keep percentiles comparable to an unthrottled baseline."""
    rng = random.Random(13)
    user_ids = list(ctx.korean_study.groupings)
    plans = [
        [f"/lookup?user={rng.choice(user_ids)}" for _ in range(REQUESTS_PER_WORKER)]
        for _ in range(WORKERS)
    ]

    baseline_app = _build_app(ctx)
    baseline_statuses, baseline_wall = _closed_loop(baseline_app, plans)
    baseline = _latency(baseline_app, "lookup")
    offered_rps = WORKERS * REQUESTS_PER_WORKER / baseline_wall

    # Admit well under the measured capacity so shedding must occur.
    rate = max(50.0, offered_rps / 20.0)
    limited_app = _build_app(ctx, bucket=TokenBucket(rate=rate, burst=16))
    limited_statuses, limited_wall = _closed_loop(limited_app, plans)
    limited = _latency(limited_app, "lookup")

    total = WORKERS * REQUESTS_PER_WORKER
    shed = limited_statuses.get(429, 0)
    admitted = limited_statuses.get(200, 0)
    assert baseline_statuses.get(200, 0) == total
    assert shed > 0, "offered load never exceeded the admission rate"
    assert admitted + shed == total
    assert int(limited_app.metrics.snapshot()["serving.shed"]) == shed
    # Quality holds under overload: admitted p95 stays within an order of
    # magnitude of the unthrottled p95 (generous bound — CI machines are
    # noisy; the JSON report carries the exact numbers).
    assert limited["p95"] <= max(baseline["p95"] * 10.0, baseline["p95"] + 500.0)

    _merge_into_report(
        {
            "shedding": {
                "requests": total,
                "offered_rps": round(offered_rps, 1),
                "admission_rate_rps": round(rate, 1),
                "admitted": admitted,
                "shed": shed,
                "baseline_latency_us": baseline,
                "admitted_latency_us": limited,
                "baseline_wall_s": round(baseline_wall, 4),
                "limited_wall_s": round(limited_wall, 4),
            }
        }
    )
    print(
        f"\nshedding: {shed}/{total} shed at {rate:.0f} rps admission "
        f"(offered {offered_rps:.0f} rps); admitted p95 {limited['p95']}us "
        f"vs baseline p95 {baseline['p95']}us"
    )
