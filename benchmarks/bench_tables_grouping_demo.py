"""E6+E7 / paper Tables I-II — the grouping method's worked example.

Reconstructs the paper's walk-through: per-tweet ``#``-delimited strings
(Table I), then the merged and ordered per-user lists with the matched
string marked (Table II).  Benchmarks the string render/parse round trip,
the hot inner loop of the method.
"""

from repro.grouping.merge import merge_strings
from repro.grouping.strings import LocationString
from repro.grouping.topk import TopKGroup
from repro.analysis.report import render_merged_strings


def test_tables_grouping_demo(benchmark, ctx, artefact_sink):
    records = [
        LocationString.from_observation(obs) for obs in ctx.korean_study.observations
    ]

    def roundtrip():
        return [LocationString.parse(r.render()) for r in records]

    parsed = benchmark(roundtrip)
    assert parsed == records, "render/parse must round-trip losslessly"

    # Table I: the first rows of the raw per-tweet string list.
    table1 = "\n".join(r.render() for r in records[:8])
    artefact_sink(
        "E6_table1_location_strings",
        "Per-tweet location strings (paper Table I, first rows)\n"
        "-------------------------------------------------------\n" + table1,
    )

    # Table II: merged+ordered lists for a Top-1 and a None user.
    merged = merge_strings(records)
    groupings = ctx.korean_study.groupings
    sections = []
    for group, label in ((TopKGroup.TOP_1, "Top-1"), (TopKGroup.NONE, "None")):
        members = [g for g in groupings.values() if g.group is group]
        busiest = max(members, key=lambda g: g.total_tweets)
        sections.append(
            render_merged_strings(
                merged[busiest.user_id],
                title=f"Table II — {label} user {busiest.user_id}",
            )
        )
    artefact_sink("E7_table2_merged_strings", "\n\n".join(sections))

    # The Top-1 user's first merged row must be the matched string.
    top1_members = [g for g in groupings.values() if g.group is TopKGroup.TOP_1]
    busiest = max(top1_members, key=lambda g: g.total_tweets)
    assert merged[busiest.user_id][0].is_matched
