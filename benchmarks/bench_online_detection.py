"""E10 companion — the online Toretter pipeline, end to end.

Where ``bench_event_localization`` scores estimators on frozen witness
sets, this bench runs the *deployed-system* path: an earthquake is
injected into the platform's full tweet stream and the online detector
(keyword filter -> classifier -> sliding window -> weighted localisation)
has to find it.  Reports alarm latency, localisation error, and stream
throughput.
"""

from repro.analysis.reliability import ReliabilityTable
from repro.events.evaluation import make_korean_scenarios
from repro.events.injector import EventTweetInjector
from repro.events.online import OnlineEventDetector


def test_online_pipeline(benchmark, ctx, artefact_sink):
    study = ctx.korean_study
    gazetteer = ctx.korean_dataset.gazetteer
    scenario = make_korean_scenarios(gazetteer, onset_ms=1_316_000_000_000)[0]
    injector = EventTweetInjector(gazetteer, gps_rate=0.2)
    stream = injector.inject(
        scenario, study.groupings, list(ctx.korean_dataset.tweets)
    )
    table = ReliabilityTable.from_statistics(study.statistics)

    def run_pipeline():
        detector = OnlineEventDetector(
            reliability=table,
            profile_districts=study.profile_districts,
            groupings=study.groupings,
            alarm_threshold=5,
        )
        return detector.run(stream)

    stats = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)

    assert stats.alarms, "the injected quake must trip the online alarm"
    first = stats.alarms[0]
    latency_min = (first.triggered_at_ms - scenario.onset_ms) / 60_000
    assert first.estimate is not None
    error_km = first.estimate.distance_km(scenario.epicenter)

    lines = [
        "Online Toretter pipeline over the full stream (E10 companion)",
        "--------------------------------------------------------------",
        f"stream size                 {stats.tweets_seen:9d} tweets",
        f"keyword hits                {stats.keyword_hits:9d}",
        f"classified positive         {stats.classified_positive:9d}",
        f"alarm latency               {latency_min:9.1f} min after onset",
        f"localisation error          {error_km:9.1f} km",
        f"window at alarm             {first.window_positive_count:9d} positives "
        f"({first.gps_measurements} GPS / {first.profile_measurements} profiles)",
    ]
    artefact_sink("E10_online_pipeline", "\n".join(lines))

    assert latency_min < 60.0
    assert error_km < scenario.felt_radius_km
