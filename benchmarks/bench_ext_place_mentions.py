"""Extension E11 — the third spatial attribute: places mentioned in text.

The paper names three spatial attribute sources and analyses only two
(§III-A); Fig. 4 observes in passing that mentioned places often equal
the GPS district.  This extension quantifies that: over the Korean
corpus's GPS tweets, how often does an unambiguous place mention agree
with the reverse-geocoded GPS district?

Expected shape: high same-state agreement, majority same-district —
i.e. place mentions are a usable (if sparser) spatial signal, supporting
the paper's suggestion that they could be a future attribute source.
"""

from repro.analysis.mentions import MentionCorrelationStudy, render_mention_agreement
from repro.geo.mentions import PlaceMentionExtractor
from repro.geo.reverse import ReverseGeocoder


def test_place_mention_agreement(benchmark, ctx, artefact_sink):
    gazetteer = ctx.korean_dataset.gazetteer
    study = MentionCorrelationStudy(
        PlaceMentionExtractor(gazetteer), ReverseGeocoder(gazetteer)
    )
    gps_tweets = list(ctx.korean_dataset.tweets.gps_tweets())

    result = benchmark.pedantic(study.run, args=(gps_tweets,), rounds=3, iterations=1)

    artefact_sink("E11_ext_place_mentions", render_mention_agreement(result))

    assert result.tweets_with_mentions > 100
    assert result.agreement_rate > 0.5, "mentions should mostly name the GPS district"
    assert result.same_state_rate > result.agreement_rate
    assert result.median_distance_km < 30.0
