"""Extension E13 — temporal stability of the Top-k groups.

An event-detection system wants to learn the reliability weights once and
keep using them; that only works if a user's Top-k group is a persistent
trait rather than a window artefact.  This bench splits the Korean study's
observations at the median timestamp, regroups each half, and reports the
transition structure.

Expected shape: agreement far above the 1/7 chance level, with most
disagreements involving thin second-half histories.
"""

from repro.analysis.stability import render_stability, split_half_stability


def test_split_half_stability(benchmark, ctx, artefact_sink):
    observations = ctx.korean_study.observations

    result = benchmark(split_half_stability, observations)

    artefact_sink("E13_ext_stability", render_stability(result))

    assert result.users_in_both > 100
    assert result.agreement_rate > 0.45, (
        f"groups should be a persistent trait, got {result.agreement_rate:.1%}"
    )
    assert result.agreement_rate > 3 * (1 / 7), "must beat chance by a wide margin"
    # The dangerous churn (into/out of None) must be well under half.
    assert result.none_churn_rate < 0.40
