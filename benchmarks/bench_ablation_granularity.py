"""Ablation #1 (DESIGN.md) — grouping granularity.

The paper splits metropolitan cities into districts because "these cities
are too large".  This ablation regroups the same observations with metro
districts collapsed to the whole city (Seoul = one unit) and shows how the
Top-k distribution shifts: coarser units mean more matched strings, an
inflated Top-1, and a shrunken None group — i.e. the split is load-bearing
for the paper's reliability estimates.
"""

from repro.analysis.report import render_fig7
from repro.geo.korea import METROPOLITAN_STATES
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import TopKGroup, group_users
from repro.twitter.models import GeotaggedObservation


def _coarsen(obs: GeotaggedObservation) -> GeotaggedObservation:
    """Collapse metro districts to the metro city itself."""
    profile_county = (
        obs.profile_state if obs.profile_state in METROPOLITAN_STATES else obs.profile_county
    )
    tweet_county = (
        obs.tweet_state if obs.tweet_state in METROPOLITAN_STATES else obs.tweet_county
    )
    return GeotaggedObservation(
        user_id=obs.user_id,
        profile_state=obs.profile_state,
        profile_county=profile_county,
        tweet_state=obs.tweet_state,
        tweet_county=tweet_county,
    )


def test_granularity_ablation(benchmark, ctx, artefact_sink):
    observations = ctx.korean_study.observations
    coarse_observations = [_coarsen(o) for o in observations]

    coarse_groupings = benchmark(group_users, coarse_observations)

    fine = ctx.korean_study.statistics
    coarse = compute_group_statistics(coarse_groupings.values())

    artefact_sink(
        "ablation_granularity",
        render_fig7(fine, title="District-level grouping (paper)")
        + "\n\n"
        + render_fig7(coarse, title="City-level grouping (ablation)"),
    )

    fine_top1 = fine.row(TopKGroup.TOP_1).user_share
    coarse_top1 = coarse.row(TopKGroup.TOP_1).user_share
    fine_none = fine.row(TopKGroup.NONE).user_share
    coarse_none = coarse.row(TopKGroup.NONE).user_share
    assert coarse_top1 > fine_top1, (
        "coarser units must inflate Top-1 "
        f"({coarse_top1:.2%} vs {fine_top1:.2%})"
    )
    assert coarse_none < fine_none, "coarser units must shrink the None group"
