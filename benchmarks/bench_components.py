"""Component throughput benchmarks.

Micro-benchmarks for the hot paths under the study: great-circle math,
both geocoders, the PlaceFinder XML round trip, and the tweet store's
insert/query paths.  These are the knobs that decide whether the
paper-scale corpus (11 M tweets) is tractable.
"""

import pytest

from repro.geo.forward import TextGeocoder
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint, haversine_km
from repro.geo.reverse import ReverseGeocoder
from repro.storage.query import TimeRange, TweetQuery
from repro.storage.tweetstore import TweetStore
from repro.yahooapi.client import PlaceFinderClient
from repro.yahooapi.xml import parse_response, render_success


@pytest.fixture(scope="module")
def gazetteer():
    return Gazetteer.korean()


def test_haversine_throughput(benchmark):
    a = GeoPoint(37.5326, 126.9904)
    b = GeoPoint(35.1068, 129.0312)

    def batch():
        total = 0.0
        for _ in range(1_000):
            total += haversine_km(a, b)
        return total

    total = benchmark(batch)
    assert total > 0


def test_reverse_geocode_throughput(benchmark, gazetteer, ctx):
    reverse = ReverseGeocoder(gazetteer)
    points = [
        t.coordinates for t in ctx.korean_dataset.tweets.gps_tweets()[:500]
    ]

    def batch():
        return [reverse.resolve(p) for p in points]

    results = benchmark(batch)
    assert len(results) == len(points)


def test_forward_geocode_throughput(benchmark, gazetteer, ctx):
    geocoder = TextGeocoder(gazetteer)
    fields = [u.profile_location for u in ctx.korean_dataset.users][:500]

    def batch():
        return [geocoder.geocode(f) for f in fields]

    results = benchmark(batch)
    assert len(results) == len(fields)


def test_placefinder_xml_roundtrip(benchmark, gazetteer):
    reverse = ReverseGeocoder(gazetteer)
    point = GeoPoint(37.5326, 126.9904)
    path = reverse.resolve(point).path

    def roundtrip():
        return parse_response(render_success(point, path, quality=87))

    response = benchmark(roundtrip)
    assert response.ok and response.path == path


def test_placefinder_cached_lookup(benchmark, gazetteer):
    client = PlaceFinderClient(ReverseGeocoder(gazetteer), daily_quota=10**9)
    point = GeoPoint(37.5326, 126.9904)
    client.reverse_geocode(point)  # warm the cache

    response = benchmark(client.reverse_geocode, point)
    assert response.ok
    assert client.stats.requests == 1, "steady-state lookups must be cache hits"


def test_tweetstore_insert_throughput(benchmark, ctx):
    tweets = list(ctx.korean_dataset.tweets)[:2_000]

    def build():
        store = TweetStore()
        store.insert_many(tweets)
        return store

    store = benchmark(build)
    assert len(store) == len(tweets)


def test_tweetstore_query_throughput(benchmark, ctx):
    store = ctx.korean_dataset.tweets
    window = next(iter(store)).created_at_ms
    query = TweetQuery(
        time_range=TimeRange(window, window + 7 * 86_400_000), has_gps=True
    )

    results = benchmark(store.query, query)
    assert all(t.has_gps for t in results)
