"""E2 / paper Fig. 7 — number of users in each group.

Regenerates the user-distribution series from the Korean study and
benchmarks the grouping stage itself (observations -> Top-k outcomes).

Paper shape: Top-1 + Top-2 hold "nearly half" of all users (more than
40 %); the None group holds about 30 %.
"""

from repro.analysis.report import render_fig7
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import TopKGroup, group_users


def test_fig7_user_distribution(benchmark, ctx, artefact_sink):
    observations = ctx.korean_study.observations

    groupings = benchmark(group_users, observations)

    statistics = compute_group_statistics(groupings.values())
    artefact_sink("E2_fig7_user_distribution", render_fig7(statistics))

    top12 = statistics.user_share(TopKGroup.TOP_1, TopKGroup.TOP_2)
    none_share = statistics.row(TopKGroup.NONE).user_share
    assert top12 > 0.40, f"Top-1+Top-2 {top12:.2%}; paper reports more than 40%"
    assert 0.20 <= none_share <= 0.45, (
        f"None share {none_share:.2%}; paper reports about 30%"
    )
    # Shares within the matched groups decay with k.
    shares = [statistics.row(g).user_count for g in (
        TopKGroup.TOP_1, TopKGroup.TOP_2, TopKGroup.TOP_3)]
    assert shares[0] > shares[1] > shares[2]
