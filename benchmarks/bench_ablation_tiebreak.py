"""Ablation #5 — the paper's unspecified tie-break.

"Ordered them by the number of the merged strings" (§III-B) says nothing
about equal counts, yet the matched string's *rank* — and therefore the
user's group — can depend on it.  This ablation bounds the effect: the
MATCHED_FIRST / MATCHED_LAST policies are the most and least favourable
orderings possible, so the spread between them is the maximum distortion
the unspecified detail can introduce into the paper's Fig. 7.

Expected shape: a small spread — the headline claims survive any
tie-break — with Top-1 moving a few points between the two extremes.
"""

from repro.analysis.report import render_fig7
from repro.grouping.merge import TieBreak
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import TopKGroup, group_users


def test_tiebreak_ablation(benchmark, ctx, artefact_sink):
    observations = ctx.korean_study.observations

    def sweep():
        return {
            policy: compute_group_statistics(
                group_users(observations, tie_break=policy).values()
            )
            for policy in TieBreak
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Tie-break sensitivity of the Top-k user shares",
        "-----------------------------------------------",
        f"{'policy':<15} {'Top-1':>8} {'Top1+2':>8} {'None':>8}",
    ]
    for policy, stats in results.items():
        lines.append(
            f"{policy.value:<15} "
            f"{stats.row(TopKGroup.TOP_1).user_share:>8.2%} "
            f"{stats.user_share(TopKGroup.TOP_1, TopKGroup.TOP_2):>8.2%} "
            f"{stats.row(TopKGroup.NONE).user_share:>8.2%}"
        )
    artefact_sink("ablation_tiebreak", "\n".join(lines))

    best = results[TieBreak.MATCHED_FIRST]
    worst = results[TieBreak.MATCHED_LAST]
    default = results[TieBreak.STRING_ASC]

    # None membership cannot depend on ordering at all.
    for policy, stats in results.items():
        assert stats.row(TopKGroup.NONE).user_count == default.row(
            TopKGroup.NONE
        ).user_count, policy

    # MATCHED_FIRST/LAST bound the default.
    assert (
        worst.row(TopKGroup.TOP_1).user_share
        <= default.row(TopKGroup.TOP_1).user_share
        <= best.row(TopKGroup.TOP_1).user_share
    )
    # The spread stays small: the paper's claim is tie-break-robust.
    spread = (
        best.row(TopKGroup.TOP_1).user_share
        - worst.row(TopKGroup.TOP_1).user_share
    )
    assert spread < 0.10, f"tie-break moved Top-1 by {spread:.2%}"
    artefact_sink(
        "ablation_tiebreak_spread",
        f"maximum tie-break distortion of Top-1 share: {spread:.2%}",
    )
