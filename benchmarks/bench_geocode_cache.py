"""Geocode tier benchmark: cold vs warm disk tier (BENCH_geocode.json).

Measures, at the default benchmark scale:

* a full ``run_study`` with an empty ``cache_dir`` (cold: every distinct
  cell falls through to the simulated PlaceFinder backend) vs the same
  study re-run over the now-populated directory (warm: zero backend
  lookups, every cell off the disk tier);
* a service-level micro-benchmark — resolving every distinct GPS cell of
  the dataset through a :class:`GeocodeService` with a cold vs a warm
  persistent tier — which isolates the cache effect from the rest of the
  study pipeline.

Results accumulate machine-readably in
``benchmarks/output/BENCH_geocode.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.correlation import run_study
from repro.engine import EngineConfig, RunContext
from repro.geo.reverse import ReverseGeocoder
from repro.geocode import GeocodeService, PlaceFinderBackend
from repro.yahooapi.client import PlaceFinderClient

_OUTPUT = Path(__file__).parent / "output" / "BENCH_geocode.json"


def _merge_into_report(payload: dict) -> None:
    _OUTPUT.parent.mkdir(exist_ok=True)
    report = {}
    if _OUTPUT.exists():
        report = json.loads(_OUTPUT.read_text(encoding="utf-8"))
    report.update(payload)
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def _timed_study(ctx, cache_dir):
    dataset = ctx.korean_dataset
    context = RunContext(dataset_name="korean")
    start = time.perf_counter()
    study = run_study(
        dataset.users,
        dataset.tweets,
        dataset.gazetteer,
        dataset_name="Korean",
        engine_config=EngineConfig(cache_dir=str(cache_dir)),
        context=context,
    )
    return time.perf_counter() - start, study, context.metrics.snapshot()


@pytest.mark.slow
def test_cold_vs_warm_study_runs(ctx, tmp_path):
    cache = tmp_path / "geocache"
    cold_s, cold_study, cold = _timed_study(ctx, cache)
    warm_s, warm_study, warm = _timed_study(ctx, cache)

    assert cold["geocode.tiers.backend.lookups"] > 0
    assert warm["geocode.tiers.backend.lookups"] == 0
    assert warm_study.statistics == cold_study.statistics
    assert warm_study.api_stats == cold_study.api_stats

    _merge_into_report(
        {
            "study_runs": {
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "speedup": round(cold_s / warm_s, 3) if warm_s > 0 else None,
                "distinct_cells": int(cold["geocode.tiers.cache_size"]),
                "cold_backend_lookups": int(cold["geocode.tiers.backend.lookups"]),
                "warm_backend_lookups": int(warm["geocode.tiers.backend.lookups"]),
            }
        }
    )
    print(
        f"\ngeocode cache, full study: cold {cold_s:.3f}s vs warm {warm_s:.3f}s "
        f"({cold_s / warm_s:.2f}x), "
        f"{int(cold['geocode.tiers.cache_size'])} cells persisted"
    )


@pytest.mark.slow
def test_cold_vs_warm_service_micro(ctx, tmp_path):
    """Pure tier effect: resolve every distinct GPS cell cold, then warm."""
    dataset = ctx.korean_dataset
    path = tmp_path / "geocells.jsonl"

    def service():
        client = PlaceFinderClient(
            ReverseGeocoder(dataset.gazetteer), daily_quota=10**9
        )
        return GeocodeService(PlaceFinderBackend(client), cache_path=path)

    cold = service()
    cells = sorted({cold.cell_of(t.coordinates) for t in dataset.tweets.gps_tweets()})

    start = time.perf_counter()
    for cell in cells:
        cold.resolve_cell(cell)
    cold_s = time.perf_counter() - start
    assert cold.stats.backend_lookups == len(cells)

    warm = service()
    start = time.perf_counter()
    for cell in cells:
        warm.resolve_cell(cell)
    warm_s = time.perf_counter() - start
    assert warm.stats.backend_lookups == 0
    assert warm.stats.disk_hits == len(cells)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    _merge_into_report(
        {
            "service_micro": {
                "cells": len(cells),
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "speedup": round(speedup, 2),
            }
        }
    )
    print(
        f"\ngeocode cache, service micro: {len(cells)} cells, "
        f"cold {cold_s:.4f}s vs warm {warm_s:.4f}s ({speedup:.1f}x)"
    )
    # The warm tier skips the XML round-trip entirely; anything less than
    # a clear win means the tiers regressed.
    assert warm_s < cold_s
