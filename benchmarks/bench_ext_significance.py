"""Extension E12 — statistical backing for the paper's percentages.

Adds the uncertainty the paper's figures omit: bootstrap confidence
intervals on every Fig.-7 user share, and a chi-square test that the
Korean and Lady Gaga populations really are distributed differently over
the Top-k groups (slides 4-5's visual claim).
"""

from repro.analysis.significance import (
    bootstrap_share_intervals,
    compare_group_distributions,
)
from repro.grouping.topk import TopKGroup


def test_share_confidence_intervals(benchmark, ctx, artefact_sink):
    groupings = list(ctx.korean_study.groupings.values())

    intervals = benchmark.pedantic(
        bootstrap_share_intervals,
        args=(groupings,),
        kwargs={"n_resamples": 1_000, "seed": 7},
        rounds=1,
        iterations=1,
    )

    lines = [
        "Fig. 7 user shares with 95% bootstrap confidence intervals",
        "----------------------------------------------------------",
    ]
    for group in TopKGroup.reporting_order():
        ci = intervals[group]
        lines.append(
            f"{group.value:<8} {ci.share:7.2%}  [{ci.low:6.2%}, {ci.high:6.2%}]"
        )

    chi2 = compare_group_distributions(
        ctx.korean_study.groupings.values(),
        ctx.ladygaga_study.groupings.values(),
    )
    lines.append("")
    lines.append(
        f"Korean vs Lady Gaga group distributions: chi2={chi2.statistic:.1f}, "
        f"dof={chi2.dof}, p={chi2.p_value:.2e} "
        f"({'different' if chi2.significant() else 'indistinguishable'} at 5%)"
    )
    artefact_sink("E12_ext_significance", "\n".join(lines))

    # Every interval must bracket its point estimate.
    for ci in intervals.values():
        assert ci.low <= ci.share <= ci.high
    # The paper's headline shares must be inside their own intervals'
    # plausible bands at this scale.
    top1 = intervals[TopKGroup.TOP_1]
    assert top1.high - top1.low < 0.15, "interval should be reasonably tight"
    # Slides 4-5 show visibly different distributions.
    assert chi2.significant()
