"""Streaming ingestion throughput benchmark (BENCH_stream.json).

Pumps the default-scale Korean corpus through the full streaming path —
firehose → bounded queue → write-ahead journal → incremental fold →
checkpoint — and records end-to-end tweets/second for every backpressure
policy and a sweep of micro-batch sizes.  The checkpoint cadence is held
at 8 batches throughout so the journalling cost is always in the number.

Every configuration also re-asserts the subsystem's acceptance property:
a lossless run's snapshot is byte-identical to the batch ``run_study``.
The blocking policy carries a deliberately conservative throughput floor
so a pathological regression (per-tweet flushing, quadratic queue
behaviour) fails the benchmark rather than silently shipping.

Results accumulate machine-readable in
``benchmarks/output/BENCH_stream.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.analysis.serialization import study_to_json
from repro.engine.context import RunContext
from repro.streaming import (
    BackpressurePolicy,
    BoundedTweetQueue,
    CheckpointLog,
    FirehoseSource,
    StreamConfig,
    StreamConsumer,
    StreamPump,
)

_OUTPUT = Path(__file__).parent / "output" / "BENCH_stream.json"

BATCH_SIZES = (64, 256, 1024)
CHECKPOINT_EVERY = 8

#: Deliberately conservative floor for the blocking policy (tweets/sec).
#: The real figure is orders of magnitude higher; this only catches
#: pathological regressions such as per-tweet fsyncs.
MIN_BLOCK_THROUGHPUT = 500.0


def _pump_once(dataset, policy, batch_size, state_dir):
    """Run one full stream; returns (snapshot, queue, elapsed_seconds)."""
    accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
    log = CheckpointLog(state_dir / "checkpoints.jsonl")
    consumer = StreamConsumer(
        accumulator, state_dir / "wal.jsonl", log, CHECKPOINT_EVERY
    )
    source = FirehoseSource(dataset.tweets, dataset.users)
    config = StreamConfig(
        batch_size=batch_size,
        capacity=max(4 * batch_size, 1024),
        policy=policy,
        drain_every=batch_size,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    queue = BoundedTweetQueue(config.capacity, config.policy)
    pump = StreamPump(
        source, queue, consumer, config, RunContext(dataset_name="Korean")
    )
    started = time.perf_counter()
    snapshot = pump.run()
    return snapshot, queue, time.perf_counter() - started


@pytest.mark.slow
def test_stream_throughput(ctx, tmp_path):
    dataset = ctx.korean_dataset
    expected = study_to_json(ctx.korean_study)
    total = len(dataset.tweets)
    rows = []
    for policy in BackpressurePolicy:
        for batch_size in BATCH_SIZES:
            state_dir = tmp_path / f"{policy.value}-{batch_size}"
            state_dir.mkdir()
            snapshot, queue, elapsed = _pump_once(
                dataset, policy, batch_size, state_dir
            )
            assert snapshot.exhausted
            assert queue.stats.dropped == 0  # ample capacity: lossless
            assert study_to_json(snapshot.result) == expected
            rows.append(
                {
                    "policy": policy.value,
                    "batch_size": batch_size,
                    "checkpoint_every": CHECKPOINT_EVERY,
                    "tweets": total,
                    "batches": snapshot.batches,
                    "seconds": round(elapsed, 4),
                    "tweets_per_s": round(total / elapsed, 1),
                    "block_waits": queue.stats.block_waits,
                }
            )
            print(
                f"{policy.value:<12} batch={batch_size:<5} "
                f"{total / elapsed:>10.0f} tweets/s "
                f"({snapshot.batches} batches, {elapsed:.2f}s)"
            )

    blocking = [r for r in rows if r["policy"] == BackpressurePolicy.BLOCK.value]
    assert max(r["tweets_per_s"] for r in blocking) >= MIN_BLOCK_THROUGHPUT

    _OUTPUT.parent.mkdir(exist_ok=True)
    history = []
    if _OUTPUT.exists():
        history = json.loads(_OUTPUT.read_text(encoding="utf-8"))
    history.append({"corpus_tweets": total, "rows": rows})
    _OUTPUT.write_text(json.dumps(history, indent=1) + "\n", encoding="utf-8")
