"""E10 / §V — reliability-weighted event localisation (future work).

The paper's proposed application: use the Top-k study's weight factors on
profile locations when estimating an event's location.  This bench
regenerates the estimator x weighting-scheme error table over three
ground-truth earthquake scenarios, asserts the headline (weighting beats
uniform), and times the two filters.

Also covers the DESIGN.md ablation #3 (weighting schemes) and #4 (Kalman
vs particle).
"""

import pytest

from repro.analysis.reliability import WeightingScheme
from repro.events.evaluation import (
    LocalizationExperiment,
    make_korean_scenarios,
    mean_error_by_scheme,
    render_localization_table,
)
from repro.events.kalman import KalmanLocalizer
from repro.events.particle import ParticleLocalizer
from repro.events.weighted import build_measurements


@pytest.fixture(scope="module")
def experiment(ctx):
    return LocalizationExperiment(
        ctx.korean_study,
        ctx.korean_dataset.gazetteer,
        ctx.korean_study.profile_districts,
        gps_rate=0.2,
    )


@pytest.fixture(scope="module")
def scenarios(ctx):
    return make_korean_scenarios(ctx.korean_dataset.gazetteer)


@pytest.fixture(scope="module")
def measurements(ctx, experiment, scenarios):
    reports = experiment.witness_reports(scenarios[0])
    return build_measurements(
        reports,
        ctx.korean_study.profile_districts,
        ctx.korean_study.groupings,
        experiment.reliability_table,
        WeightingScheme.GROUP_MATCHED_SHARE,
    )


def test_localization_table(benchmark, experiment, scenarios, artefact_sink):
    outcomes = benchmark.pedantic(
        experiment.run_localization, args=(scenarios,), rounds=1, iterations=1
    )
    artefact_sink("E10_event_localization", render_localization_table(outcomes))

    means = mean_error_by_scheme(outcomes)
    for estimator in ("centroid", "kalman", "particle"):
        uniform = means[(estimator, WeightingScheme.UNIFORM)]
        weighted = means[(estimator, WeightingScheme.GROUP_MATCHED_SHARE)]
        assert weighted < uniform, (
            f"{estimator}: reliability weighting must beat uniform "
            f"({weighted:.1f} vs {uniform:.1f} km)"
        )


def test_detection_latency(benchmark, experiment, scenarios, artefact_sink):
    outcomes = benchmark.pedantic(
        experiment.run_detection, args=(scenarios,), rounds=1, iterations=1
    )
    lines = ["Event detection latency (Toretter pipeline)",
             "--------------------------------------------"]
    for outcome in outcomes:
        latency = (
            f"{outcome.latency_ms / 60000:.1f} min"
            if outcome.latency_ms is not None
            else "missed"
        )
        lines.append(
            f"{outcome.scenario_name:<16} {latency:>10}  "
            f"({outcome.positive_reports} positive reports)"
        )
    artefact_sink("E10_detection_latency", "\n".join(lines))
    assert all(o.detected for o in outcomes), "every scenario must raise an alarm"


def test_kalman_throughput(benchmark, measurements):
    estimator = KalmanLocalizer()
    estimate = benchmark(estimator.estimate, measurements)
    assert -90 <= estimate.lat <= 90


def test_particle_throughput(benchmark, measurements):
    estimator = ParticleLocalizer(particle_count=500)
    estimate = benchmark(estimator.estimate, measurements)
    assert -90 <= estimate.lat <= 90
