"""E8 / slide 1 — dataset summary (users / tweets / collection API).

Prints the two datasets' summary table and benchmarks a fresh small-scale
Korean dataset build (population -> graph -> crawl -> timelines), the
collection phase of the whole study.
"""

from repro.analysis.report import render_dataset_summary
from repro.datasets.korean import KoreanDatasetConfig, build_korean_dataset
from repro.twitter.tweetgen import CollectionWindow


def test_dataset_summary(benchmark, ctx, artefact_sink):
    config = KoreanDatasetConfig(
        population_size=400,
        crawl_limit=300,
        window=CollectionWindow(start_ms=1_314_835_200_000, days=14),
        use_api_timelines=True,
        seed=13,
    )

    dataset = benchmark.pedantic(build_korean_dataset, args=(config,), rounds=3, iterations=1)

    assert len(dataset.users) == 300
    assert len(dataset.tweets) > 0

    artefact_sink(
        "E8_dataset_summary",
        render_dataset_summary(
            ctx.korean_dataset.summary, ctx.ladygaga_dataset.summary
        ),
    )

    korean = ctx.korean_dataset.summary
    gaga = ctx.ladygaga_dataset.summary
    # Collection-API provenance, as on slide 1.
    assert "Search API" in korean.collection_api
    assert "Streaming API" in gaga.collection_api
    # GPS tweets are the scarce resource of the whole study.
    assert korean.geotagged_tweet_count < korean.tweet_count / 2
