"""E9 / §III-B — the refinement funnel.

Regenerates the attrition accounting (crawled -> well-defined profile ->
has GPS -> study users) and benchmarks the full refinement pipeline run,
including forward geocoding of every profile and the XML reverse-geocode
round trip for every GPS tweet.

Paper shape: heavy attrition at both filters — "we had to remove many
users" (profile quality) and "most of our users were eliminated" (GPS
scarcity).
"""

from repro.analysis.report import render_funnel
from repro.datasets.refine import RefinementPipeline
from repro.geo.forward import TextGeocoder
from repro.geo.reverse import ReverseGeocoder
from repro.yahooapi.client import PlaceFinderClient


def test_refinement_funnel(benchmark, ctx, artefact_sink):
    gazetteer = ctx.korean_dataset.gazetteer

    def run_refinement():
        pipeline = RefinementPipeline(
            text_geocoder=TextGeocoder(gazetteer),
            placefinder=PlaceFinderClient(ReverseGeocoder(gazetteer), daily_quota=10**9),
            min_gps_tweets=1,
        )
        return pipeline.run(ctx.korean_dataset.users, ctx.korean_dataset.tweets)

    refined = benchmark.pedantic(run_refinement, rounds=3, iterations=1)

    funnel = refined.funnel
    artefact_sink("E9_refinement_funnel", render_funnel(funnel))

    assert funnel.well_defined_users < funnel.crawled_users * 0.6, (
        "profile filtering must remove many users (paper: ~52k -> ~30k... band)"
    )
    assert funnel.study_users < funnel.well_defined_users, (
        "GPS scarcity must eliminate further users"
    )
    assert funnel.gps_tweets < funnel.total_tweets * 0.25, (
        "GPS tweets are the scarce minority of the corpus"
    )
    assert funnel.study_users == len(refined.study_users)
    assert funnel.resolved_observations == len(refined.observations)
