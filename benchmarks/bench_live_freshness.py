"""Live pipeline freshness benchmark (BENCH_live.json).

Two claims back the live subsystem's existence:

* **Delta builds scale with churn, not study size.**  With warm caches,
  rebuilding a snapshot after 1% of study users changed must be at
  least 5x faster than the batch path
  (``ServingSnapshot.from_study(accumulator.snapshot())``) — that factor
  is asserted, not just reported.  10% and 100% churn are measured
  alongside to show the cost curve.
* **Freshness does not cost query quality.**  Streaming the full corpus
  through a bounded firehose with cadence-triggered swaps, the swap-lag
  p95 (data-ready to swap-complete) stays sub-second while a concurrent
  closed-loop query worker sees `/lookup` latency percentiles comparable
  to a quiet-server baseline — the same in-band criterion
  ``BENCH_serving.json`` uses for load shedding.

Results accumulate machine-readably in
``benchmarks/output/BENCH_live.json``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

import pytest

from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.live import DeltaSnapshotBuilder, LiveConfig, LiveStudyPipeline
from repro.serving import ServingApp, ServingSnapshot, SnapshotStore
from repro.streaming import (
    BackpressurePolicy,
    BoundedTweetQueue,
    CheckpointLog,
    FirehoseSource,
    StreamConfig,
    StreamConsumer,
    StreamPump,
)
from repro.engine.context import RunContext

_OUTPUT = Path(__file__).parent / "output" / "BENCH_live.json"

CHURN_LEVELS = (0.01, 0.10, 1.00)
MIN_SPEEDUP_AT_1PCT = 5.0
REPEATS = 3
CADENCE_BATCHES = 16


def _merge_into_report(payload: dict) -> None:
    _OUTPUT.parent.mkdir(exist_ok=True)
    report = {}
    if _OUTPUT.exists():
        report = json.loads(_OUTPUT.read_text(encoding="utf-8"))
    report.update(payload)
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def _best_of(repeats: int, fn) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs; returns (seconds, result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.slow
def test_delta_build_beats_full_rebuild_under_low_churn(ctx):
    """Warm-cache delta builds cost O(churn): the 1%-churn build must be
    >= 5x faster than the full batch rebuild of the same state."""
    dataset = ctx.korean_dataset
    name = ctx.korean_study.dataset_name
    accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
    accumulator.fold(list(dataset.tweets))
    builder = DeltaSnapshotBuilder(accumulator, dataset_name=name)
    builder.build()  # cold build: warms every per-user cache

    full_s, full_snapshot = _best_of(
        REPEATS,
        lambda: ServingSnapshot.from_study(accumulator.snapshot(name)),
    )
    study_ids = sorted(accumulator.study_user_ids())
    rng = random.Random(17)

    churn_report = {}
    speedups = {}
    for fraction in CHURN_LEVELS:
        count = max(1, round(len(study_ids) * fraction))
        chosen = rng.sample(study_ids, count)

        def delta_build(chosen=chosen):
            accumulator.mark_dirty(chosen)
            return builder.build()

        delta_s, delta_snapshot = _best_of(REPEATS, delta_build)
        # Same bytes, whatever the path — the equivalence invariant.
        assert delta_snapshot.digest == full_snapshot.digest
        speedup = full_s / delta_s
        speedups[fraction] = speedup
        churn_report[f"{fraction:.0%}"] = {
            "dirty_users": count,
            "build_ms": round(delta_s * 1e3, 3),
            "speedup_vs_full": round(speedup, 1),
        }

    assert speedups[0.01] >= MIN_SPEEDUP_AT_1PCT, (
        f"1%-churn delta build only {speedups[0.01]:.1f}x faster than a "
        f"full rebuild (need >= {MIN_SPEEDUP_AT_1PCT}x)"
    )

    _merge_into_report(
        {
            "delta_build": {
                "study_users": len(study_ids),
                "full_rebuild_ms": round(full_s * 1e3, 3),
                "churn": churn_report,
            }
        }
    )
    print(
        f"\ndelta build over {len(study_ids)} users: full rebuild "
        f"{full_s * 1e3:.1f} ms; "
        + ", ".join(
            f"{label} churn {entry['build_ms']} ms "
            f"({entry['speedup_vs_full']}x)"
            for label, entry in churn_report.items()
        )
    )


def _quantiles(metrics: dict, prefix: str, scale: float) -> dict[str, float]:
    return {
        q: round(metrics[f"{prefix}.{q}"] * scale, 2) for q in ("p50", "p95", "p99")
    }


class _WindowSampler(SnapshotStore):
    """A store that records query-latency percentiles at every swap.

    The serving latency histogram partitions its window on the store
    generation, so the percentiles read *just before* a swap describe
    exactly the queries answered since the previous swap — i.e. one
    full mid-stream window, never polluted by quiet-server samples from
    other generations.
    """

    def __init__(self, snapshot, metrics):
        super().__init__(snapshot)
        self._metrics = metrics
        self.windows: list[dict[str, float]] = []

    def swap(self, snapshot):
        """Capture the closing window's lookup percentiles, then swap."""
        metrics = self._metrics.snapshot()
        if metrics.get("serving.latency.lookup.count", 0) > 0:
            self.windows.append(
                _quantiles(metrics, "serving.latency.lookup", 1e6)
            )
        return super().swap(snapshot)


@pytest.mark.slow
def test_swap_lag_stays_low_while_queries_stay_fast(ctx, tmp_path):
    """Stream the corpus with cadence swaps while a closed-loop worker
    queries the live server: swap-lag p95 stays sub-second and query
    latency stays in the quiet-server band."""
    dataset = ctx.korean_dataset
    name = ctx.korean_study.dataset_name
    accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
    log = CheckpointLog(tmp_path / "checkpoints.jsonl")
    consumer = StreamConsumer(accumulator, tmp_path / "wal.jsonl", log, 8)
    source = FirehoseSource(dataset.tweets, dataset.users)
    config = StreamConfig(
        batch_size=256, capacity=1024,
        policy=BackpressurePolicy.BLOCK, drain_every=64, checkpoint_every=8,
    )
    queue = BoundedTweetQueue(config.capacity, config.policy)
    context = RunContext(dataset_name=name)
    pump = StreamPump(source, queue, consumer, config, context)
    builder = DeltaSnapshotBuilder(accumulator, dataset_name=name)
    store = _WindowSampler(builder.build(), context.metrics)
    geocoder = GeocodeService(DirectBackend(ReverseGeocoder(dataset.gazetteer)))
    app = ServingApp(store, geocoder, metrics=context.metrics)
    pipeline = LiveStudyPipeline(
        pump, builder, store, LiveConfig(cadence_batches=CADENCE_BATCHES)
    )

    rng = random.Random(23)
    user_ids = list(ctx.korean_study.groupings)
    targets = [f"/lookup?user={rng.choice(user_ids)}" for _ in range(512)]

    # Quiet-server baseline: same dispatch path, no stream competing.
    for target in targets:
        status, _ = app.dispatch("GET", target)
        assert status in (200, 404)  # pre-stream snapshot may lack the user
    baseline = _quantiles(
        context.metrics.snapshot(), "serving.latency.lookup", 1e6
    )

    counts = {"requests": 0, "errors": 0}
    stop = threading.Event()

    def query_loop():
        while not stop.is_set():
            status, _ = app.dispatch("GET", targets[counts["requests"] % 512])
            counts["requests"] += 1
            if status >= 500:
                counts["errors"] += 1

    worker = threading.Thread(target=query_loop, daemon=True)
    worker.start()
    start = time.perf_counter()
    snapshot = pipeline.run()
    stream_wall = time.perf_counter() - start
    stop.set()
    worker.join(timeout=5.0)

    metrics = context.metrics.snapshot()
    swap_lag = _quantiles(metrics, "live.swap_lag", 1e3)  # ms

    assert snapshot.exhausted
    assert counts["errors"] == 0
    assert counts["requests"] > 0
    assert metrics["live.swaps"] > 0
    # The first captured window closed at the first swap and so includes
    # the quiet-server baseline samples; every later window is purely
    # mid-stream traffic.
    stream_windows = store.windows[1:] or store.windows
    worst = max(window["p95"] for window in stream_windows)
    # Freshness claim: publishing a delta snapshot takes well under a
    # second even while serving queries.
    assert swap_lag["p95"] < 1000.0, f"swap-lag p95 {swap_lag['p95']} ms"
    # Quality claim: concurrent swaps leave query latency in the quiet
    # band (same generous CI-noise bound BENCH_serving uses).
    assert worst <= max(baseline["p95"] * 10.0, baseline["p95"] + 500.0)

    _merge_into_report(
        {
            "freshness": {
                "tweets": len(source),
                "batches": snapshot.batches,
                "cadence_batches": CADENCE_BATCHES,
                "swaps": int(metrics["live.swaps"]),
                "swaps_skipped": int(metrics.get("live.swaps_skipped", 0)),
                "stream_wall_s": round(stream_wall, 3),
                "swap_lag_ms": swap_lag,
                "queries_during_stream": counts["requests"],
                "query_errors": counts["errors"],
                "baseline_lookup_us": baseline,
                "worst_window_lookup_p95_us": worst,
                "stream_windows_sampled": len(stream_windows),
            }
        }
    )
    print(
        f"\nfreshness: {int(metrics['live.swaps'])} swaps over "
        f"{snapshot.batches} batches; swap-lag p95 {swap_lag['p95']} ms; "
        f"worst mid-stream lookup p95 {worst} us over "
        f"{len(stream_windows)} windows "
        f"(quiet baseline {baseline['p95']} us, "
        f"{counts['requests']} concurrent queries)"
    )
