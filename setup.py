"""Legacy setup shim so `pip install -e .` works offline without `wheel`."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Lee & Hwang (ICDE 2012): correlation between "
        "spatial attributes on Twitter"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
