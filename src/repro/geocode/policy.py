"""Service-level lookup policy: failure injection and retry accounting.

The retry/backoff and failure-injection knobs used to live inside
:class:`~repro.yahooapi.client.PlaceFinderClient`; they are policy, not
client mechanics, so they now live here and are shared by every geocoding
consumer — the client keeps re-exporting :class:`FailurePlan` for
backwards compatibility, and both the client and the tiered
:class:`~repro.geocode.service.GeocodeService` drive their retry loops
through :func:`resolve_with_retries` so the semantics cannot drift.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol, TypeVar

from repro.errors import ServiceUnavailableError

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class FailurePlan:
    """Deterministic transient-failure injection.

    Every ``every_n``-th *uncached* request (1-based) raises
    :class:`ServiceUnavailableError` before the lookup is attempted.
    ``every_n = 0`` disables injection.

    Quota interaction — pinned semantics: an injected failure fires
    *after* the request is counted against the daily quota, so failed
    requests burn quota with no result.  This is deliberate and mirrors
    the real service, where a request that died with a 503 had already
    been admitted and metered; a retry therefore consumes a fresh unit
    of quota, and a retry storm can exhaust the day's budget (see
    ``tests/yahooapi/test_client.py::TestQuotaFailureInteraction``).
    """

    every_n: int = 0

    def should_fail(self, request_index: int) -> bool:
        """Whether the ``request_index``-th request should fail."""
        return self.every_n > 0 and request_index % self.every_n == 0


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times a transient failure is retried before giving up.

    ``max_retries = 2`` is the collection pipeline's historical budget:
    one lookup plus up to two retries per point.
    """

    max_retries: int = 2


class RetryCounters(Protocol):
    """Anything that accounts retry attempts and give-ups.

    Both :class:`~repro.yahooapi.client.ClientStats` and the service's
    :class:`~repro.geocode.service.TierStats` satisfy this.
    """

    retries: int
    retry_exhausted: int


def resolve_with_retries(
    attempt: Callable[[], T],
    policy: RetryPolicy,
    counters: RetryCounters,
) -> T | None:
    """Run ``attempt`` with retry-on-503; ``None`` once retries exhaust.

    Every retry is counted in ``counters.retries``; a lookup abandoned
    with its budget spent is counted in ``counters.retry_exhausted``
    (distinct from a genuine no-result, which ``attempt`` reports by
    returning ``None`` itself).  Non-transient errors — quota exhaustion
    in particular — propagate untouched.
    """
    for attempt_index in range(policy.max_retries + 1):
        try:
            return attempt()
        except ServiceUnavailableError:
            if attempt_index == policy.max_retries:
                counters.retry_exhausted += 1
                return None
            counters.retries += 1
    return None  # pragma: no cover - loop always returns
