"""Persistent cell store: the geocode service's on-disk cache tier.

One JSONL record per resolved 0.001° cell::

    {"cell": [37517, 127047], "path": ["South Korea", "Seoul", "Gangnam-gu", ""]}
    {"cell": [0, 0], "path": null}

``path: null`` records a *negative* outcome (the backend answered
"nowhere"), which is just as cacheable as a hit — re-asking for the
middle of the ocean every run would defeat the tier.

The file shares the repository-wide journal contract
(:mod:`repro.storage.journal`): append-only, single-flush writes, a torn
final line is dropped on load, corruption anywhere else raises.  Because
cell outcomes are pure functions of the cell key (see
:class:`~repro.geocode.service.GeocodeService`), replaying duplicate
records is harmless — last write wins over identical values — so crash
recovery needs no compaction step.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.geo.region import AdminPath
from repro.storage.journal import append_journal, read_journal

#: A cache cell key: quantised ``(lat, lon)`` indexes.
Cell = tuple[int, int]


def _decode(line: str) -> tuple[Cell, AdminPath | None]:
    data = json.loads(line)
    raw_cell = data["cell"]
    cell = (int(raw_cell[0]), int(raw_cell[1]))
    raw_path = data["path"]
    if raw_path is None:
        return cell, None
    country, state, county, town = (str(part) for part in raw_path)
    return cell, AdminPath(country=country, state=state, county=county, town=town)


class CellStore:
    """Append-only persistent map of cell key -> geocode outcome.

    Args:
        path: JSONL file backing the store; loaded eagerly (torn tail
            dropped), created on the first :meth:`put`.

    Raises:
        StorageError: if a non-final line of an existing file is corrupt.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._cells: dict[Cell, AdminPath | None] = {}
        for cell, outcome in read_journal(
            self._path, _decode, description="cell record"
        ):
            self._cells[cell] = outcome

    @property
    def path(self) -> Path:
        """The backing journal file."""
        return self._path

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell: Cell) -> bool:
        return cell in self._cells

    def get(self, cell: Cell) -> AdminPath | None:
        """The stored outcome for ``cell``.

        Raises:
            KeyError: if the cell has never been stored.
        """
        return self._cells[cell]

    def put(self, cell: Cell, outcome: AdminPath | None) -> None:
        """Record one cell outcome durably (no-op if already identical)."""
        if cell in self._cells and self._cells[cell] == outcome:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        append_journal(self._path, [_encode(cell, outcome)])
        self._cells[cell] = outcome


def _encode(cell: Cell, outcome: AdminPath | None) -> dict[str, object]:
    return {
        "cell": [cell[0], cell[1]],
        "path": None
        if outcome is None
        else [outcome.country, outcome.state, outcome.county, outcome.town],
    }
