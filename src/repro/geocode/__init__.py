"""Tiered, order-insensitive geocoding service layer.

Public surface of :mod:`repro.geocode`:

* :class:`GeocodeService` / :class:`TierStats` — the tiered cache every
  geocoding consumer goes through (L1 LRU over a persistent cell store
  over a backend), with canonical-representative cell semantics
* :class:`GeocodeBackend` — the resolver protocol, implemented by
  :class:`DirectBackend` (in-process) and :class:`PlaceFinderBackend`
  (simulated API, XML round-trip)
* :class:`CellStore` — the append-only on-disk cell tier
* :class:`FailurePlan` / :class:`RetryPolicy` /
  :func:`resolve_with_retries` — the shared lookup policy
"""

from repro.geocode.backend import DirectBackend, GeocodeBackend, PlaceFinderBackend
from repro.geocode.cellstore import Cell, CellStore
from repro.geocode.policy import FailurePlan, RetryPolicy, resolve_with_retries
from repro.geocode.service import (
    CELL_CACHE_FILENAME,
    DEFAULT_L1_CAPACITY,
    DEFAULT_QUANTUM_DEG,
    GeocodeService,
    TierStats,
    cell_cache_path,
    shard_segment_path,
    simulated_latency,
)

__all__ = [
    "CELL_CACHE_FILENAME",
    "Cell",
    "CellStore",
    "DEFAULT_L1_CAPACITY",
    "DEFAULT_QUANTUM_DEG",
    "DirectBackend",
    "FailurePlan",
    "GeocodeBackend",
    "GeocodeService",
    "PlaceFinderBackend",
    "RetryPolicy",
    "TierStats",
    "cell_cache_path",
    "resolve_with_retries",
    "shard_segment_path",
    "simulated_latency",
]
