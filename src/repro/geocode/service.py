"""The tiered, order-insensitive geocode service.

Every geocoding consumer — the batch engine's reverse-geocode stage, the
streaming accumulator, the CLI — goes through one
:class:`GeocodeService`: an in-memory LRU (L1) over an optional
persistent append-only :class:`~repro.geocode.cellstore.CellStore` (the
disk tier), over a :class:`~repro.geocode.backend.GeocodeBackend`.

**Canonical-representative semantics.**  Coordinates are quantised to
0.001° cells, and a cell miss is resolved at the cell's *canonical
representative point* — its quantisation anchor ``(i·q, j·q)`` — never at
whichever tweet happened to arrive first.  The cached outcome is thus a
pure function of the cell key: independent of arrival order, batch
boundaries, shard assignment, and of which run (or which process) filled
the cache.  That property is what lets

* the batch engine reconstruct the canonical
  :class:`~repro.yahooapi.client.ClientStats` *arithmetically* instead of
  replaying the tweet stream serially through a shared client,
* streaming snapshots reuse fold-time resolutions instead of re-geocoding
  every retained tweet, and
* a warm disk tier be shared safely across runs, shards, and resumes —
  a cell resolved anywhere resolves identically everywhere.

Negative outcomes (``None`` — the backend answered "nowhere") are cached
like hits; transient give-ups (retry budget exhausted) are *not* cached,
so a flaky backend cannot poison the tiers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, TypeVar

from repro.errors import ConfigurationError
from repro.geo.point import GeoPoint
from repro.geo.region import AdminPath
from repro.geocode.backend import GeocodeBackend
from repro.geocode.cellstore import Cell, CellStore
from repro.geocode.policy import RetryPolicy, resolve_with_retries

_T = TypeVar("_T")


class FlightCoordinator(Protocol):
    """Deduplicates concurrent keyed calls (the single-flight pattern).

    ``do(key, fn)`` runs ``fn`` at most once per key at a time: the first
    caller for a key (the *leader*) executes it, every concurrent caller
    for the same key (a *follower*) blocks and receives the leader's
    result (or its raised exception).  The serving layer's
    :class:`~repro.serving.batcher.SingleFlight` implements this; the
    protocol lives here so :class:`GeocodeService` can accept a
    coordinator without importing the serving package.
    """

    def do(self, key: object, fn: Callable[[], _T]) -> _T:
        """Run ``fn`` once per concurrent ``key``; all callers share the result."""
        ...

#: Default L1 capacity — comfortably holds both study corpora's distinct
#: cells while still exercising eviction under adversarial tests.
DEFAULT_L1_CAPACITY = 65_536

#: The cache quantum the paper-era client used (0.001° ≈ 110 m).
DEFAULT_QUANTUM_DEG = 0.001

#: Filename of the persistent cell tier inside a cache directory.
CELL_CACHE_FILENAME = "geocells.jsonl"


def cell_cache_path(cache_dir: str | Path) -> Path:
    """The shared warm-cache file inside ``cache_dir``.

    Every consumer of a cache directory — the batch engine, the streaming
    accumulator, the CLI — derives the cell-store path through this one
    helper, so a study run and a stream resume pointed at the same
    directory always share the same warm tier.
    """
    return Path(cache_dir) / CELL_CACHE_FILENAME


def shard_segment_path(cache_path: Path, shard_index: int) -> Path:
    """The shard-local segment file for ``shard_index``.

    Process-backend shard workers never append to the shared warm cache
    concurrently — each writes its own ``geocells.shard-<k>.jsonl``
    segment next to it (single writer per journal file, the
    :mod:`repro.storage.journal` contract), and the parent merges the
    segments append-only into the shared file after the workers return.
    A crashed worker leaves at most a torn final segment line, which the
    journal reader drops; its retry reopens the same segment and
    warm-starts from the cells it already resolved.
    """
    return cache_path.with_name(
        f"{cache_path.stem}.shard-{shard_index}{cache_path.suffix}"
    )


def simulated_latency(requests: int, latency_s: float) -> float:
    """``requests`` accumulations of ``latency_s``, by repeated addition.

    The simulated client accumulates latency one request at a time;
    reproducing its float **bit for bit** requires the same addition
    sequence — ``requests * latency_s`` rounds differently.
    """
    total = 0.0
    for _ in range(requests):
        total += latency_s
    return total


@dataclass
class TierStats:
    """Per-tier cache accounting for one :class:`GeocodeService`.

    Attributes:
        l1_hits / l1_misses / l1_evictions: In-memory LRU traffic.
        disk_hits / disk_misses: Persistent-tier traffic (only lookups
            that missed L1 reach the disk tier).
        backend_lookups: Lookups that fell through every tier to the
            backend — the "real API calls" a warm cache avoids.
        no_result: Backend lookups that answered "nowhere".
        stored: Cell outcomes written into the tiers.
        retries / retry_exhausted: Transient-failure retry accounting
            (shared :class:`~repro.geocode.policy.RetryPolicy` semantics).
    """

    l1_hits: int = 0
    l1_misses: int = 0
    l1_evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    backend_lookups: int = 0
    no_result: int = 0
    stored: int = 0
    retries: int = 0
    retry_exhausted: int = 0

    def merge(self, other: "TierStats") -> None:
        """Fold another service's counters in (shard-fleet accounting).

        Deterministic — plain integer sums, independent of merge order —
        so ``study --metrics`` reports identical fleet totals no matter
        which worker finished first.  ``stored`` then counts writes into
        *any* tier instance: a cell a worker persisted into its shard
        segment and the parent merged into the shared store counts twice,
        once per journal it was written to.
        """
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l1_evictions += other.l1_evictions
        self.disk_hits += other.disk_hits
        self.disk_misses += other.disk_misses
        self.backend_lookups += other.backend_lookups
        self.no_result += other.no_result
        self.stored += other.stored
        self.retries += other.retries
        self.retry_exhausted += other.retry_exhausted

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Nested dict view (flattens to ``…l1.hits`` etc. in metrics)."""
        return {
            "l1": {
                "hits": self.l1_hits,
                "misses": self.l1_misses,
                "evictions": self.l1_evictions,
            },
            "disk": {"hits": self.disk_hits, "misses": self.disk_misses},
            "backend": {
                "lookups": self.backend_lookups,
                "no_result": self.no_result,
                "retries": self.retries,
                "retry_exhausted": self.retry_exhausted,
            },
        }


class GeocodeService:
    """Tiered cell-resolution cache over a :class:`GeocodeBackend`.

    Args:
        backend: The resolver misses fall through to.
        cache_path: Optional JSONL file for the persistent disk tier;
            ``None`` keeps the service memory-only.
        l1_capacity: Maximum cells the in-memory LRU retains.
        quantum_deg: Cell edge length in degrees (the cache key grid).
        retry_policy: Transient-failure retry budget for backend lookups.
    """

    def __init__(
        self,
        backend: GeocodeBackend,
        cache_path: str | Path | None = None,
        l1_capacity: int = DEFAULT_L1_CAPACITY,
        quantum_deg: float = DEFAULT_QUANTUM_DEG,
        retry_policy: RetryPolicy | None = None,
    ):
        if l1_capacity < 1:
            raise ConfigurationError(
                f"l1_capacity must be >= 1, got {l1_capacity}"
            )
        if quantum_deg <= 0:
            raise ConfigurationError(
                f"quantum_deg must be positive, got {quantum_deg}"
            )
        self._backend = backend
        self._quantum_deg = quantum_deg
        self._l1: OrderedDict[Cell, AdminPath | None] = OrderedDict()
        self._l1_capacity = l1_capacity
        self._disk = CellStore(cache_path) if cache_path is not None else None
        self._retry_policy = retry_policy or RetryPolicy()
        self._flight: FlightCoordinator | None = None
        self._tier_lock: threading.RLock | None = None
        self.stats = TierStats()

    # ------------------------------------------------------------------- keys
    @property
    def backend(self) -> GeocodeBackend:
        """The resolver behind the tiers."""
        return self._backend

    @property
    def quantum_deg(self) -> float:
        """Cell edge length in degrees."""
        return self._quantum_deg

    def cell_of(self, point: GeoPoint) -> Cell:
        """The cache cell ``point`` falls into."""
        q = self._quantum_deg
        return (round(point.lat / q), round(point.lon / q))

    def representative(self, cell: Cell) -> GeoPoint:
        """The cell's canonical representative point (its grid anchor).

        Every miss for the cell is resolved here, making the outcome a
        pure function of the cell key.
        """
        return GeoPoint(
            cell[0] * self._quantum_deg, cell[1] * self._quantum_deg
        )

    # ---------------------------------------------------------------- resolve
    def enable_single_flight(self, coordinator: FlightCoordinator) -> None:
        """Make :meth:`resolve` / :meth:`resolve_cell` safe for concurrent
        callers, coalescing duplicate misses through ``coordinator``.

        Once enabled, cache probes and stores serialise on an internal
        lock while backend lookups for *distinct* cells still run
        concurrently; concurrent misses for the *same* cell collapse into
        one backend call whose outcome every waiter shares.  The batch
        engine and streaming accumulator never call this — their serial
        resolve path is unchanged and pays no locking.
        """
        self._flight = coordinator
        self._tier_lock = threading.RLock()

    def resolve(self, point: GeoPoint) -> AdminPath | None:
        """Resolve ``point`` through the tiers (``None`` = unresolvable)."""
        return self.resolve_cell(self.cell_of(point))

    def resolve_cell(self, cell: Cell) -> AdminPath | None:
        """Resolve one cell: L1, then disk, then the backend.

        With single-flight enabled (:meth:`enable_single_flight`) this is
        the thread-safe entry point; concurrent duplicate misses cost one
        backend lookup.
        """
        if self._flight is None:
            hit, outcome = self.lookup_cached(cell)
            if hit:
                return outcome
            return self.resolve_uncached(cell)
        assert self._tier_lock is not None
        with self._tier_lock:
            hit, outcome = self.lookup_cached(cell)
        if hit:
            return outcome
        return self._flight.do(cell, lambda: self._resolve_coalesced(cell))

    def _resolve_coalesced(self, cell: Cell) -> AdminPath | None:
        """Leader body of a single-flight miss: re-probe, then backend.

        The re-probe (under the tier lock) closes the race where a
        request misses the cache, the concurrent leader for the same cell
        stores and retires its flight, and this request would otherwise
        become a fresh leader and pay a second backend call for a cell
        that is now cached.
        """
        assert self._tier_lock is not None
        with self._tier_lock:
            hit, outcome = self.lookup_cached(cell)
            if hit:
                return outcome
        point = self.representative(cell)
        scratch = TierStats()
        result = resolve_with_retries(
            lambda: self._backend.lookup(point), self._retry_policy, scratch
        )
        with self._tier_lock:
            self.stats.backend_lookups += 1
            self.stats.retries += scratch.retries
            self.stats.retry_exhausted += scratch.retry_exhausted
            if scratch.retry_exhausted:
                return None  # transient give-up: stays uncached
            if result is None:
                self.stats.no_result += 1
            self.store(cell, result)
        return result

    def is_cached(self, cell: Cell) -> bool:
        """Read-only probe: is ``cell`` resident in any cache tier?

        Unlike :meth:`lookup_cached` this touches no counters and
        promotes nothing into L1 — it exists so a transport layer can ask
        "would resolving this block on the backend?" without perturbing
        the tier statistics the benchmarks assert on.  The answer is
        advisory under concurrency: an eviction racing the probe can turn
        a ``True`` stale by dispatch time, which costs one backend call,
        never correctness.
        """
        probe = (
            lambda: cell in self._l1
            or (self._disk is not None and cell in self._disk)
        )
        if self._tier_lock is not None:
            with self._tier_lock:
                return probe()
        return probe()

    def lookup_cached(self, cell: Cell) -> tuple[bool, AdminPath | None]:
        """Probe the cache tiers only; ``(hit, outcome)``.

        A disk hit is promoted into L1.  The backend is never consulted —
        bulk consumers (the engine stage) use this to split work into
        cached cells and misses they resolve across shards.
        """
        if cell in self._l1:
            self.stats.l1_hits += 1
            self._l1.move_to_end(cell)
            return True, self._l1[cell]
        self.stats.l1_misses += 1
        if self._disk is not None:
            if cell in self._disk:
                self.stats.disk_hits += 1
                outcome = self._disk.get(cell)
                self._admit(cell, outcome)
                return True, outcome
            self.stats.disk_misses += 1
        return False, None

    def resolve_uncached(self, cell: Cell) -> AdminPath | None:
        """Resolve ``cell`` at its representative via the backend.

        The outcome is stored into every tier — except a transient
        give-up (retry budget exhausted), which must stay uncached so a
        later attempt can still succeed.
        """
        point = self.representative(cell)
        self.stats.backend_lookups += 1
        exhausted_before = self.stats.retry_exhausted
        outcome = resolve_with_retries(
            lambda: self._backend.lookup(point), self._retry_policy, self.stats
        )
        if self.stats.retry_exhausted > exhausted_before:
            return None
        if outcome is None:
            self.stats.no_result += 1
        self.store(cell, outcome)
        return outcome

    # ------------------------------------------------------------------ store
    def store(self, cell: Cell, outcome: AdminPath | None) -> None:
        """Record one cell outcome into L1 and (if present) the disk tier.

        This is also the path shard workers' results are merged back
        through — the outcome must have been resolved at
        :meth:`representative` for the pure-function contract to hold.
        """
        self._admit(cell, outcome)
        if self._disk is not None:
            self._disk.put(cell, outcome)
        self.stats.stored += 1

    def _admit(self, cell: Cell, outcome: AdminPath | None) -> None:
        self._l1[cell] = outcome
        self._l1.move_to_end(cell)
        while len(self._l1) > self._l1_capacity:
            self._l1.popitem(last=False)
            self.stats.l1_evictions += 1

    # ------------------------------------------------------------------ views
    @property
    def cache_size(self) -> int:
        """Distinct cells the service currently caches (largest tier)."""
        if self._disk is not None:
            return len(self._disk)
        return len(self._l1)

    @property
    def l1_size(self) -> int:
        """Cells resident in the in-memory LRU."""
        return len(self._l1)

    @property
    def has_disk_tier(self) -> bool:
        """Whether a persistent tier backs the LRU."""
        return self._disk is not None

    @property
    def cache_path(self) -> Path | None:
        """The persistent tier's journal file (``None`` when memory-only)."""
        return self._disk.path if self._disk is not None else None

    def stats_source(self) -> dict[str, object]:
        """Metrics-registry source: tier counters plus cache occupancy."""
        snapshot: dict[str, object] = dict(self.stats.snapshot())
        snapshot["cache_size"] = self.cache_size
        snapshot["l1_size"] = self.l1_size
        client = getattr(self._backend, "client", None)
        if client is not None:
            snapshot["client_cache_size"] = client.cache_size
        return snapshot
