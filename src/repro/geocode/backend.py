"""Geocode backends: the one protocol every resolver implements.

A backend answers exactly one question — "which administrative path does
this point belong to?" — and reports "nowhere" as ``None``.  Transient
conditions (an injected 503, quota exhaustion) propagate as the existing
error hierarchy so the service-level
:class:`~repro.geocode.policy.RetryPolicy` can react uniformly.

Two implementations cover the repository's resolvers:

* :class:`DirectBackend` wraps the library-level
  :class:`~repro.geo.reverse.ReverseGeocoder` — no XML, no quota.
* :class:`PlaceFinderBackend` wraps the simulated
  :class:`~repro.yahooapi.client.PlaceFinderClient` — one full XML
  round-trip per lookup, quota and failure injection included.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.errors import GeocodingError
from repro.geo.point import GeoPoint
from repro.geo.region import AdminPath
from repro.geo.reverse import ReverseGeocoder

if TYPE_CHECKING:  # avoid a runtime repro.yahooapi <-> repro.geocode cycle
    from repro.yahooapi.client import PlaceFinderClient


class GeocodeBackend(Protocol):
    """One reverse-geocode lookup, however it is implemented.

    Implementations return ``None`` for coordinates nobody can resolve
    and raise :class:`~repro.errors.ServiceUnavailableError` /
    :class:`~repro.errors.RateLimitExceededError` for transient and
    quota conditions respectively.
    """

    def lookup(self, point: GeoPoint) -> AdminPath | None:
        """Resolve ``point`` to an administrative path (``None`` = nowhere)."""
        ...


class DirectBackend:
    """Backend over the in-process :class:`ReverseGeocoder` — no API shape."""

    def __init__(self, geocoder: ReverseGeocoder):
        self._geocoder = geocoder

    def lookup(self, point: GeoPoint) -> AdminPath | None:
        """Resolve directly against the gazetteer."""
        try:
            return self._geocoder.resolve(point).path
        except GeocodingError:
            return None


class PlaceFinderBackend:
    """Backend over the simulated PlaceFinder client (XML round-trip).

    The client's own quota accounting, simulated latency, and failure
    injection all apply — a lookup through this backend costs exactly
    what the paper's per-tweet API call cost.
    """

    def __init__(self, client: "PlaceFinderClient"):
        self._client = client

    @property
    def client(self) -> "PlaceFinderClient":
        """The wrapped client (its ``stats``/``cache_size`` stay visible)."""
        return self._client

    def lookup(self, point: GeoPoint) -> AdminPath | None:
        """One uncached-or-cached client lookup, XML round-trip included."""
        response = self._client.reverse_geocode(point)
        return response.path if response.ok else None
