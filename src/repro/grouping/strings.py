"""Location strings — the ``#``-delimited records of paper Table I.

"We made a text string for each tweet with user id, profile location, and
tweet location" (§III-B): one record per geotagged tweet, of the form::

    user id # state in profile # county in profile # state in tweet # county in tweet

e.g. ``40932#Seoul#Yangcheon-gu#Seoul#Seodaemun-gu``.  The string form is
the paper's working representation; :class:`LocationString` is its typed
equivalent with lossless ``render``/``parse`` round-tripping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.columnar.keys import DELIMITER, location_key
from repro.errors import AnalysisError
from repro.twitter.models import GeotaggedObservation

__all__ = ["DELIMITER", "LocationString"]


@dataclass(frozen=True, slots=True)
class LocationString:
    """One per-tweet location record (paper Table I row).

    Attributes:
        user_id: Author id.
        profile_state / profile_county: Geocoded profile location.
        tweet_state / tweet_county: Reverse-geocoded tweet GPS location.
    """

    user_id: int
    profile_state: str
    profile_county: str
    tweet_state: str
    tweet_county: str

    def __post_init__(self) -> None:
        for name in ("profile_state", "profile_county", "tweet_state", "tweet_county"):
            value = getattr(self, name)
            if DELIMITER in value:
                raise AnalysisError(f"{name}={value!r} contains the {DELIMITER!r} delimiter")
            if not value:
                raise AnalysisError(f"{name} must be non-empty")

    @property
    def is_matched(self) -> bool:
        """True when profile and tweet districts coincide (a matched string)."""
        return (
            self.profile_state == self.tweet_state
            and self.profile_county == self.tweet_county
        )

    def tweet_key(self) -> tuple[str, str]:
        """The tweet-side (state, county) — a distinct posting district."""
        return (self.tweet_state, self.tweet_county)

    def profile_key(self) -> tuple[str, str]:
        """The profile-side (state, county)."""
        return (self.profile_state, self.profile_county)

    def render(self) -> str:
        """The paper's ``#``-delimited string form (via the shared
        :func:`~repro.columnar.keys.location_key` builder)."""
        return location_key(
            self.user_id,
            self.profile_state,
            self.profile_county,
            self.tweet_state,
            self.tweet_county,
        )

    @classmethod
    def parse(cls, text: str) -> "LocationString":
        """Parse a ``#``-delimited record.

        Raises:
            AnalysisError: if the record does not have exactly five fields
                or the user id is not numeric.
        """
        parts = text.split(DELIMITER)
        if len(parts) != 5:
            raise AnalysisError(f"expected 5 fields, got {len(parts)}: {text!r}")
        try:
            user_id = int(parts[0])
        except ValueError:
            raise AnalysisError(f"non-numeric user id in {text!r}") from None
        return cls(
            user_id=user_id,
            profile_state=parts[1],
            profile_county=parts[2],
            tweet_state=parts[3],
            tweet_county=parts[4],
        )

    @classmethod
    def from_observation(cls, observation: GeotaggedObservation) -> "LocationString":
        """Build from a structured observation row."""
        return cls(
            user_id=observation.user_id,
            profile_state=observation.profile_state,
            profile_county=observation.profile_county,
            tweet_state=observation.tweet_state,
            tweet_county=observation.tweet_county,
        )
