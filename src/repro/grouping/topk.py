"""Top-k classification of users — the paper's grouping of §III-B/§IV.

"We categorized a user into the Top-k group when the matched string is
placed k-th in the list."  The reported groups are Top-1 through Top-5, a
collective Top-6+ bucket, and None for users whose profile district never
appears among their tweet districts.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import InsufficientDataError
from repro.grouping.merge import (
    MergedString,
    TieBreak,
    matched_rank,
    merge_strings,
    total_tweets,
    tweet_location_count,
)
from repro.grouping.strings import LocationString
from repro.twitter.models import GeotaggedObservation


class TopKGroup(enum.Enum):
    """The paper's user groups, in reporting order."""

    TOP_1 = "Top-1"
    TOP_2 = "Top-2"
    TOP_3 = "Top-3"
    TOP_4 = "Top-4"
    TOP_5 = "Top-5"
    TOP_6_PLUS = "Top-6+"
    NONE = "None"

    @classmethod
    def from_rank(cls, rank: int | None) -> "TopKGroup":
        """Map a 1-based matched-string rank (or ``None``) to its group."""
        if rank is None:
            return cls.NONE
        if rank < 1:
            raise InsufficientDataError(f"rank must be >= 1, got {rank}")
        if rank <= 5:
            return cls(f"Top-{rank}")
        return cls.TOP_6_PLUS

    @classmethod
    def reporting_order(cls) -> tuple["TopKGroup", ...]:
        """Groups in the order the paper's figures list them."""
        return (
            cls.TOP_1,
            cls.TOP_2,
            cls.TOP_3,
            cls.TOP_4,
            cls.TOP_5,
            cls.TOP_6_PLUS,
            cls.NONE,
        )

    @property
    def is_matched_group(self) -> bool:
        """True for every group except None."""
        return self is not TopKGroup.NONE


@dataclass(frozen=True, slots=True)
class UserGrouping:
    """One user's grouping outcome.

    Attributes:
        user_id: The user.
        group: Assigned Top-k group.
        matched_rank: 1-based rank of the matched string (None group: None).
        merged: The user's ordered merged strings (Table II view).
        tweet_location_count: Distinct districts the user tweeted from.
        total_tweets: Geotagged tweets behind the grouping.
        matched_tweets: Tweets posted in the profile district.
    """

    user_id: int
    group: TopKGroup
    matched_rank: int | None
    merged: tuple[MergedString, ...]
    tweet_location_count: int
    total_tweets: int
    matched_tweets: int

    @property
    def matched_share(self) -> float:
        """Fraction of the user's geotagged tweets posted at the profile
        district (0.0 for the None group)."""
        if self.total_tweets == 0:
            return 0.0
        return self.matched_tweets / self.total_tweets


def classify_rows(user_id: int, rows: list[MergedString]) -> UserGrouping:
    """Classify one user from an already merged, ordered list.

    Raises:
        InsufficientDataError: if the list is empty.
    """
    if not rows:
        raise InsufficientDataError(f"user {user_id} has no location strings")
    rank = matched_rank(rows)
    matched = sum(row.count for row in rows if row.is_matched)
    return UserGrouping(
        user_id=user_id,
        group=TopKGroup.from_rank(rank),
        matched_rank=rank,
        merged=tuple(rows),
        tweet_location_count=tweet_location_count(rows),
        total_tweets=total_tweets(rows),
        matched_tweets=matched,
    )


def group_users(
    observations: Iterable[GeotaggedObservation],
    tie_break: TieBreak = TieBreak.STRING_ASC,
) -> dict[int, UserGrouping]:
    """Run the full grouping method over per-tweet observations.

    This is the end-to-end §III-B pipeline: build location strings, merge
    and order per user, find matched strings, classify into Top-k groups.

    Args:
        observations: Per-tweet observation rows.
        tie_break: Equal-count ordering policy (the paper leaves this
            unspecified; see ``bench_ablation_tiebreak``).

    Returns:
        Per-user grouping outcomes keyed by user id.
    """
    records = [LocationString.from_observation(obs) for obs in observations]
    merged = merge_strings(records, tie_break=tie_break)
    return {
        user_id: classify_rows(user_id, rows) for user_id, rows in merged.items()
    }
