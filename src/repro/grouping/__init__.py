"""The paper's core contribution: the text-based grouping method.

Pipeline (paper §III-B): per-tweet :class:`LocationString` records ->
:func:`merge_strings` (merge identical records, order by count) ->
matched-string detection -> :class:`TopKGroup` classification ->
:func:`compute_group_statistics` (the Figs. 6-7 aggregates).
"""

from repro.grouping.incremental import IncrementalGrouper
from repro.grouping.merge import (
    MergedString,
    TieBreak,
    matched_rank,
    merge_strings,
    total_tweets,
    tweet_location_count,
)
from repro.grouping.stats import GroupRow, GroupStatistics, compute_group_statistics
from repro.grouping.strings import DELIMITER, LocationString
from repro.grouping.topk import TopKGroup, UserGrouping, classify_rows, group_users

__all__ = [
    "DELIMITER",
    "GroupRow",
    "GroupStatistics",
    "IncrementalGrouper",
    "LocationString",
    "MergedString",
    "TieBreak",
    "TopKGroup",
    "UserGrouping",
    "classify_rows",
    "compute_group_statistics",
    "group_users",
    "matched_rank",
    "merge_strings",
    "total_tweets",
    "tweet_location_count",
]
