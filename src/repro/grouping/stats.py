"""Per-group statistics — the numbers behind the paper's Figs. 6-7.

Aggregates :class:`~repro.grouping.topk.UserGrouping` outcomes into the
three series the paper (and its slide deck) reports:

* number of users per group, with percentages (Fig. 7);
* average number of tweet districts per user in each group (Fig. 6);
* number of geotagged tweets per group, with percentages (slide 3).

Plus the paper's closing aggregate: the overall average number of tweet
districts per user, weighted by group sizes.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import InsufficientDataError
from repro.grouping.topk import TopKGroup, UserGrouping


@dataclass(frozen=True, slots=True)
class GroupRow:
    """Aggregates for one Top-k group.

    Attributes:
        group: The group.
        user_count: Users classified into it.
        user_share: Fraction of all users (0..1).
        avg_tweet_locations: Mean distinct tweet districts per user.
        tweet_count: Geotagged tweets contributed by the group's users.
        tweet_share: Fraction of all geotagged tweets (0..1).
        avg_matched_share: Mean fraction of a user's tweets posted at the
            profile district (0 for None by construction).
    """

    group: TopKGroup
    user_count: int
    user_share: float
    avg_tweet_locations: float
    tweet_count: int
    tweet_share: float
    avg_matched_share: float


@dataclass(frozen=True, slots=True)
class GroupStatistics:
    """The full per-group table plus paper-level aggregates.

    Attributes:
        rows: One row per group, in reporting order (groups with zero
            users still get a row so figures always have 7 bars).
        total_users: All classified users.
        total_tweets: All geotagged tweets.
        overall_avg_tweet_locations: User-weighted mean distinct districts
            (the paper's closing statistic, ~3 for the Korean dataset).
    """

    rows: tuple[GroupRow, ...]
    total_users: int
    total_tweets: int
    overall_avg_tweet_locations: float

    def row(self, group: TopKGroup) -> GroupRow:
        """The row for ``group`` (always present)."""
        for row in self.rows:
            if row.group is group:
                return row
        raise InsufficientDataError(f"no row for {group}")  # pragma: no cover

    def user_share(self, *groups: TopKGroup) -> float:
        """Combined user share of the given groups (e.g. Top-1 + Top-2)."""
        return sum(self.row(g).user_share for g in groups)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Nested-dict view keyed by group label, for reports and JSON."""
        return {
            row.group.value: {
                "users": row.user_count,
                "user_share": round(row.user_share, 4),
                "avg_tweet_locations": round(row.avg_tweet_locations, 2),
                "tweets": row.tweet_count,
                "tweet_share": round(row.tweet_share, 4),
                "avg_matched_share": round(row.avg_matched_share, 4),
            }
            for row in self.rows
        }


def empty_group_statistics() -> GroupStatistics:
    """An all-zero statistics table (one row per group, totals zero).

    The batch pipeline refuses an empty corpus outright
    (:class:`~repro.errors.InsufficientDataError`), but live callers — a
    young stream, a freshly booted delta builder — legitimately have zero
    study users and still owe their consumers a full seven-row table.
    """
    return GroupStatistics(
        rows=tuple(
            GroupRow(
                group=group,
                user_count=0,
                user_share=0.0,
                avg_tweet_locations=0.0,
                tweet_count=0,
                tweet_share=0.0,
                avg_matched_share=0.0,
            )
            for group in TopKGroup.reporting_order()
        ),
        total_users=0,
        total_tweets=0,
        overall_avg_tweet_locations=0.0,
    )


def compute_group_statistics(
    groupings: Iterable[UserGrouping],
) -> GroupStatistics:
    """Aggregate user groupings into the per-group statistics table.

    Raises:
        InsufficientDataError: if no groupings are supplied.
    """
    by_group: dict[TopKGroup, list[UserGrouping]] = {
        g: [] for g in TopKGroup.reporting_order()
    }
    total_users = 0
    total_tweets = 0
    for grouping in groupings:
        by_group[grouping.group].append(grouping)
        total_users += 1
        total_tweets += grouping.total_tweets
    if total_users == 0:
        raise InsufficientDataError("no user groupings to aggregate")

    rows = []
    weighted_locations = 0.0
    for group in TopKGroup.reporting_order():
        members = by_group[group]
        count = len(members)
        tweet_count = sum(m.total_tweets for m in members)
        avg_locations = (
            sum(m.tweet_location_count for m in members) / count if count else 0.0
        )
        avg_matched = sum(m.matched_share for m in members) / count if count else 0.0
        weighted_locations += sum(m.tweet_location_count for m in members)
        rows.append(
            GroupRow(
                group=group,
                user_count=count,
                user_share=count / total_users,
                avg_tweet_locations=avg_locations,
                tweet_count=tweet_count,
                tweet_share=tweet_count / total_tweets if total_tweets else 0.0,
                avg_matched_share=avg_matched,
            )
        )
    return GroupStatistics(
        rows=tuple(rows),
        total_users=total_users,
        total_tweets=total_tweets,
        overall_avg_tweet_locations=weighted_locations / total_users,
    )
