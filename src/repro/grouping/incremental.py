"""Incremental grouping — keeping Top-k outcomes fresh on a live stream.

The batch pipeline classifies users once, from a frozen corpus.  A
deployed event system (paper §V) would instead watch geotagged tweets
arrive and keep each author's group — and therefore their reliability
weight — current.  :class:`IncrementalGrouper` maintains per-user merge
counters under O(1) updates and produces classifications identical to the
batch :func:`~repro.grouping.topk.group_users` at every point in time
(property-tested in ``tests/grouping/test_incremental.py``).
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.columnar.keys import merged_sort_key
from repro.errors import InsufficientDataError
from repro.grouping.merge import MergedString, TieBreak
from repro.grouping.strings import LocationString
from repro.grouping.topk import TopKGroup, UserGrouping, classify_rows
from repro.twitter.models import GeotaggedObservation


class IncrementalGrouper:
    """Maintains grouping state under streaming observation arrivals.

    Args:
        tie_break: Equal-count ordering policy (matches the batch path).
    """

    def __init__(self, tie_break: TieBreak = TieBreak.STRING_ASC):
        self._tie_break = tie_break
        self._counts: dict[int, Counter[LocationString]] = defaultdict(Counter)

    # ---------------------------------------------------------------- ingest
    def add(self, observation: GeotaggedObservation) -> None:
        """Fold one observation into the per-user counters."""
        record = LocationString.from_observation(observation)
        self._counts[record.user_id][record] += 1

    def add_many(self, observations: list[GeotaggedObservation]) -> None:
        """Fold a batch of observations in."""
        for observation in observations:
            self.add(observation)

    # ----------------------------------------------------------------- query
    @property
    def user_ids(self) -> list[int]:
        """Users with at least one observation, sorted."""
        return sorted(self._counts)

    def observation_count(self, user_id: int) -> int:
        """Observations folded in for ``user_id`` (0 if unseen)."""
        return sum(self._counts[user_id].values()) if user_id in self._counts else 0

    def classify(self, user_id: int) -> UserGrouping:
        """The user's current grouping (identical to the batch result).

        Raises:
            InsufficientDataError: for a user with no observations.
        """
        counts = self._counts.get(user_id)
        if not counts:
            raise InsufficientDataError(f"user {user_id} has no observations")
        rows = self._ordered_rows(counts)
        return classify_rows(user_id, rows)

    def group_of(self, user_id: int) -> TopKGroup | None:
        """Current group, or ``None`` for unseen users (no raising)."""
        if user_id not in self._counts or not self._counts[user_id]:
            return None
        return self.classify(user_id).group

    def classify_all(self) -> dict[int, UserGrouping]:
        """Current groupings for every seen user."""
        return {user_id: self.classify(user_id) for user_id in self._counts}

    def export_counts(self) -> dict[int, dict[str, int]]:
        """Canonical view of the per-user merge counters.

        Users ascend, and each user's merged strings are listed in their
        rendered form, sorted — a stable serialisation that checkpoint
        digests (``repro.streaming.snapshot.state_digest``) hash so a
        replayed stream can prove it rebuilt the exact grouping state.
        """
        return {
            user_id: {
                record.render(): count
                for record, count in sorted(
                    self._counts[user_id].items(), key=lambda kv: kv[0].render()
                )
            }
            for user_id in sorted(self._counts)
        }

    # ------------------------------------------------------------- internals
    def _ordered_rows(self, counts: Counter[LocationString]) -> list[MergedString]:
        rows = [MergedString(record=rec, count=n) for rec, n in counts.items()]
        rows.sort(key=merged_sort_key(self._tie_break))
        return rows
