"""Merging and ordering location strings — paper Table II.

"Finally, we merged the same strings in the list and ordered them by the
number of the merged strings" (§III-B).  Identical per-tweet records
collapse into one :class:`MergedString` carrying a count; each user's
merged strings are ordered by count descending.

The paper does not state a tie-break for equal counts.  The default here
is the rendered string ascending (deterministic, unbiased with respect to
the matched string); :class:`TieBreak` exposes the alternatives, including
the two adversarial policies that bound how much the unspecified detail
can matter (see ``bench_ablation_tiebreak``).
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict
from collections.abc import Iterable
from dataclasses import dataclass

from repro.columnar.keys import merged_sort_key
from repro.grouping.strings import LocationString


class TieBreak(enum.Enum):
    """Ordering policy among merged strings with equal counts."""

    STRING_ASC = "string_asc"  # default: rendered string ascending
    STRING_DESC = "string_desc"
    MATCHED_FIRST = "matched_first"  # upper bound on Top-k shares
    MATCHED_LAST = "matched_last"  # lower bound on Top-k shares


@dataclass(frozen=True, slots=True)
class MergedString:
    """A location string with its merge count (paper Table II row)."""

    record: LocationString
    count: int

    def render(self) -> str:
        """The paper's presentation form: ``record (count)``."""
        return f"{self.record.render()} ({self.count})"

    @property
    def is_matched(self) -> bool:
        """True when the underlying record is a matched string."""
        return self.record.is_matched


def merge_strings(
    records: Iterable[LocationString],
    tie_break: TieBreak = TieBreak.STRING_ASC,
) -> dict[int, list[MergedString]]:
    """Merge identical records and order each user's list.

    Args:
        records: Per-tweet location strings for any number of users.
        tie_break: Ordering among equal counts (default: rendered string
            ascending).

    Returns:
        Per-user ordered lists: count descending, then ``tie_break``.
    """
    per_user: dict[int, Counter[LocationString]] = defaultdict(Counter)
    for record in records:
        per_user[record.user_id][record] += 1

    sort_key = merged_sort_key(tie_break)
    merged: dict[int, list[MergedString]] = {}
    for user_id, counts in per_user.items():
        rows = [MergedString(record=rec, count=n) for rec, n in counts.items()]
        rows.sort(key=sort_key)
        merged[user_id] = rows
    return merged


def matched_rank(rows: list[MergedString]) -> int | None:
    """1-based rank of the matched string in an ordered list, or ``None``.

    A user has at most one matched string (profile district is fixed, so
    only one tweet district can equal it).
    """
    for index, row in enumerate(rows):
        if row.is_matched:
            return index + 1
    return None


def tweet_location_count(rows: list[MergedString]) -> int:
    """Number of distinct tweet districts in a user's merged list.

    Distinct merged strings and distinct tweet districts coincide for a
    single user (the profile side never varies), but counting keys keeps
    the function correct even for hand-built lists.
    """
    return len({row.record.tweet_key() for row in rows})


def total_tweets(rows: list[MergedString]) -> int:
    """Total geotagged tweets behind a user's merged list."""
    return sum(row.count for row in rows)
