"""Text substrate: normalisation, tokenisation, vagueness, TF-IDF.

Public surface of :mod:`repro.text`:

* :func:`normalize_text` and friends — canonical surface forms
* :func:`tokenize` / :func:`tokenize_tweet` — Twitter-aware tokenisation
* :func:`is_vague` / :func:`is_country_only` — the paper's profile filters
* :func:`parse_profile_location` — structural profile-field parsing
* :class:`TfIdfCorpus` — corpus statistics behind Twitris-style summaries
"""

from repro.text.normalize import (
    collapse_spaces,
    hangul_ratio,
    is_hangul,
    normalize_text,
    strip_punctuation,
)
from repro.text.profile_parser import (
    ParsedProfileLocation,
    ProfileShape,
    parse_profile_location,
)
from repro.text.tfidf import ScoredTerm, TfIdfCorpus, cosine_similarity
from repro.text.tokenize import (
    STOPWORDS,
    TweetTokens,
    ngrams,
    tokenize,
    tokenize_tweet,
)
from repro.text.vague import (
    COUNTRY_PHRASES,
    VAGUE_PHRASES,
    is_country_only,
    is_informative,
    is_vague,
)

__all__ = [
    "COUNTRY_PHRASES",
    "STOPWORDS",
    "VAGUE_PHRASES",
    "ParsedProfileLocation",
    "ProfileShape",
    "ScoredTerm",
    "TfIdfCorpus",
    "TweetTokens",
    "collapse_spaces",
    "cosine_similarity",
    "hangul_ratio",
    "is_country_only",
    "is_hangul",
    "is_informative",
    "is_vague",
    "ngrams",
    "normalize_text",
    "parse_profile_location",
    "strip_punctuation",
    "tokenize",
    "tokenize_tweet",
]
