"""Structural parsing of the profile-location field.

Fig. 3 of the paper shows the variety users type into the 30-character
profile location: clean "district, city" forms, exact addresses, raw GPS
coordinates, decorated junk ("darangland :)"), and *multiple* locations at
once ("Gold Coast Australia / 서울 양천구") where "we do not know which the
current location of the user is".

This module performs the *structural* pass: it splits a raw field into
candidate location phrases, pulls out embedded coordinates, and classifies
the overall shape.  Resolving a phrase to an actual district is the
forward geocoder's job (:mod:`repro.geo.forward`).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.text.normalize import collapse_spaces, normalize_text

#: Separators that signal several locations listed in one field.
_MULTI_SPLIT_RE = re.compile(r"\s*(?:/|\||;|&|,\s*and\s+|\s+and\s+|·)\s*", re.IGNORECASE)

#: A latitude,longitude pair embedded in text.
_COORD_RE = re.compile(
    r"(?P<lat>[+-]?\d{1,2}(?:\.\d+)?)\s*,\s*(?P<lon>[+-]?\d{1,3}(?:\.\d+)?)"
)

#: Road-ish tokens; a field with one of these *and* a house number is an
#: address ("3 Jibong-ro", "123 Main Street").
_ROAD_TOKEN_RE = re.compile(
    r"(?:\w+-(?:ro|gil|dong)|\b(?:ro|gil|st|street|ave|avenue|road)\b)",
    re.IGNORECASE,
)
_HOUSE_NUMBER_RE = re.compile(r"\b\d{1,5}\b")


class ProfileShape(enum.Enum):
    """Structural classification of a profile-location field."""

    EMPTY = "empty"
    COORDINATES = "coordinates"  # raw GPS pair in the field
    SINGLE = "single"  # one candidate phrase
    MULTI = "multi"  # several locations listed ("A / B")
    ADDRESS = "address"  # street-address detail present


@dataclass(frozen=True, slots=True)
class ParsedProfileLocation:
    """Result of structurally parsing a profile-location field.

    Attributes:
        raw: Original field text.
        shape: Overall structural classification.
        phrases: Candidate location phrases, normalised, in field order.
        coordinates: ``(lat, lon)`` if a coordinate pair was embedded.
    """

    raw: str
    shape: ProfileShape
    phrases: tuple[str, ...] = field(default=())
    coordinates: tuple[float, float] | None = None


def _plausible_coords(lat: float, lon: float) -> bool:
    """Reject comma-lists of small integers masquerading as coordinates."""
    if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
        return False
    # A genuine GPS pair in a profile nearly always carries decimals.
    return abs(lat) != int(abs(lat)) or abs(lon) != int(abs(lon))


def parse_profile_location(raw: str) -> ParsedProfileLocation:
    """Parse the raw profile-location field into structured candidates.

    The comma is ambiguous: it separates listed locations *and* joins
    "district, city" pairs.  The splitter therefore treats slash-like
    separators as multi-location markers but keeps commas inside a single
    phrase, matching how the paper's examples read.
    """
    if not raw or not raw.strip():
        return ParsedProfileLocation(raw=raw, shape=ProfileShape.EMPTY)

    coord_match = _COORD_RE.search(raw)
    if coord_match:
        lat = float(coord_match.group("lat"))
        lon = float(coord_match.group("lon"))
        if _plausible_coords(lat, lon):
            remainder = collapse_spaces(_COORD_RE.sub(" ", raw))
            phrases = tuple(p for p in (normalize_text(remainder),) if p)
            return ParsedProfileLocation(
                raw=raw,
                shape=ProfileShape.COORDINATES,
                phrases=phrases,
                coordinates=(lat, lon),
            )

    pieces = [normalize_text(p) for p in _MULTI_SPLIT_RE.split(raw)]
    phrases = tuple(p for p in pieces if p)
    if not phrases:
        return ParsedProfileLocation(raw=raw, shape=ProfileShape.EMPTY)
    if len(phrases) > 1:
        return ParsedProfileLocation(raw=raw, shape=ProfileShape.MULTI, phrases=phrases)

    is_address = bool(_ROAD_TOKEN_RE.search(raw)) and bool(_HOUSE_NUMBER_RE.search(raw))
    shape = ProfileShape.ADDRESS if is_address else ProfileShape.SINGLE
    return ParsedProfileLocation(raw=raw, shape=shape, phrases=phrases)
