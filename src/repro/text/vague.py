"""Detection of vague and insufficient profile locations.

The paper removes users with *vague* ("my home", "Earth") and
*insufficient* ("Seoul", "Korea" — a bare metro or country without a
district) profile locations (§III-B).  This module implements both tests
on normalised text; the forward geocoder decides sufficiency for place
names it actually resolves, while the phrase lists here catch the
non-place junk.
"""

from __future__ import annotations

from repro.text.normalize import normalize_text

#: Whole-field values that name no real place at all.
VAGUE_PHRASES: frozenset[str] = frozenset(
    {
        "earth",
        "planet earth",
        "the earth",
        "world",
        "the world",
        "worldwide",
        "everywhere",
        "somewhere",
        "nowhere",
        "anywhere",
        "here",
        "right here",
        "home",
        "my home",
        "sweet home",
        "my house",
        "my room",
        "my bed",
        "in my bed",
        "my heart",
        "in your heart",
        "internet",
        "the internet",
        "online",
        "web",
        "cyberspace",
        "twitter",
        "twitterland",
        "heaven",
        "hell",
        "moon",
        "the moon",
        "mars",
        "space",
        "outer space",
        "universe",
        "the universe",
        "asia",
        "europe",
        "wonderland",
        "neverland",
        "darangland",
        "지구",  # "Earth" in Korean
        "우주",  # "universe"
        "우리집",  # "my home"
        "집",  # "home"
        "인터넷",  # "internet"
    }
)

#: Country-level names: real places, but insufficient for district grouping.
COUNTRY_PHRASES: frozenset[str] = frozenset(
    {
        "korea",
        "south korea",
        "republic of korea",
        "rok",
        "대한민국",
        "한국",
        "usa",
        "united states",
        "america",
        "uk",
        "united kingdom",
        "japan",
        "china",
        "france",
        "germany",
        "canada",
        "australia",
        "brazil",
    }
)


def is_vague(text: str) -> bool:
    """True if the whole field is a known non-place phrase or empty."""
    normalized = normalize_text(text)
    if not normalized:
        return True
    return normalized in VAGUE_PHRASES


def is_country_only(text: str) -> bool:
    """True if the field names only a country (insufficient granularity)."""
    return normalize_text(text) in COUNTRY_PHRASES


def is_informative(text: str) -> bool:
    """True if the field is neither vague nor country-only.

    This is the cheap textual prefilter; whether an informative-looking
    field actually resolves to a district is the forward geocoder's call.
    """
    return not is_vague(text) and not is_country_only(text)
