"""Text normalisation for free-form Twitter fields.

Profile locations on Twitter are "not normalized or geocoded in any way"
(paper §III-A): users mix scripts, casing, decorations, and punctuation.
Normalisation here is deliberately conservative — it canonicalises
whitespace, case, and punctuation without guessing at semantics, so the
downstream parsers see a predictable surface form.
"""

from __future__ import annotations

import re
import unicodedata

_WHITESPACE_RE = re.compile(r"\s+")
# Decorations users append to locations: hearts, stars, tildes, repeated
# punctuation.  Kept as a character class so genuinely meaningful ASCII
# punctuation (comma, slash, hyphen, period) survives.
_DECORATION_RE = re.compile(r"[~♥★☆♡♪!^*_=+|<>{}\[\]\"`]+")
_EMOTICON_RE = re.compile(r"[:;]-?[)(DPpo]|[)(]{2,}")


def normalize_text(text: str) -> str:
    """Canonicalise a free-text field.

    Applies NFKC unicode normalisation, strips decorations and emoticons,
    lower-cases, and collapses whitespace.  Returns ``""`` for input that
    is nothing but decoration.
    """
    text = unicodedata.normalize("NFKC", text)
    text = _EMOTICON_RE.sub(" ", text)
    text = _DECORATION_RE.sub(" ", text)
    text = text.lower()
    text = _WHITESPACE_RE.sub(" ", text)
    return text.strip()


def strip_punctuation(text: str, keep: str = "-") -> str:
    """Remove punctuation except the characters in ``keep``.

    Hyphens are kept by default because Korean romanisations are
    hyphenated ("Yangcheon-gu").
    """
    kept = []
    for ch in text:
        category = unicodedata.category(ch)
        if category.startswith("P") and ch not in keep:
            kept.append(" ")
        else:
            kept.append(ch)
    return _WHITESPACE_RE.sub(" ", "".join(kept)).strip()


def collapse_spaces(text: str) -> str:
    """Collapse runs of whitespace to single spaces and trim."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def is_hangul(ch: str) -> bool:
    """True if ``ch`` is a Hangul syllable or jamo."""
    code = ord(ch)
    return (
        0xAC00 <= code <= 0xD7A3  # syllables
        or 0x1100 <= code <= 0x11FF  # jamo
        or 0x3130 <= code <= 0x318F  # compatibility jamo
    )


def hangul_ratio(text: str) -> float:
    """Fraction of non-space characters that are Hangul (0.0 for empty)."""
    chars = [ch for ch in text if not ch.isspace()]
    if not chars:
        return 0.0
    return sum(1 for ch in chars if is_hangul(ch)) / len(chars)
