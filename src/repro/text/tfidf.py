"""TF-IDF corpus statistics.

Twitris "used the TFIDF algorithm to extract popular terms in a day"
(paper §II).  This module provides the corpus model behind that: document
frequencies accumulated over a reference corpus, per-document or per-slice
term frequencies, and top-k term extraction.

The implementation favours streaming updates (documents can be added one
at a time) because the Twitris-style summariser slices the tweet stream by
(day, district) and scores each slice against the global corpus.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import InsufficientDataError
from repro.text.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class ScoredTerm:
    """A term with its TF-IDF score within some slice."""

    term: str
    score: float
    tf: int
    df: int


class TfIdfCorpus:
    """Incrementally built TF-IDF corpus.

    Documents are token lists; :meth:`add_text` tokenises raw text for
    convenience.  IDF uses the smoothed form ``log((1 + N) / (1 + df)) + 1``
    so unseen terms in a scored slice still get a finite weight.
    """

    def __init__(self) -> None:
        self._doc_count = 0
        self._doc_freq: Counter[str] = Counter()

    @property
    def doc_count(self) -> int:
        """Number of documents folded into the corpus."""
        return self._doc_count

    def document_frequency(self, term: str) -> int:
        """How many corpus documents contain ``term``."""
        return self._doc_freq[term]

    def add_document(self, tokens: Iterable[str]) -> None:
        """Fold one tokenised document into the corpus statistics."""
        unique = set(tokens)
        if not unique:
            return
        self._doc_count += 1
        self._doc_freq.update(unique)

    def add_text(self, text: str) -> None:
        """Tokenise ``text`` and fold it in as one document."""
        self.add_document(tokenize(text))

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of ``term``."""
        return math.log((1 + self._doc_count) / (1 + self._doc_freq[term])) + 1.0

    def score_slice(
        self, documents: Iterable[Iterable[str]], top_k: int = 10
    ) -> list[ScoredTerm]:
        """Score the terms of a document slice against the corpus.

        Args:
            documents: Tokenised documents forming the slice (e.g. all
                tweets from one district on one day).
            top_k: Number of top-scoring terms to return.

        Returns:
            Terms sorted by descending TF-IDF score (ties: ascending term).

        Raises:
            InsufficientDataError: if the corpus is empty.
        """
        if self._doc_count == 0:
            raise InsufficientDataError("cannot score against an empty corpus")
        tf: Counter[str] = Counter()
        for doc in documents:
            tf.update(doc)
        scored = [
            ScoredTerm(term=t, score=count * self.idf(t), tf=count, df=self._doc_freq[t])
            for t, count in tf.items()
        ]
        scored.sort(key=lambda s: (-s.score, s.term))
        return scored[:top_k]

    def vectorize(self, tokens: Iterable[str]) -> dict[str, float]:
        """L2-normalised TF-IDF vector of one document (sparse dict form)."""
        tf = Counter(tokens)
        vector = {t: count * self.idf(t) for t, count in tf.items()}
        norm = math.sqrt(sum(v * v for v in vector.values()))
        if norm == 0.0:
            return {}
        return {t: v / norm for t, v in vector.items()}


def cosine_similarity(a: dict[str, float], b: dict[str, float]) -> float:
    """Cosine similarity of two sparse vectors (0.0 if either is empty)."""
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(v * b.get(t, 0.0) for t, v in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)
