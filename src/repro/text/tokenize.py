"""Tokenisation for tweets and profile fields.

A small, dependency-free tokenizer tuned for Twitter text: it understands
@mentions, #hashtags, URLs, and keeps hyphenated romanised place names
("Yangcheon-gu") as single tokens.  Used by the TF-IDF machinery behind
the Twitris-style summaries and by the event-tweet classifier.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_URL_RE = re.compile(r"https?://\S+|www\.\S+")
_MENTION_RE = re.compile(r"@\w+")
_HASHTAG_RE = re.compile(r"#\w+")
_TOKEN_RE = re.compile(r"[A-Za-z가-힣][A-Za-z가-힣'-]*|\d+(?:\.\d+)?")

#: Minimal English stopword list; enough to keep TF-IDF summaries clean.
STOPWORDS: frozenset[str] = frozenset(
    """
    a an and are as at be but by for from had has have i if in into is it its
    just me my no not of on or our so than that the their then there these
    they this to up was we were what when where which who will with you your
    rt via amp
    """.split()
)


@dataclass(frozen=True, slots=True)
class TweetTokens:
    """Structured token view of a tweet."""

    words: tuple[str, ...]
    hashtags: tuple[str, ...]
    mentions: tuple[str, ...]
    urls: tuple[str, ...]

    def all_terms(self) -> tuple[str, ...]:
        """Words plus hashtag bodies — the term universe for TF-IDF."""
        return self.words + tuple(tag.lstrip("#") for tag in self.hashtags)


def tokenize(text: str, drop_stopwords: bool = True) -> list[str]:
    """Tokenise plain text to lower-case word tokens.

    Args:
        text: Input text (any script).
        drop_stopwords: Remove common English stopwords.
    """
    text = _URL_RE.sub(" ", text)
    tokens = [t.lower() for t in _TOKEN_RE.findall(text)]
    if drop_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens


def tokenize_tweet(text: str) -> TweetTokens:
    """Tokenise a tweet into words, hashtags, mentions, and URLs."""
    urls = tuple(_URL_RE.findall(text))
    text_wo_urls = _URL_RE.sub(" ", text)
    mentions = tuple(m.lower() for m in _MENTION_RE.findall(text_wo_urls))
    hashtags = tuple(h.lower() for h in _HASHTAG_RE.findall(text_wo_urls))
    stripped = _MENTION_RE.sub(" ", text_wo_urls)
    stripped = _HASHTAG_RE.sub(" ", stripped)
    words = tuple(tokenize(stripped))
    return TweetTokens(words=words, hashtags=hashtags, mentions=mentions, urls=urls)


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """Contiguous n-grams of ``tokens`` (empty list if too short)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
