"""Plain-text rendering of the paper's figures and tables.

Every evaluation artefact has a renderer producing an aligned text table
(with an ASCII bar column where the original is a bar chart), so the
benchmark harness prints the same rows/series the paper reports.
"""

from __future__ import annotations

from repro.datasets.refine import RefinementFunnel
from repro.grouping.merge import MergedString
from repro.grouping.stats import GroupStatistics
from repro.grouping.topk import TopKGroup
from repro.twitter.models import DatasetSummary

_BAR_WIDTH = 30


def _bar(fraction: float, scale: float = 1.0) -> str:
    """An ASCII bar of up to ``_BAR_WIDTH`` chars for ``fraction/scale``."""
    if scale <= 0:
        return ""
    filled = int(round(_BAR_WIDTH * max(0.0, min(1.0, fraction / scale))))
    return "#" * filled


def render_fig6(statistics: GroupStatistics, title: str = "") -> str:
    """Fig. 6 — average number of tweet locations in each group."""
    heading = title or "Fig. 6  Average number of tweet locations in each group"
    lines = [heading, "-" * len(heading)]
    max_avg = max(row.avg_tweet_locations for row in statistics.rows) or 1.0
    for row in statistics.rows:
        lines.append(
            f"{row.group.value:<8} {row.avg_tweet_locations:6.2f}  "
            f"{_bar(row.avg_tweet_locations, max_avg)}"
        )
    lines.append(
        f"overall  {statistics.overall_avg_tweet_locations:6.2f}  (user-weighted mean)"
    )
    return "\n".join(lines)


def render_fig7(statistics: GroupStatistics, title: str = "") -> str:
    """Fig. 7 — number of users in each group (count and percentage)."""
    heading = title or "Fig. 7  Number of users in each group"
    lines = [heading, "-" * len(heading)]
    max_share = max(row.user_share for row in statistics.rows) or 1.0
    for row in statistics.rows:
        lines.append(
            f"{row.group.value:<8} {row.user_count:6d}  {row.user_share:7.2%}  "
            f"{_bar(row.user_share, max_share)}"
        )
    lines.append(f"total    {statistics.total_users:6d}")
    return "\n".join(lines)


def render_tweet_distribution(statistics: GroupStatistics, title: str = "") -> str:
    """Slide 3 — number of tweets in each group (count and percentage)."""
    heading = title or "Number of tweets in each group"
    lines = [heading, "-" * len(heading)]
    max_share = max(row.tweet_share for row in statistics.rows) or 1.0
    for row in statistics.rows:
        lines.append(
            f"{row.group.value:<8} {row.tweet_count:8d}  {row.tweet_share:7.2%}  "
            f"{_bar(row.tweet_share, max_share)}"
        )
    lines.append(f"total    {statistics.total_tweets:8d}")
    return "\n".join(lines)


def render_comparison(
    korean: GroupStatistics,
    ladygaga: GroupStatistics,
    metric: str = "user_share",
) -> str:
    """Slides 4-5 — Korean vs Lady Gaga per-group comparison.

    Args:
        korean / ladygaga: The two datasets' statistics.
        metric: ``"user_share"`` (slide 4) or ``"avg_tweet_locations"``
            (slide 5).
    """
    if metric == "user_share":
        heading = "Number of users in each group (percentage): Korean vs Lady Gaga"
        value = lambda row: f"{row.user_share:7.2%}"  # noqa: E731
    elif metric == "avg_tweet_locations":
        heading = "Average number of tweet locations: Korean vs Lady Gaga"
        value = lambda row: f"{row.avg_tweet_locations:7.2f}"  # noqa: E731
    else:
        raise ValueError(f"unknown metric {metric!r}")
    lines = [heading, "-" * len(heading)]
    lines.append(f"{'group':<8} {'Korean':>9} {'Lady Gaga':>10}")
    for group in TopKGroup.reporting_order():
        lines.append(
            f"{group.value:<8} {value(korean.row(group)):>9} "
            f"{value(ladygaga.row(group)):>10}"
        )
    return "\n".join(lines)


def render_funnel(funnel: RefinementFunnel, title: str = "") -> str:
    """E9 — the §III-B refinement funnel."""
    heading = title or "Refinement funnel (paper Section III-B)"
    lines = [heading, "-" * len(heading)]
    lines.append(f"crawled users                 {funnel.crawled_users:10d}")
    for status, count in sorted(funnel.profile_status_counts.items()):
        lines.append(f"  profile {status:<18}  {count:10d}")
    lines.append(f"well-defined profiles         {funnel.well_defined_users:10d}")
    lines.append(f"  with >=1 GPS tweet          {funnel.users_with_gps:10d}")
    lines.append(f"total tweets collected        {funnel.total_tweets:10d}")
    lines.append(f"  GPS-tagged tweets           {funnel.gps_tweets:10d}")
    lines.append(f"  resolved observations       {funnel.resolved_observations:10d}")
    lines.append(f"  unresolvable GPS tweets     {funnel.unresolvable_gps_tweets:10d}")
    lines.append(f"final study users             {funnel.study_users:10d}")
    return "\n".join(lines)


def render_dataset_summary(*summaries: DatasetSummary) -> str:
    """Slide 1 — dataset summary table."""
    heading = "Dataset summary"
    lines = [heading, "-" * len(heading)]
    lines.append(f"{'dataset':<12} {'users':>10} {'tweets':>12} {'geotagged':>10}  api")
    for summary in summaries:
        lines.append(
            f"{summary.name:<12} {summary.user_count:>10d} "
            f"{summary.tweet_count:>12d} {summary.geotagged_tweet_count:>10d}  "
            f"{summary.collection_api}"
        )
    return "\n".join(lines)


def render_merged_strings(rows: list[MergedString], title: str = "") -> str:
    """Table II — one user's merged and ordered strings."""
    heading = title or "Merged and ordered location strings (paper Table II)"
    lines = [heading, "-" * len(heading)]
    for row in rows:
        marker = "  <- matched" if row.is_matched else ""
        lines.append(f"{row.render()}{marker}")
    return "\n".join(lines)
