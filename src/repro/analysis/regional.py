"""Regional breakdown of the Top-k grouping — extension analysis.

The paper aggregates all Korean users into one distribution, but its own
granularity decision (split metropolitan cities, keep provinces at city
level) makes group membership depend on where a user lives: a Seoul
profile names a ~4 km *gu*, a Gyeonggi profile a ~6-8 km *si*.  This
analysis breaks the user distribution down by profile state, exposing
that structural effect and giving event systems region-conditional
reliability priors.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import InsufficientDataError
from repro.geo.region import District
from repro.grouping.topk import TopKGroup, UserGrouping


@dataclass(frozen=True, slots=True)
class RegionalRow:
    """One profile state's grouping summary.

    Attributes:
        state: The STATE-level unit (metro city or province).
        users: Study users whose profile resolves into it.
        top1_share: Fraction in Top-1.
        matched_share: Fraction in any matched group (1 - None share).
        avg_tweet_locations: Mean distinct tweet districts per user.
    """

    state: str
    users: int
    top1_share: float
    matched_share: float
    avg_tweet_locations: float


def regional_row(state: str, members: list[UserGrouping]) -> RegionalRow:
    """Aggregate one profile state's members into its summary row.

    Every aggregate here is a count or an integer sum divided once, so
    the row is independent of ``members`` ordering — the property the
    live delta builder relies on when it recomputes only the states
    whose users changed (:mod:`repro.live.builder`).
    """
    top1 = sum(1 for g in members if g.group is TopKGroup.TOP_1)
    matched = sum(1 for g in members if g.group is not TopKGroup.NONE)
    avg_locations = sum(g.tweet_location_count for g in members) / len(members)
    return RegionalRow(
        state=state,
        users=len(members),
        top1_share=top1 / len(members),
        matched_share=matched / len(members),
        avg_tweet_locations=avg_locations,
    )


def regional_breakdown(
    groupings: dict[int, UserGrouping],
    profile_districts: dict[int, District],
    min_users: int = 10,
) -> list[RegionalRow]:
    """Per-profile-state grouping summaries, largest region first.

    Regions with fewer than ``min_users`` study users are dropped (their
    shares would be noise).

    Raises:
        InsufficientDataError: if no region clears ``min_users``.
    """
    by_state: dict[str, list[UserGrouping]] = defaultdict(list)
    for user_id, grouping in groupings.items():
        district = profile_districts.get(user_id)
        if district is None:
            continue
        by_state[district.state].append(grouping)

    rows = [
        regional_row(state, members)
        for state, members in by_state.items()
        if len(members) >= min_users
    ]
    if not rows:
        raise InsufficientDataError(
            f"no region has >= {min_users} study users"
        )
    rows.sort(key=lambda r: -r.users)
    return rows


def render_regional_breakdown(rows: list[RegionalRow]) -> str:
    """Text artefact for the regional extension."""
    heading = "Top-k grouping by profile region (extension)"
    lines = [heading, "-" * len(heading)]
    lines.append(
        f"{'state':<20} {'users':>6} {'Top-1':>8} {'matched':>9} {'avg locs':>9}"
    )
    for row in rows:
        lines.append(
            f"{row.state:<20} {row.users:>6d} {row.top1_share:>8.1%} "
            f"{row.matched_share:>9.1%} {row.avg_tweet_locations:>9.2f}"
        )
    return "\n".join(lines)
