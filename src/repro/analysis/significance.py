"""Statistical significance machinery for the study's comparisons.

The paper reports raw percentages; this module adds the uncertainty the
figures deserve, implemented from scratch (no scipy dependency in the
library core):

* bootstrap confidence intervals on per-group user shares (resampling
  users with replacement);
* a chi-square test of independence between two datasets' group
  distributions (the Korean-vs-Lady-Gaga comparison of slides 4-5), with
  the p-value computed via the regularised upper incomplete gamma
  function Q(k/2, x/2).
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import InsufficientDataError
from repro.grouping.topk import TopKGroup, UserGrouping


@dataclass(frozen=True, slots=True)
class ShareInterval:
    """A bootstrap confidence interval for one group's user share."""

    group: TopKGroup
    share: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_share_intervals(
    groupings: Iterable[UserGrouping],
    n_resamples: int = 1_000,
    confidence: float = 0.95,
    seed: int = 7,
) -> dict[TopKGroup, ShareInterval]:
    """Percentile-bootstrap CIs for every group's user share.

    Args:
        groupings: The study's per-user outcomes.
        n_resamples: Bootstrap resamples.
        confidence: Interval mass (two-sided).
        seed: RNG seed.

    Raises:
        InsufficientDataError: with no groupings.
    """
    assignments = [g.group for g in groupings]
    if not assignments:
        raise InsufficientDataError("no groupings to bootstrap")
    n = len(assignments)
    rng = random.Random(seed)
    order = TopKGroup.reporting_order()

    samples: dict[TopKGroup, list[float]] = {g: [] for g in order}
    for _ in range(n_resamples):
        counts = dict.fromkeys(order, 0)
        for _ in range(n):
            counts[assignments[rng.randrange(n)]] += 1
        for group in order:
            samples[group].append(counts[group] / n)

    alpha = (1.0 - confidence) / 2.0
    intervals = {}
    base = {g: 0 for g in order}
    for group in assignments:
        base[group] += 1
    for group in order:
        ordered = sorted(samples[group])
        low = ordered[int(alpha * n_resamples)]
        high = ordered[min(n_resamples - 1, int((1.0 - alpha) * n_resamples))]
        intervals[group] = ShareInterval(
            group=group,
            share=base[group] / n,
            low=low,
            high=high,
            confidence=confidence,
        )
    return intervals


@dataclass(frozen=True, slots=True)
class ChiSquareResult:
    """Outcome of a chi-square test of independence.

    Attributes:
        statistic: The chi-square statistic.
        dof: Degrees of freedom.
        p_value: Upper-tail probability under H0 (independence).
    """

    statistic: float
    dof: int
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True if H0 is rejected at level ``alpha``."""
        return self.p_value < alpha


def chi_square_independence(
    counts_a: list[int], counts_b: list[int]
) -> ChiSquareResult:
    """Chi-square test: do two count vectors share one distribution?

    Categories with zero total count are dropped (they contribute no
    information and would divide by zero).

    Raises:
        InsufficientDataError: if fewer than two informative categories
            remain or either sample is empty.
    """
    if len(counts_a) != len(counts_b):
        raise InsufficientDataError("count vectors must align")
    pairs = [(a, b) for a, b in zip(counts_a, counts_b) if a + b > 0]
    if len(pairs) < 2:
        raise InsufficientDataError("need >= 2 informative categories")
    total_a = sum(a for a, _ in pairs)
    total_b = sum(b for _, b in pairs)
    if total_a == 0 or total_b == 0:
        raise InsufficientDataError("both samples must be non-empty")
    grand = total_a + total_b

    statistic = 0.0
    for a, b in pairs:
        row = a + b
        expected_a = row * total_a / grand
        expected_b = row * total_b / grand
        statistic += (a - expected_a) ** 2 / expected_a
        statistic += (b - expected_b) ** 2 / expected_b
    dof = len(pairs) - 1
    return ChiSquareResult(
        statistic=statistic, dof=dof, p_value=chi2_sf(statistic, dof)
    )


def chi2_sf(x: float, dof: int) -> float:
    """Chi-square survival function P(X >= x) = Q(dof/2, x/2)."""
    if x < 0:
        return 1.0
    if dof <= 0:
        raise InsufficientDataError(f"dof must be positive, got {dof}")
    return _regularized_gamma_q(dof / 2.0, x / 2.0)


def _regularized_gamma_q(a: float, x: float) -> float:
    """Regularised upper incomplete gamma Q(a, x) (Numerical Recipes)."""
    if x < 0 or a <= 0:
        raise InsufficientDataError("invalid arguments to Q(a, x)")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _gamma_p_series(a, x)
    return _gamma_q_continued_fraction(a, x)


def _gamma_p_series(a: float, x: float, max_iter: int = 500, eps: float = 1e-14) -> float:
    """P(a, x) by series expansion (converges fast for x < a + 1)."""
    log_prefactor = a * math.log(x) - x - math.lgamma(a)
    term = 1.0 / a
    total = term
    denominator = a
    for _ in range(max_iter):
        denominator += 1.0
        term *= x / denominator
        total += term
        if abs(term) < abs(total) * eps:
            break
    return total * math.exp(log_prefactor)


def _gamma_q_continued_fraction(
    a: float, x: float, max_iter: int = 500, eps: float = 1e-14
) -> float:
    """Q(a, x) by Lentz's continued fraction (converges for x >= a + 1)."""
    tiny = 1e-300
    log_prefactor = a * math.log(x) - x - math.lgamma(a)
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, max_iter + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h * math.exp(log_prefactor)


def compare_group_distributions(
    groupings_a: Iterable[UserGrouping], groupings_b: Iterable[UserGrouping]
) -> ChiSquareResult:
    """Chi-square comparison of two studies' Top-k user distributions.

    This is the statistical backing for slides 4-5: are the Korean and
    Lady Gaga populations distributed differently over the groups?
    """
    order = TopKGroup.reporting_order()
    counts_a = dict.fromkeys(order, 0)
    counts_b = dict.fromkeys(order, 0)
    for grouping in groupings_a:
        counts_a[grouping.group] += 1
    for grouping in groupings_b:
        counts_b[grouping.group] += 1
    return chi_square_independence(
        [counts_a[g] for g in order], [counts_b[g] for g in order]
    )
