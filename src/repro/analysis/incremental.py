"""Incremental study accumulator — the full correlation study on a live stream.

The batch :class:`~repro.engine.engine.StudyEngine` runs the five-stage
study once over a frozen corpus.  A streaming deployment instead watches
tweets arrive and must keep the whole :class:`~repro.analysis.correlation
.StudyResult` — funnel, observations, groupings, Figs. 6-7 statistics,
simulated API accounting — fresh at every point in the stream.

:class:`IncrementalStudyAccumulator` folds micro-batches of tweets into
per-user state:

* profile locations are forward-geocoded once, on a user's first tweet;
* GPS tweets of well-defined users are reverse-geocoded through a live
  :class:`~repro.yahooapi.client.PlaceFinderClient` for the *live* views
  (group-share drift, observation counts, checkpoint digests);
* observations feed an :class:`~repro.grouping.incremental
  .IncrementalGrouper`, and only the users *touched by the batch* are
  re-classified — the per-group tallies update by group-transition deltas
  rather than a full recount.

:meth:`IncrementalStudyAccumulator.snapshot` assembles a
:class:`StudyResult` by replaying reverse geocoding over the retained
GPS tweets in the batch pipeline's canonical order (users ascending by
id, each user's tweets by tweet id).  The replay is what makes the
snapshot **byte-identical** to ``run_study`` over the tweets ingested so
far: the simulated PlaceFinder's 0.001° cell cache is order-sensitive —
the first point to hit a cell decides every later lookup in it — so
fold-order resolutions near district boundaries can differ from the
batch pipeline's, and only a canonical-order replay reproduces them
exactly (including the :class:`~repro.yahooapi.client.ClientStats`
accounting).  Property-tested in
``tests/streaming/test_stream_equivalence.py`` via the serialised JSON
document.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace

from repro.analysis.correlation import StudyResult
from repro.datasets.refine import RefinementFunnel
from repro.errors import ConfigurationError
from repro.geo.forward import GeocodeStatus, TextGeocoder
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.geo.region import District
from repro.geo.reverse import ReverseGeocoder
from repro.grouping.incremental import IncrementalGrouper
from repro.grouping.merge import TieBreak
from repro.grouping.stats import GroupRow, GroupStatistics, compute_group_statistics
from repro.grouping.topk import TopKGroup, UserGrouping, group_users
from repro.storage.userstore import UserStore
from repro.twitter.models import GeotaggedObservation, Tweet
from repro.yahooapi.client import ClientStats, PlaceFinderClient

#: Quota for the accumulator-owned PlaceFinder client — effectively
#: unlimited, matching the engine's ``ENGINE_QUOTA``.
STREAM_QUOTA = 10**9


class IncrementalStudyAccumulator:
    """Maintains a full study's state under streaming tweet arrivals.

    Args:
        gazetteer: District catalogue both geocoders resolve against.
        directory: Account directory tweets are hydrated against (the
            simulated platform's user store; the real Streaming API
            embeds the author object in every status).
        tie_break: Equal-count ordering policy (matches the batch path).
        min_gps_tweets: Study-entry threshold.  Only the paper's value
            (1) is supported on a stream: a higher threshold makes the
            batch pipeline skip *all* reverse geocoding for users below
            it, which cannot be decided before the stream ends.

    Raises:
        ConfigurationError: for ``min_gps_tweets != 1``.
    """

    def __init__(
        self,
        gazetteer: Gazetteer,
        directory: UserStore,
        tie_break: TieBreak = TieBreak.STRING_ASC,
        min_gps_tweets: int = 1,
    ):
        if min_gps_tweets != 1:
            raise ConfigurationError(
                "streaming accumulation supports only min_gps_tweets=1 "
                f"(the paper's threshold), got {min_gps_tweets}"
            )
        self._directory = directory
        self._gazetteer = gazetteer
        self._tie_break = tie_break
        self._text_geocoder = TextGeocoder(gazetteer)
        self._client = PlaceFinderClient(
            ReverseGeocoder(gazetteer), daily_quota=STREAM_QUOTA
        )
        self._grouper = IncrementalGrouper(tie_break)

        # Per-user state, keyed by user id.
        self._profile_status: dict[int, str] = {}
        self._profile_districts: dict[int, District] = {}
        self._rows: dict[int, list[GeotaggedObservation]] = {}
        self._groupings: dict[int, UserGrouping] = {}
        # Raw GPS tweets of well-defined users — (tweet_id, timestamp,
        # point) — retained for the snapshot's canonical-order replay.
        self._gps_rows: dict[int, list[tuple[int, int, GeoPoint]]] = {}

        # Stream-wide funnel counters.
        self._total_tweets = 0
        self._gps_tweets = 0
        self._unresolvable = 0

        # Live per-group user tally, updated by transition deltas.
        self._group_tally: Counter[TopKGroup] = Counter()

    # ----------------------------------------------------------------- ingest
    def fold(self, tweets: list[Tweet]) -> int:
        """Fold one micro-batch into the study state.

        Returns the number of new observations the batch produced (the
        consumer reports it as ``stream.consumer.observations``).
        """
        touched: set[int] = set()
        produced = 0
        for tweet in tweets:
            self._total_tweets += 1
            if tweet.has_gps:
                self._gps_tweets += 1
            district = self._district_of(tweet.user_id)
            if district is None or not tweet.has_gps:
                continue
            assert tweet.coordinates is not None
            self._gps_rows.setdefault(tweet.user_id, []).append(
                (tweet.tweet_id, tweet.created_at_ms, tweet.coordinates)
            )
            path = self._client.resolve_admin_path(tweet.coordinates)
            if path is None:
                self._unresolvable += 1
                continue
            observation = GeotaggedObservation(
                user_id=tweet.user_id,
                profile_state=district.state,
                profile_county=district.name,
                tweet_state=path.state,
                tweet_county=path.county,
                timestamp_ms=tweet.created_at_ms,
            )
            self._rows.setdefault(tweet.user_id, []).append(observation)
            self._grouper.add(observation)
            touched.add(tweet.user_id)
            produced += 1
        for user_id in touched:
            self._reclassify(user_id)
        return produced

    def _district_of(self, user_id: int) -> District | None:
        """The user's profile district, geocoding on first encounter."""
        if user_id not in self._profile_status:
            user = self._directory.get(user_id)
            result = self._text_geocoder.geocode(user.profile_location)
            self._profile_status[user_id] = result.status.value
            if result.status is GeocodeStatus.RESOLVED and result.district is not None:
                self._profile_districts[user_id] = result.district
        return self._profile_districts.get(user_id)

    def _reclassify(self, user_id: int) -> None:
        """Refresh one user's cached grouping and the group tally."""
        previous = self._groupings.get(user_id)
        current = self._grouper.classify(user_id)
        if previous is not None:
            self._group_tally[previous.group] -= 1
        self._group_tally[current.group] += 1
        self._groupings[user_id] = current

    # ------------------------------------------------------------------ views
    @property
    def grouper(self) -> IncrementalGrouper:
        """The underlying incremental grouper (checkpoint digests hash it)."""
        return self._grouper

    @property
    def api_stats(self) -> ClientStats:
        """Live PlaceFinder usage accounting for the stream so far."""
        return self._client.stats

    @property
    def users_seen(self) -> int:
        """Accounts profile-geocoded so far (stream authors, plus the
        rest of the directory once a snapshot has swept it)."""
        return len(self._profile_status)

    @property
    def study_users(self) -> int:
        """Users currently in the study (>= 1 resolved observation)."""
        return len(self._rows)

    @property
    def observations_folded(self) -> int:
        """Resolved observations accumulated so far."""
        return sum(len(rows) for rows in self._rows.values())

    def group_shares(self) -> dict[str, int]:
        """Live per-group user counts (the drifting Fig. 7 numerators).

        Registered as a metrics source under ``stream.groups``, this is
        how matched-ratio drift is observed while the sample accumulates.
        """
        return {
            group.value: self._group_tally.get(group, 0)
            for group in TopKGroup.reporting_order()
        }

    def stats_source(self) -> dict[str, float]:
        """Accumulator counters for the metrics registry."""
        return {
            "users_seen": self.users_seen,
            "study_users": self.study_users,
            "observations": self.observations_folded,
            "tweets": self._total_tweets,
            "gps_tweets": self._gps_tweets,
            "unresolvable": self._unresolvable,
        }

    # --------------------------------------------------------------- snapshot
    def snapshot(self, dataset_name: str = "stream") -> StudyResult:
        """The current :class:`StudyResult`, byte-identical to the batch.

        The retained GPS tweets are re-resolved through a *fresh*
        PlaceFinder client in the batch pipeline's canonical order (users
        ascending by id, tweets ascending by tweet id).  Fold-time
        resolutions cannot be reused here: the client's 0.001° cell cache
        answers every lookup in a cell with the first point that hit it,
        so near-boundary cells shared by tweets of different users can
        resolve differently under arrival order than under batch order.
        The replay reproduces the batch run exactly — observations,
        funnel attrition, and the :class:`ClientStats` accounting.
        """
        # The batch ProfileGeocodeStage geocodes *every* crawled user, not
        # just the authors the stream happened to deliver — sweep the rest
        # of the directory through the (cached) forward geocoder first.
        for user in self._directory:
            self._district_of(user.user_id)

        funnel = RefinementFunnel()
        funnel.crawled_users = len(self._profile_status)
        funnel.total_tweets = self._total_tweets
        funnel.gps_tweets = self._gps_tweets
        for user_id in sorted(self._profile_status):
            funnel.profile_status_counts[self._profile_status[user_id]] += 1
        funnel.well_defined_users = len(self._profile_districts)
        funnel.users_with_gps = len(self._gps_rows)

        client = PlaceFinderClient(
            ReverseGeocoder(self._gazetteer), daily_quota=STREAM_QUOTA
        )
        observations: list[GeotaggedObservation] = []
        kept_districts: dict[int, District] = {}
        for user_id in sorted(self._gps_rows):
            district = self._profile_districts[user_id]
            user_rows: list[GeotaggedObservation] = []
            for _, timestamp_ms, point in sorted(
                self._gps_rows[user_id], key=lambda row: row[0]
            ):
                path = client.resolve_admin_path(point)
                if path is None:
                    funnel.unresolvable_gps_tweets += 1
                    continue
                user_rows.append(
                    GeotaggedObservation(
                        user_id=user_id,
                        profile_state=district.state,
                        profile_county=district.name,
                        tweet_state=path.state,
                        tweet_county=path.county,
                        timestamp_ms=timestamp_ms,
                    )
                )
            if user_rows:
                observations.extend(user_rows)
                kept_districts[user_id] = district
        funnel.resolved_observations = len(observations)
        groupings = group_users(observations, tie_break=self._tie_break)
        funnel.study_users = len(groupings)

        return StudyResult(
            dataset_name=dataset_name,
            funnel=funnel,
            observations=observations,
            groupings=groupings,
            statistics=(
                compute_group_statistics(groupings.values())
                if groupings
                else _empty_statistics()
            ),
            profile_districts=kept_districts,
            api_stats=replace(client.stats),
        )


def _empty_statistics() -> GroupStatistics:
    """An all-zero statistics table for a stream with no study users yet.

    The batch pipeline refuses an empty corpus outright
    (:class:`~repro.errors.InsufficientDataError`), but a *young stream*
    legitimately has zero study users and still owes callers a snapshot.
    """
    return GroupStatistics(
        rows=tuple(
            GroupRow(
                group=group,
                user_count=0,
                user_share=0.0,
                avg_tweet_locations=0.0,
                tweet_count=0,
                tweet_share=0.0,
                avg_matched_share=0.0,
            )
            for group in TopKGroup.reporting_order()
        ),
        total_users=0,
        total_tweets=0,
        overall_avg_tweet_locations=0.0,
    )
