"""Incremental study accumulator — the full correlation study on a live stream.

The batch :class:`~repro.engine.engine.StudyEngine` runs the five-stage
study once over a frozen corpus.  A streaming deployment instead watches
tweets arrive and must keep the whole :class:`~repro.analysis.correlation
.StudyResult` — funnel, observations, groupings, Figs. 6-7 statistics,
simulated API accounting — fresh at every point in the stream.

:class:`IncrementalStudyAccumulator` folds micro-batches of tweets into
per-user state:

* profile locations are forward-geocoded once, on a user's first tweet;
* GPS tweets of well-defined users are reverse-geocoded through the
  tiered :class:`~repro.geocode.service.GeocodeService` — one resolution
  per 0.001° cell, at the cell's canonical representative point;
* observations feed a grouper — by default the
  :class:`~repro.columnar.grouping.ColumnarGrouper`, which folds rows
  into per-user counters of *interned ids* (no record objects or string
  hashing on the fold path; ``columnar=False`` restores the
  record-keyed :class:`~repro.grouping.incremental.IncrementalGrouper`)
  — and only the users *touched by the batch* are re-classified — the
  per-group tallies update by group-transition deltas rather than a
  full recount.

Because a cell's outcome is a pure function of the cell key (see
:mod:`repro.geocode.service`), fold-time resolutions are *already* the
batch pipeline's resolutions: :meth:`IncrementalStudyAccumulator
.snapshot` assembles the :class:`StudyResult` directly from the retained
per-cell rows and the live grouper state, with **no** re-geocoding — the
serial canonical-order replay earlier revisions performed is gone, and a
snapshot costs O(study users), not O(retained tweets) geocoder calls.
The simulated :class:`~repro.yahooapi.client.ClientStats` accounting is
reconstructed arithmetically from the same invariant (requests = distinct
cells, cache hits = lookups − distinct cells).  Byte-identity with
``run_study`` is property-tested in
``tests/streaming/test_stream_equivalence.py`` via the serialised JSON
document.
"""

from __future__ import annotations

from bisect import insort
from collections import Counter
from pathlib import Path

from repro.analysis.correlation import StudyResult
from repro.columnar.grouping import ColumnarGrouper
from repro.datasets.refine import RefinementFunnel
from repro.errors import ConfigurationError
from repro.geo.forward import GeocodeStatus, TextGeocoder
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.region import District
from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import PlaceFinderBackend
from repro.geocode.cellstore import Cell
from repro.geocode.service import GeocodeService, cell_cache_path, simulated_latency
from repro.grouping.incremental import IncrementalGrouper
from repro.grouping.merge import TieBreak
from repro.grouping.stats import compute_group_statistics, empty_group_statistics
from repro.grouping.topk import TopKGroup, UserGrouping
from repro.storage.userstore import UserStore
from repro.twitter.models import GeotaggedObservation, Tweet
from repro.yahooapi.client import ClientStats, PlaceFinderClient

#: Quota for the accumulator-owned PlaceFinder client — effectively
#: unlimited, matching the engine's ``ENGINE_QUOTA``.
STREAM_QUOTA = 10**9

#: Simulated per-request latency, mirroring the engine's client default.
STREAM_LATENCY_S = 0.05


class IncrementalStudyAccumulator:
    """Maintains a full study's state under streaming tweet arrivals.

    Args:
        gazetteer: District catalogue both geocoders resolve against.
        directory: Account directory tweets are hydrated against (the
            simulated platform's user store; the real Streaming API
            embeds the author object in every status).
        tie_break: Equal-count ordering policy (matches the batch path).
        min_gps_tweets: Study-entry threshold.  Only the paper's value
            (1) is supported on a stream: a higher threshold makes the
            batch pipeline skip *all* reverse geocoding for users below
            it, which cannot be decided before the stream ends.
        cache_dir: Directory for the geocode service's persistent cell
            tier (``geocells.jsonl``), shared with ``repro study
            --cache-dir`` — a stream resuming (or starting) against a
            warm directory issues zero backend geocode lookups for
            already-resolved cells.
        geocode: Inject a pre-built service instead (overrides
            ``cache_dir``).
        columnar: Fold observations into interned-id columnar counters
            (the default); ``False`` keeps the record-keyed incremental
            grouper.  Classification output, export counters, and
            checkpoint digests are identical either way.

    Raises:
        ConfigurationError: for ``min_gps_tweets != 1``.
    """

    def __init__(
        self,
        gazetteer: GazetteerBackend,
        directory: UserStore,
        tie_break: TieBreak = TieBreak.STRING_ASC,
        min_gps_tweets: int = 1,
        cache_dir: str | Path | None = None,
        geocode: GeocodeService | None = None,
        columnar: bool = True,
    ):
        if min_gps_tweets != 1:
            raise ConfigurationError(
                "streaming accumulation supports only min_gps_tweets=1 "
                f"(the paper's threshold), got {min_gps_tweets}"
            )
        self._directory = directory
        self._gazetteer = gazetteer
        self._tie_break = tie_break
        self._text_geocoder = TextGeocoder(gazetteer)
        if geocode is None:
            cache_path = (
                cell_cache_path(cache_dir) if cache_dir is not None else None
            )
            geocode = GeocodeService(
                PlaceFinderBackend(
                    PlaceFinderClient(
                        ReverseGeocoder(gazetteer),
                        daily_quota=STREAM_QUOTA,
                        latency_s=STREAM_LATENCY_S,
                    )
                ),
                cache_path=cache_path,
            )
        self._geocode = geocode
        self._grouper: ColumnarGrouper | IncrementalGrouper = (
            ColumnarGrouper(tie_break) if columnar else IncrementalGrouper(tie_break)
        )

        # Per-user state, keyed by user id.
        self._profile_status: dict[int, str] = {}
        self._profile_districts: dict[int, District] = {}
        self._groupings: dict[int, UserGrouping] = {}
        # Users whose observations changed since the last take_dirty() —
        # the delta the live snapshot builder rebuilds from.
        self._dirty: set[int] = set()
        # One-shot flag: snapshot()/build_funnel() must geocode *every*
        # directory user (the batch pipeline does), but only once.
        self._directory_swept = False
        # Funnel status accounting kept incrementally: per-status counts
        # plus the smallest uid that carries each status, which is the
        # Counter *insertion order* a sorted-uid sweep would produce.
        self._status_counts: Counter[str] = Counter()
        self._status_min_uid: dict[str, int] = {}
        # GPS tweets of well-defined users — (tweet_id, timestamp, cell) —
        # kept sorted by tweet id so snapshots assemble observations in
        # batch-canonical order without touching the geocoder again.
        self._gps_rows: dict[int, list[tuple[int, int, Cell]]] = {}

        # Stream-wide funnel and canonical-API counters.
        self._total_tweets = 0
        self._gps_tweets = 0
        self._unresolvable = 0
        self._gps_lookups = 0
        self._cells_seen: set[Cell] = set()
        self._none_cells: set[Cell] = set()

        # Live per-group user tally, updated by transition deltas.
        self._group_tally: Counter[TopKGroup] = Counter()

    # ----------------------------------------------------------------- ingest
    def fold(self, tweets: list[Tweet]) -> int:
        """Fold one micro-batch into the study state.

        Returns the number of new observations the batch produced (the
        consumer reports it as ``stream.consumer.observations``).
        """
        touched: set[int] = set()
        produced = 0
        for tweet in tweets:
            self._total_tweets += 1
            if tweet.has_gps:
                self._gps_tweets += 1
            district = self._district_of(tweet.user_id)
            if district is None or not tweet.has_gps:
                continue
            assert tweet.coordinates is not None
            cell = self._geocode.cell_of(tweet.coordinates)
            insort(
                self._gps_rows.setdefault(tweet.user_id, []),
                (tweet.tweet_id, tweet.created_at_ms, cell),
            )
            self._gps_lookups += 1
            self._cells_seen.add(cell)
            path = self._geocode.resolve_cell(cell)
            if path is None:
                self._none_cells.add(cell)
                self._unresolvable += 1
                continue
            observation = GeotaggedObservation(
                user_id=tweet.user_id,
                profile_state=district.state,
                profile_county=district.name,
                tweet_state=path.state,
                tweet_county=path.county,
                timestamp_ms=tweet.created_at_ms,
            )
            self._grouper.add(observation)
            touched.add(tweet.user_id)
            produced += 1
        for user_id in touched:
            self._reclassify(user_id)
        self._dirty.update(touched)
        return produced

    def _district_of(self, user_id: int) -> District | None:
        """The user's profile district, geocoding on first encounter."""
        if user_id not in self._profile_status:
            user = self._directory.get(user_id)
            result = self._text_geocoder.geocode(user.profile_location)
            status = result.status.value
            self._profile_status[user_id] = status
            self._status_counts[status] += 1
            if user_id < self._status_min_uid.get(status, user_id + 1):
                self._status_min_uid[status] = user_id
            if result.status is GeocodeStatus.RESOLVED and result.district is not None:
                self._profile_districts[user_id] = result.district
        return self._profile_districts.get(user_id)

    def _reclassify(self, user_id: int) -> None:
        """Refresh one user's cached grouping and the group tally."""
        previous = self._groupings.get(user_id)
        current = self._grouper.classify(user_id)
        if previous is not None:
            self._group_tally[previous.group] -= 1
        self._group_tally[current.group] += 1
        self._groupings[user_id] = current

    # ------------------------------------------------------- delta-build views
    @property
    def dirty_count(self) -> int:
        """Users whose observations changed since the last ``take_dirty``."""
        return len(self._dirty)

    def take_dirty(self) -> set[int]:
        """Claim (and clear) the set of users changed since the last call.

        The live :class:`~repro.live.builder.DeltaSnapshotBuilder` calls
        this at the top of each build; it keeps the claimed set in its
        own pending pool until the build *succeeds*, so a failed build
        never loses dirt.
        """
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def mark_dirty(self, user_ids) -> None:
        """Force re-derivation of ``user_ids`` on the next delta build.

        Folding marks dirt automatically; this hook exists for callers
        that need to invalidate users without new tweets — churn
        injection in ``benchmarks/bench_live_freshness.py``, or a cache
        flush after out-of-band state surgery.  Marking a clean user is
        harmless: the rebuild re-derives the same bytes.
        """
        self._dirty |= set(user_ids)

    def ensure_directory_swept(self) -> None:
        """Profile-geocode every directory user (once).

        The batch ``ProfileGeocodeStage`` geocodes *every* crawled user,
        not just the authors the stream happened to deliver — so any
        view claiming batch equivalence (``snapshot``, a live delta
        build) must sweep the rest of the directory through the cached
        forward geocoder first.  Memoized: the directory is fixed for
        the life of the accumulator, so one sweep settles it.
        """
        if self._directory_swept:
            return
        for user in self._directory:
            self._district_of(user.user_id)
        self._directory_swept = True

    def build_funnel(self) -> RefinementFunnel:
        """The refinement funnel, assembled from incremental counters.

        Byte-identical to what a sorted-uid sweep would produce: the
        per-status counts are maintained at geocode time, and the
        Counter's insertion order — statuses by the smallest uid that
        carries them — is exactly first-encounter order under a sweep of
        ascending uids.
        """
        self.ensure_directory_swept()
        funnel = RefinementFunnel()
        funnel.crawled_users = len(self._profile_status)
        funnel.total_tweets = self._total_tweets
        funnel.gps_tweets = self._gps_tweets
        for status in sorted(self._status_min_uid, key=self._status_min_uid.get):
            funnel.profile_status_counts[status] = self._status_counts[status]
        funnel.well_defined_users = len(self._profile_districts)
        funnel.users_with_gps = len(self._gps_rows)
        funnel.unresolvable_gps_tweets = self._unresolvable
        funnel.resolved_observations = self.observations_folded
        funnel.study_users = len(self._groupings)
        return funnel

    def study_user_ids(self) -> list[int]:
        """Study users (>= 1 resolved observation), ascending by id."""
        return sorted(self._groupings)

    def grouping_of(self, user_id: int) -> UserGrouping:
        """The cached grouping of one study user."""
        return self._groupings[user_id]

    def profile_district_of(self, user_id: int) -> District:
        """The profile district of one well-defined user."""
        return self._profile_districts[user_id]

    def resolved_rows_with_ids(
        self, user_id: int
    ) -> list[tuple[int, GeotaggedObservation]]:
        """One study user's ``(tweet_id, observation)`` pairs, ascending
        by tweet id.

        Assembled from the retained ``(tweet_id, timestamp, cell)`` rows
        with no re-geocoding (cell outcomes are pure functions of the
        cell key); unresolvable cells are skipped, exactly as the batch
        pipeline drops them.  The tweet id is the canonical within-user
        observation order — the delta builder keys interner occurrence
        positions on it because it is stable under later insertions,
        where a list index is not.
        """
        district = self._profile_districts[user_id]
        rows: list[tuple[int, GeotaggedObservation]] = []
        for tweet_id, timestamp_ms, cell in self._gps_rows.get(user_id, ()):
            if cell in self._none_cells:
                continue
            path = self._geocode.resolve_cell(cell)
            assert path is not None  # outcome is a pure function of cell
            rows.append(
                (
                    tweet_id,
                    GeotaggedObservation(
                        user_id=user_id,
                        profile_state=district.state,
                        profile_county=district.name,
                        tweet_state=path.state,
                        tweet_county=path.county,
                        timestamp_ms=timestamp_ms,
                    ),
                )
            )
        return rows

    def resolved_rows(self, user_id: int) -> list[GeotaggedObservation]:
        """One study user's observations, ascending by tweet id."""
        return [row for _, row in self.resolved_rows_with_ids(user_id)]

    # ------------------------------------------------------------------ views
    @property
    def grouper(self) -> ColumnarGrouper | IncrementalGrouper:
        """The underlying grouper (checkpoint digests hash its export)."""
        return self._grouper

    @property
    def geocode(self) -> GeocodeService:
        """The tiered geocode service fold-time resolutions go through."""
        return self._geocode

    @property
    def api_stats(self) -> ClientStats:
        """Canonical PlaceFinder accounting for the stream so far.

        Reconstructed arithmetically from the cell invariant — one
        request per distinct cell, every other lookup a cache hit — so
        the live view always equals what a batch run over the same
        tweets would report.
        """
        return self._canonical_stats()

    @property
    def users_seen(self) -> int:
        """Accounts profile-geocoded so far (stream authors, plus the
        rest of the directory once a snapshot has swept it)."""
        return len(self._profile_status)

    @property
    def study_users(self) -> int:
        """Users currently in the study (>= 1 resolved observation)."""
        return len(self._groupings)

    @property
    def observations_folded(self) -> int:
        """Resolved observations accumulated so far."""
        return self._gps_lookups - self._unresolvable

    def group_shares(self) -> dict[str, int]:
        """Live per-group user counts (the drifting Fig. 7 numerators).

        Registered as a metrics source under ``stream.groups``, this is
        how matched-ratio drift is observed while the sample accumulates.
        """
        return {
            group.value: self._group_tally.get(group, 0)
            for group in TopKGroup.reporting_order()
        }

    def stats_source(self) -> dict[str, float]:
        """Accumulator counters for the metrics registry."""
        return {
            "users_seen": self.users_seen,
            "study_users": self.study_users,
            "observations": self.observations_folded,
            "tweets": self._total_tweets,
            "gps_tweets": self._gps_tweets,
            "unresolvable": self._unresolvable,
        }

    def _canonical_stats(self) -> ClientStats:
        """The :class:`ClientStats` a single serial batch client reports."""
        stats = ClientStats()
        stats.requests = len(self._cells_seen)
        stats.cache_hits = self._gps_lookups - len(self._cells_seen)
        stats.no_result = len(self._none_cells)
        stats.simulated_latency_s = simulated_latency(
            stats.requests, STREAM_LATENCY_S
        )
        return stats

    # --------------------------------------------------------------- snapshot
    def snapshot(self, dataset_name: str = "stream") -> StudyResult:
        """The current :class:`StudyResult`, byte-identical to the batch.

        No re-geocoding happens here: cell outcomes are pure functions of
        the cell key, so the fold-time resolutions *are* the batch
        pipeline's.  Observations are assembled from the retained
        ``(tweet_id, timestamp, cell)`` rows in batch-canonical order
        (users ascending by id, tweets ascending by tweet id), groupings
        are read straight off the incremental grouper, and the API
        accounting is the canonical arithmetic view — O(study users)
        work plus cached cell lookups, instead of the full serial replay
        earlier revisions needed.
        """
        funnel = self.build_funnel()

        observations: list[GeotaggedObservation] = []
        kept_districts: dict[int, District] = {}
        for user_id in self.study_user_ids():
            observations.extend(self.resolved_rows(user_id))
            kept_districts[user_id] = self._profile_districts[user_id]
        groupings = {
            user_id: self._groupings[user_id] for user_id in kept_districts
        }

        return StudyResult(
            dataset_name=dataset_name,
            funnel=funnel,
            observations=observations,
            groupings=groupings,
            statistics=(
                compute_group_statistics(groupings.values())
                if groupings
                else empty_group_statistics()
            ),
            profile_districts=kept_districts,
            api_stats=self._canonical_stats(),
        )
