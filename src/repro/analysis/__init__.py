"""Analysis layer: the correlation study, reliability weights, reports.

Public surface of :mod:`repro.analysis`:

* :func:`run_study` / :class:`StudyResult` — the end-to-end study
* :class:`ReliabilityTable` / :class:`WeightingScheme` — weight factors
* ``render_*`` — plain-text renderings of every paper figure/table
"""

from repro.analysis.correlation import StudyResult, run_study
from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.analysis.export import (
    export_group_statistics,
    export_groupings,
    export_observations,
)
from repro.analysis.mentions import (
    MentionAgreement,
    MentionCorrelationStudy,
    render_mention_agreement,
)
from repro.analysis.reliability import ReliabilityTable, WeightingScheme
from repro.analysis.regional import (
    RegionalRow,
    regional_breakdown,
    render_regional_breakdown,
)
from repro.analysis.serialization import (
    load_study,
    save_study,
    study_digest,
    study_to_json,
)
from repro.analysis.stability import (
    StabilityResult,
    median_timestamp,
    render_stability,
    split_half_stability,
)
from repro.analysis.significance import (
    ChiSquareResult,
    ShareInterval,
    bootstrap_share_intervals,
    chi2_sf,
    chi_square_independence,
    compare_group_distributions,
)
from repro.analysis.report import (
    render_comparison,
    render_dataset_summary,
    render_fig6,
    render_fig7,
    render_funnel,
    render_merged_strings,
    render_tweet_distribution,
)

__all__ = [
    "ChiSquareResult",
    "IncrementalStudyAccumulator",
    "MentionAgreement",
    "MentionCorrelationStudy",
    "RegionalRow",
    "ReliabilityTable",
    "ShareInterval",
    "StabilityResult",
    "StudyResult",
    "WeightingScheme",
    "bootstrap_share_intervals",
    "chi2_sf",
    "chi_square_independence",
    "compare_group_distributions",
    "export_group_statistics",
    "export_groupings",
    "export_observations",
    "load_study",
    "median_timestamp",
    "regional_breakdown",
    "render_mention_agreement",
    "render_regional_breakdown",
    "render_stability",
    "save_study",
    "study_digest",
    "split_half_stability",
    "study_to_json",
    "render_comparison",
    "render_dataset_summary",
    "render_fig6",
    "render_fig7",
    "render_funnel",
    "render_merged_strings",
    "render_tweet_distribution",
    "run_study",
]
