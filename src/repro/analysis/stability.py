"""Temporal stability of the Top-k grouping — extension experiment.

The paper classifies each user from their whole history; an event system
consuming the weights needs to know whether that classification is a
stable trait or a snapshot.  This analysis splits each user's geotagged
observations at a time pivot (default: the corpus median timestamp), runs
the grouping method on each half independently, and measures how often a
user's group survives the split.

High agreement means the weight factors can be learned once and reused;
churn concentrated between adjacent groups (Top-1 <-> Top-2) is benign,
churn into/out of None is not.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import InsufficientDataError
from repro.grouping.topk import TopKGroup, group_users
from repro.twitter.models import GeotaggedObservation


@dataclass
class StabilityResult:
    """Outcome of a split-half stability analysis.

    Attributes:
        pivot_ms: The split timestamp.
        users_first / users_second: Study users in each half.
        users_in_both: Users classifiable in both halves.
        same_group: Users with identical groups in both halves.
        adjacent: Users whose matched ranks differ by exactly one (or who
            moved between Top-5 and Top-6+); counted among the changed.
        transitions: (first-half group, second-half group) -> user count.
    """

    pivot_ms: int
    users_first: int = 0
    users_second: int = 0
    users_in_both: int = 0
    same_group: int = 0
    adjacent: int = 0
    transitions: Counter = field(default_factory=Counter)

    @property
    def agreement_rate(self) -> float:
        """P(same group in both halves | classifiable in both)."""
        if self.users_in_both == 0:
            return 0.0
        return self.same_group / self.users_in_both

    @property
    def none_churn_rate(self) -> float:
        """P(exactly one half classified the user None | in both)."""
        if self.users_in_both == 0:
            return 0.0
        churn = sum(
            count
            for (first, second), count in self.transitions.items()
            if (first is TopKGroup.NONE) != (second is TopKGroup.NONE)
        )
        return churn / self.users_in_both


def median_timestamp(observations: list[GeotaggedObservation]) -> int:
    """Median observation timestamp (split pivot).

    Raises:
        InsufficientDataError: with no observations.
    """
    if not observations:
        raise InsufficientDataError("no observations to take a median of")
    stamps = sorted(o.timestamp_ms for o in observations)
    return stamps[len(stamps) // 2]


def split_half_stability(
    observations: list[GeotaggedObservation], pivot_ms: int | None = None
) -> StabilityResult:
    """Run the split-half stability analysis.

    Args:
        observations: Timestamped study observations.
        pivot_ms: Split point; the corpus median when omitted.

    Raises:
        InsufficientDataError: if either half ends up empty.
    """
    if pivot_ms is None:
        pivot_ms = median_timestamp(observations)
    first = [o for o in observations if o.timestamp_ms < pivot_ms]
    second = [o for o in observations if o.timestamp_ms >= pivot_ms]
    if not first or not second:
        raise InsufficientDataError("split pivot leaves an empty half")

    groups_first = group_users(first)
    groups_second = group_users(second)

    result = StabilityResult(
        pivot_ms=pivot_ms,
        users_first=len(groups_first),
        users_second=len(groups_second),
    )
    for user_id in groups_first.keys() & groups_second.keys():
        a = groups_first[user_id]
        b = groups_second[user_id]
        result.users_in_both += 1
        result.transitions[(a.group, b.group)] += 1
        if a.group is b.group:
            result.same_group += 1
        elif (
            a.matched_rank is not None
            and b.matched_rank is not None
            and abs(a.matched_rank - b.matched_rank) == 1
        ):
            result.adjacent += 1
    return result


def render_stability(result: StabilityResult) -> str:
    """Text artefact for the stability extension."""
    heading = "Split-half stability of Top-k groups (extension)"
    lines = [heading, "-" * len(heading)]
    lines.append(f"split pivot (unix ms)        {result.pivot_ms}")
    lines.append(f"study users, first half      {result.users_first:6d}")
    lines.append(f"study users, second half     {result.users_second:6d}")
    lines.append(f"classifiable in both         {result.users_in_both:6d}")
    lines.append(
        f"same group in both halves    {result.same_group:6d}  "
        f"({result.agreement_rate:.1%})"
    )
    lines.append(f"adjacent-rank moves          {result.adjacent:6d}")
    lines.append(f"None-group churn rate        {result.none_churn_rate:8.1%}")
    lines.append("")
    lines.append("largest transitions:")
    for (first, second), count in result.transitions.most_common(8):
        marker = "  (stable)" if first is second else ""
        lines.append(f"  {first.value:<8} -> {second.value:<8} {count:5d}{marker}")
    return "\n".join(lines)
