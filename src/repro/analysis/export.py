"""CSV export of study outputs.

Downstream consumers that are not Python (spreadsheets, R, plotting
toolchains) get the study's three core tables as plain CSV: the per-group
statistics behind Figs. 6-7, the per-user grouping outcomes, and the raw
observations.  Everything is stdlib ``csv`` — no dependency, no surprises
with delimiters inside district names (which never contain commas, but
quoting is on anyway).
"""

from __future__ import annotations

import csv
from collections.abc import Iterable
from pathlib import Path

from repro.grouping.stats import GroupStatistics
from repro.grouping.topk import UserGrouping
from repro.twitter.models import GeotaggedObservation


def export_group_statistics(statistics: GroupStatistics, path: str | Path) -> int:
    """Write the per-group table (Figs. 6-7 data) as CSV.

    Returns the number of data rows written.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, quoting=csv.QUOTE_MINIMAL)
        writer.writerow(
            [
                "group",
                "users",
                "user_share",
                "avg_tweet_locations",
                "tweets",
                "tweet_share",
                "avg_matched_share",
            ]
        )
        for row in statistics.rows:
            writer.writerow(
                [
                    row.group.value,
                    row.user_count,
                    f"{row.user_share:.6f}",
                    f"{row.avg_tweet_locations:.4f}",
                    row.tweet_count,
                    f"{row.tweet_share:.6f}",
                    f"{row.avg_matched_share:.6f}",
                ]
            )
    return len(statistics.rows)


def export_groupings(groupings: Iterable[UserGrouping], path: str | Path) -> int:
    """Write per-user grouping outcomes as CSV (one row per user).

    Returns the number of data rows written.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, quoting=csv.QUOTE_MINIMAL)
        writer.writerow(
            [
                "user_id",
                "group",
                "matched_rank",
                "tweet_location_count",
                "total_tweets",
                "matched_tweets",
                "matched_share",
            ]
        )
        for grouping in groupings:
            writer.writerow(
                [
                    grouping.user_id,
                    grouping.group.value,
                    "" if grouping.matched_rank is None else grouping.matched_rank,
                    grouping.tweet_location_count,
                    grouping.total_tweets,
                    grouping.matched_tweets,
                    f"{grouping.matched_share:.6f}",
                ]
            )
            count += 1
    return count


def export_observations(
    observations: Iterable[GeotaggedObservation], path: str | Path
) -> int:
    """Write raw per-tweet observations as CSV.

    Returns the number of data rows written.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, quoting=csv.QUOTE_MINIMAL)
        writer.writerow(
            [
                "user_id",
                "profile_state",
                "profile_county",
                "tweet_state",
                "tweet_county",
                "timestamp_ms",
                "matched",
            ]
        )
        for obs in observations:
            writer.writerow(
                [
                    obs.user_id,
                    obs.profile_state,
                    obs.profile_county,
                    obs.tweet_state,
                    obs.tweet_county,
                    obs.timestamp_ms,
                    int(obs.matched),
                ]
            )
            count += 1
    return count
