"""Reliability weights for profile locations.

The paper's conclusion: "we can use the analysis result of this paper to
determine the weight factor for the location information" in event
detection systems (§V).  This module turns the grouping outcomes into
those weight factors.

Three schemes are provided (ablated in ``bench_event_localization``):

* ``GROUP_MATCHED_SHARE`` — the empirical probability that a tweet of a
  user in group G was posted at the profile district.  This is the
  paper's proposed factor: a Top-1 user's profile location is strong
  evidence; a None user's is none at all.
* ``RANK_RECIPROCAL`` — ``1 / matched_rank`` (0 for None); a cruder proxy
  needing only the rank.
* ``UNIFORM`` — every profile trusted equally: the baseline the paper
  criticises Twitris/Toretter for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.grouping.stats import GroupStatistics
from repro.grouping.topk import TopKGroup, UserGrouping


class WeightingScheme(enum.Enum):
    """How a user's profile-location weight is derived."""

    GROUP_MATCHED_SHARE = "group_matched_share"
    RANK_RECIPROCAL = "rank_reciprocal"
    UNIFORM = "uniform"


@dataclass(frozen=True, slots=True)
class ReliabilityTable:
    """Per-group weight factors learned from a study.

    Attributes:
        weights: Weight per Top-k group under GROUP_MATCHED_SHARE.
        prior: Dataset-level expected weight, for users the study never
            grouped (e.g. no GPS history): the user-share-weighted mean.
    """

    weights: dict[TopKGroup, float]
    prior: float

    @classmethod
    def from_statistics(cls, statistics: GroupStatistics) -> "ReliabilityTable":
        """Learn the table from per-group aggregates."""
        weights = {
            row.group: row.avg_matched_share for row in statistics.rows
        }
        prior = sum(
            row.user_share * row.avg_matched_share for row in statistics.rows
        )
        return cls(weights=weights, prior=prior)

    def weight_for_group(self, group: TopKGroup) -> float:
        """The learned weight for ``group``."""
        return self.weights.get(group, self.prior)

    def weight_for_user(
        self,
        grouping: UserGrouping | None,
        scheme: WeightingScheme = WeightingScheme.GROUP_MATCHED_SHARE,
    ) -> float:
        """Weight of one user's profile location under ``scheme``.

        Args:
            grouping: The user's study outcome; ``None`` for users outside
                the study (falls back to the prior / uniform value).
            scheme: Weighting scheme.
        """
        if scheme is WeightingScheme.UNIFORM:
            return 1.0
        if grouping is None:
            return self.prior
        if scheme is WeightingScheme.RANK_RECIPROCAL:
            if grouping.matched_rank is None:
                return 0.0
            return 1.0 / grouping.matched_rank
        return self.weight_for_group(grouping.group)

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly view, in reporting order."""
        table = {
            group.value: round(self.weights.get(group, 0.0), 4)
            for group in TopKGroup.reporting_order()
        }
        table["prior"] = round(self.prior, 4)
        return table
