"""Persistence of study results.

The collection phase of the original study ran for weeks; the analysis
phase should never have to repeat it.  This module serialises everything
downstream consumers need — the per-user groupings, per-group statistics,
funnel, and profile districts — to a single JSON document and restores it
without re-running refinement or geocoding.

The merged strings are stored in the paper's own ``record (count)`` text
form, so a saved study doubles as a human-readable Table II dump.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.analysis.correlation import StudyResult
from repro.columnar.interner import StringInterner, study_interner
from repro.datasets.refine import RefinementFunnel
from repro.errors import ConfigurationError, StorageError
from repro.geo.gazetteer import GazetteerBackend
from repro.grouping.merge import MergedString
from repro.grouping.strings import LocationString
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import classify_rows
from repro.twitter.models import GeotaggedObservation
from repro.yahooapi.client import ClientStats

#: Current document version.  Version 2 added the ``interner`` key — the
#: canonical string-id table of :func:`~repro.columnar.interner
#: .study_interner` — so the interned columnar view is versioned into the
#: document (and therefore into :func:`study_digest`).
_FORMAT_VERSION = 2

#: Versions :func:`load_study` accepts.  Version-1 documents predate the
#: interner table; the table is derivable from the observations, so they
#: load unchanged.
_SUPPORTED_VERSIONS = frozenset({1, 2})


def _merged_to_text(merged: tuple[MergedString, ...]) -> list[str]:
    return [row.render() for row in merged]


def _merged_from_text(rows: list[str]) -> list[MergedString]:
    parsed = []
    for row in rows:
        record_text, _, count_text = row.rpartition(" (")
        if not record_text or not count_text.endswith(")"):
            raise StorageError(f"malformed merged-string row: {row!r}")
        parsed.append(
            MergedString(
                record=LocationString.parse(record_text),
                count=int(count_text[:-1]),
            )
        )
    return parsed


def study_to_json(study: StudyResult) -> str:
    """The canonical JSON document for a study result.

    This is the exact text :func:`save_study` writes.  It is also the
    equivalence currency of the streaming subsystem: two studies are
    *byte-identical* iff their ``study_to_json`` strings are equal, which
    is how ``tests/streaming/test_stream_equivalence.py`` compares an
    end-of-stream snapshot against the batch pipeline.
    """
    document: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "dataset_name": study.dataset_name,
        "funnel": study.funnel.as_dict(),
        "observations": [
            {
                "user_id": o.user_id,
                "ps": o.profile_state,
                "pc": o.profile_county,
                "ts": o.tweet_state,
                "tc": o.tweet_county,
                "t": o.timestamp_ms,
            }
            for o in study.observations
        ],
        "merged": {
            str(user_id): _merged_to_text(grouping.merged)
            for user_id, grouping in study.groupings.items()
        },
        "profile_districts": {
            str(user_id): list(district.key())
            for user_id, district in study.profile_districts.items()
        },
        "api_stats": study.api_stats.snapshot(),
        "interner": study_interner(
            study.observations, study.profile_districts
        ).to_lines(),
    }
    return json.dumps(document, ensure_ascii=False, indent=1)


def study_digest(study: StudyResult) -> str:
    """Content digest of the canonical JSON document (SHA-256 hex).

    This is the serving layer's snapshot-version contract: a
    :class:`~repro.serving.state.ServingSnapshot` is versioned by the
    digest of the study it was loaded from, so two snapshots built from
    equal studies — whether loaded from the same file twice, saved by a
    batch run, or streamed to the same end state — carry the *same*
    version tag, and a hot-swap between them is observationally a no-op.
    """
    return hashlib.sha256(study_to_json(study).encode("utf-8")).hexdigest()


def save_study(study: StudyResult, path: str | Path) -> None:
    """Write a study result to ``path`` as JSON (see :func:`study_to_json`)."""
    Path(path).write_text(study_to_json(study), encoding="utf-8")


def load_study(path: str | Path, gazetteer: GazetteerBackend) -> StudyResult:
    """Restore a study result saved by :func:`save_study`.

    Groupings and statistics are *recomputed* from the stored merged
    strings rather than trusted from disk, so a loaded study can never
    disagree with its own observations.  A version-2 document's stored
    interner table is checked against the table the observations derive
    to, so a document whose columnar view was edited out from under its
    rows is rejected rather than silently re-interned.

    Args:
        path: The JSON document.
        gazetteer: Catalogue to resolve stored profile-district keys
            against (must contain every stored key).

    Raises:
        StorageError: on version mismatch or malformed content.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read study from {path}: {exc}") from exc
    version = document.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise StorageError(f"unsupported study format version: {version}")

    observations = [
        GeotaggedObservation(
            user_id=int(o["user_id"]),
            profile_state=o["ps"],
            profile_county=o["pc"],
            tweet_state=o["ts"],
            tweet_county=o["tc"],
            timestamp_ms=int(o.get("t", 0)),
        )
        for o in document["observations"]
    ]

    groupings = {}
    for user_text, rows in document["merged"].items():
        user_id = int(user_text)
        groupings[user_id] = classify_rows(user_id, _merged_from_text(rows))

    profile_districts = {}
    for user_text, (state, county) in document["profile_districts"].items():
        profile_districts[int(user_text)] = gazetteer.get(state, county)

    if "interner" in document:
        try:
            stored = StringInterner.from_lines(document["interner"])
        except ConfigurationError as exc:
            raise StorageError(f"malformed interner table in {path}: {exc}") from exc
        if stored != study_interner(observations, profile_districts):
            raise StorageError(
                f"interner table in {path} does not match the study content"
            )

    funnel_data = dict(document["funnel"])
    status_counts = funnel_data.pop("profile_status_counts", {})
    funnel = RefinementFunnel(**funnel_data)
    funnel.profile_status_counts.update(status_counts)

    stats_data = document.get("api_stats", {})
    api_stats = ClientStats(
        requests=int(stats_data.get("requests", 0)),
        cache_hits=int(stats_data.get("cache_hits", 0)),
        failures_injected=int(stats_data.get("failures_injected", 0)),
        no_result=int(stats_data.get("no_result", 0)),
        retries=int(stats_data.get("retries", 0)),
        retry_exhausted=int(stats_data.get("retry_exhausted", 0)),
        simulated_latency_s=float(stats_data.get("simulated_latency_s", 0.0)),
    )

    return StudyResult(
        dataset_name=document["dataset_name"],
        funnel=funnel,
        observations=observations,
        groupings=groupings,
        statistics=compute_group_statistics(groupings.values()),
        profile_districts=profile_districts,
        api_stats=api_stats,
    )
