"""The end-to-end correlation study (paper §III-§IV).

Wires the substrates together: forward-geocode profiles, reverse-geocode
GPS tweets through the simulated Yahoo client, run the text-based grouping
method, and aggregate the per-group statistics that the paper's Figs. 6-7
plot.  :func:`run_study` is the one call examples and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.refine import RefinementFunnel, RefinementPipeline
from repro.geo.forward import TextGeocoder
from repro.geo.gazetteer import Gazetteer
from repro.geo.region import District
from repro.geo.reverse import ReverseGeocoder
from repro.grouping.stats import GroupStatistics, compute_group_statistics
from repro.grouping.topk import UserGrouping, group_users
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.twitter.models import GeotaggedObservation
from repro.yahooapi.client import ClientStats, PlaceFinderClient


@dataclass
class StudyResult:
    """Everything the study produces for one dataset.

    Attributes:
        dataset_name: Label for reports ("Korean", "Lady Gaga").
        funnel: Refinement attrition accounting (experiment E9).
        observations: The grouping method's input rows.
        groupings: Per-user Top-k outcomes.
        statistics: Per-group aggregates (experiments E1-E3).
        profile_districts: Each study user's resolved profile district
            (consumed by the localisation experiment).
        api_stats: Simulated PlaceFinder usage during reverse geocoding.
    """

    dataset_name: str
    funnel: RefinementFunnel
    observations: list[GeotaggedObservation]
    groupings: dict[int, UserGrouping]
    statistics: GroupStatistics
    profile_districts: dict[int, District]
    api_stats: ClientStats


def run_study(
    users: UserStore,
    tweets: TweetStore,
    gazetteer: Gazetteer,
    dataset_name: str = "dataset",
    min_gps_tweets: int = 1,
    placefinder: PlaceFinderClient | None = None,
) -> StudyResult:
    """Run the complete correlation study over a stored corpus.

    Args:
        users: Crawled / streamed accounts.
        tweets: Their tweets.
        gazetteer: District catalogue both geocoders resolve against.
        dataset_name: Label used in reports.
        min_gps_tweets: Study-entry threshold (paper: 1).
        placefinder: Optionally inject a pre-configured client (custom
            quota, failure plan); a fresh unlimited-quota client otherwise.

    Returns:
        The full :class:`StudyResult`.
    """
    text_geocoder = TextGeocoder(gazetteer)
    if placefinder is None:
        placefinder = PlaceFinderClient(
            ReverseGeocoder(gazetteer), daily_quota=10**9
        )
    pipeline = RefinementPipeline(
        text_geocoder=text_geocoder,
        placefinder=placefinder,
        min_gps_tweets=min_gps_tweets,
    )
    refined = pipeline.run(users, tweets)
    groupings = group_users(refined.observations)
    statistics = compute_group_statistics(groupings.values())
    return StudyResult(
        dataset_name=dataset_name,
        funnel=refined.funnel,
        observations=refined.observations,
        groupings=groupings,
        statistics=statistics,
        profile_districts=refined.profile_districts,
        api_stats=placefinder.stats,
    )
