"""The end-to-end correlation study (paper §III-§IV).

:func:`run_study` is the one call examples and benchmarks use.  Since the
staged-engine refactor it is a thin wrapper over
:class:`~repro.engine.engine.StudyEngine`, which runs the same sequence —
forward-geocode profiles, reverse-geocode GPS tweets through the simulated
Yahoo client, the text-based grouping method, the Figs. 6-7 aggregates —
as composable stages with shared metrics and optional sharding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.datasets.refine import RefinementFunnel
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.region import District
from repro.grouping.stats import GroupStatistics
from repro.grouping.topk import UserGrouping
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.twitter.models import GeotaggedObservation
from repro.yahooapi.client import ClientStats, PlaceFinderClient

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.engine.context import RunContext
    from repro.engine.engine import EngineConfig


@dataclass
class StudyResult:
    """Everything the study produces for one dataset.

    Attributes:
        dataset_name: Label for reports ("Korean", "Lady Gaga").
        funnel: Refinement attrition accounting (experiment E9).
        observations: The grouping method's input rows.
        groupings: Per-user Top-k outcomes.
        statistics: Per-group aggregates (experiments E1-E3).
        profile_districts: Each study user's resolved profile district
            (consumed by the localisation experiment).
        api_stats: Simulated PlaceFinder usage during reverse geocoding.
    """

    dataset_name: str
    funnel: RefinementFunnel
    observations: list[GeotaggedObservation]
    groupings: dict[int, UserGrouping]
    statistics: GroupStatistics
    profile_districts: dict[int, District]
    api_stats: ClientStats


def run_study(
    users: UserStore,
    tweets: TweetStore,
    gazetteer: GazetteerBackend,
    dataset_name: str = "dataset",
    min_gps_tweets: int = 1,
    placefinder: PlaceFinderClient | None = None,
    engine_config: "EngineConfig | None" = None,
    context: "RunContext | None" = None,
) -> StudyResult:
    """Run the complete correlation study over a stored corpus.

    Thin wrapper over :class:`~repro.engine.engine.StudyEngine` — serial
    and single-sharded by default, result-identical to the pre-engine
    monolith (property-tested).

    Args:
        users: Crawled / streamed accounts.
        tweets: Their tweets.
        gazetteer: District catalogue both geocoders resolve against.
        dataset_name: Label used in reports.
        min_gps_tweets: Study-entry threshold (paper: 1); overrides the
            ``engine_config`` field when both are given.
        placefinder: Optionally inject a pre-configured client (custom
            quota, failure plan); forces serial reverse geocoding.
        engine_config: Sharding/backend/tie-break configuration.
        context: Optionally supply the run context to collect the run's
            metrics snapshot and stage spans.

    Returns:
        The full :class:`StudyResult`.
    """
    from dataclasses import replace

    from repro.engine.engine import StudyEngine, default_engine_config

    config = replace(
        engine_config or default_engine_config(), min_gps_tweets=min_gps_tweets
    )
    engine = StudyEngine(gazetteer, config=config, placefinder=placefinder)
    return engine.run(users, tweets, dataset_name=dataset_name, context=context)
