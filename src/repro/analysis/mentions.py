"""Correlation of mentioned places with tweet GPS — extension experiment.

Quantifies the paper's Fig.-4 observation ("some tweets mentioned about
their current locations and those are the same places of the GPS
coordinates"): over GPS-tagged tweets whose text mentions an unambiguous
place, how often is the mentioned district the district the GPS resolves
to, and how far apart are they when they disagree?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InsufficientDataError
from repro.geo.mentions import PlaceMentionExtractor
from repro.geo.reverse import ReverseGeocoder
from repro.twitter.models import Tweet


@dataclass
class MentionAgreement:
    """Aggregate agreement between mentioned places and GPS districts.

    Attributes:
        gps_tweets: GPS-tagged tweets examined.
        tweets_with_mentions: Those whose text mentioned a usable place.
        agreements: Mentions equal to the GPS district.
        same_state: Mentions in the GPS district's state (superset of
            agreements).
        mention_distances_km: Distance from each mentioned district's
            centroid to the tweet's GPS fix.
    """

    gps_tweets: int = 0
    tweets_with_mentions: int = 0
    agreements: int = 0
    same_state: int = 0
    mention_distances_km: list[float] = field(default_factory=list)

    @property
    def agreement_rate(self) -> float:
        """P(mentioned district == GPS district | a place was mentioned)."""
        if self.tweets_with_mentions == 0:
            return 0.0
        return self.agreements / self.tweets_with_mentions

    @property
    def same_state_rate(self) -> float:
        """P(mentioned state == GPS state | a place was mentioned)."""
        if self.tweets_with_mentions == 0:
            return 0.0
        return self.same_state / self.tweets_with_mentions

    @property
    def median_distance_km(self) -> float:
        """Median centroid-to-fix distance over mentioning tweets."""
        if not self.mention_distances_km:
            return 0.0
        ordered = sorted(self.mention_distances_km)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0


class MentionCorrelationStudy:
    """Runs the mention-vs-GPS correlation over a tweet corpus."""

    def __init__(self, extractor: PlaceMentionExtractor, reverse: ReverseGeocoder):
        self._extractor = extractor
        self._reverse = reverse

    def run(self, tweets: list[Tweet]) -> MentionAgreement:
        """Correlate mentions with GPS over ``tweets``.

        Raises:
            InsufficientDataError: if no tweet carries GPS.
        """
        result = MentionAgreement()
        for tweet in tweets:
            if tweet.coordinates is None:
                continue
            result.gps_tweets += 1
            mention = self._extractor.first(tweet.text)
            if mention is None:
                continue
            resolved = self._reverse.try_resolve(tweet.coordinates)
            if resolved is None:
                continue
            result.tweets_with_mentions += 1
            mentioned = mention.district
            result.mention_distances_km.append(
                mentioned.center.distance_km(tweet.coordinates)
            )
            if mentioned.key() == resolved.path.key():
                result.agreements += 1
            if mentioned.state == resolved.path.state:
                result.same_state += 1
        if result.gps_tweets == 0:
            raise InsufficientDataError("no GPS tweets to correlate mentions with")
        return result


def render_mention_agreement(result: MentionAgreement) -> str:
    """Text artefact for the extension experiment."""
    heading = "Place mentions vs GPS (extension: the paper's third spatial attribute)"
    lines = [heading, "-" * len(heading)]
    lines.append(f"GPS tweets examined           {result.gps_tweets:8d}")
    lines.append(f"  with a usable place mention {result.tweets_with_mentions:8d}")
    lines.append(f"  mention == GPS district     {result.agreements:8d}  "
                 f"({result.agreement_rate:.1%})")
    lines.append(f"  mention in same state       {result.same_state:8d}  "
                 f"({result.same_state_rate:.1%})")
    lines.append(f"median mention-to-fix distance {result.median_distance_km:7.1f} km")
    return "\n".join(lines)
