"""Staged execution engine: composable stages, run context, sharding.

Public surface of :mod:`repro.engine`:

* :class:`StudyEngine` / :class:`EngineConfig` — the staged study runner
* :class:`RunContext` / :class:`StageSpan` / :func:`render_trace` — the
  per-run context with structured stage spans
* :class:`MetricsRegistry` — unified counters/timers/gauges + sources,
  plus :class:`LatencyHistogram` windows with p50/p95/p99 summaries
* :class:`ShardedExecutor` / :func:`partition` — deterministic sharding
* The concrete stages (``RefineStage`` … ``StatisticsStage``) and the
  :class:`Stage` protocol for swapping in custom ones
"""

from repro.engine.context import RunContext, StageSpan, render_trace
from repro.engine.engine import (
    EngineConfig,
    EngineRun,
    StudyEngine,
    default_engine_config,
    default_stages,
)
from repro.engine.metrics import LatencyHistogram, MetricsRegistry
from repro.engine.sharding import (
    BACKENDS,
    ShardedExecutor,
    ShardOutcome,
    ShardRunReport,
    WorkerFaultPlan,
    partition,
)
from repro.engine.stages import (
    GroupingStage,
    ProfileGeocodeStage,
    RefineStage,
    ReverseGeocodeStage,
    Stage,
    StatisticsStage,
    StudyState,
)

__all__ = [
    "BACKENDS",
    "EngineConfig",
    "EngineRun",
    "GroupingStage",
    "LatencyHistogram",
    "MetricsRegistry",
    "ProfileGeocodeStage",
    "RefineStage",
    "ReverseGeocodeStage",
    "RunContext",
    "ShardOutcome",
    "ShardRunReport",
    "ShardedExecutor",
    "Stage",
    "StageSpan",
    "StatisticsStage",
    "StudyEngine",
    "StudyState",
    "WorkerFaultPlan",
    "default_engine_config",
    "default_stages",
    "partition",
    "render_trace",
]
