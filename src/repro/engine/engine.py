"""The StudyEngine: the staged execution substrate for the whole study.

``StudyEngine.run`` replaces the seed ``run_study`` monolith: it threads
one :class:`~repro.engine.context.RunContext` through the five default
stages (refine → profile geocode → reverse geocode → grouping →
statistics), shards the hot path according to :class:`EngineConfig`, and
assembles the same :class:`~repro.analysis.correlation.StudyResult` the
monolith produced — property-tested byte-identical for every shard count
and backend.  ``run_study`` / ``run_korean_study`` / ``run_ladygaga_study``
are now thin wrappers over this class.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.analysis.correlation import StudyResult
from repro.engine.context import RunContext
from repro.engine.sharding import BACKENDS, ShardedExecutor, WorkerFaultPlan
from repro.engine.stages import (
    GroupingStage,
    ProfileGeocodeStage,
    RefineStage,
    ReverseGeocodeStage,
    Stage,
    StatisticsStage,
    StudyState,
)
from repro.engine.stages import ENGINE_QUOTA
from repro.errors import ConfigurationError, InsufficientDataError
from repro.geo.forward import TextGeocoder
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import PlaceFinderBackend
from repro.geocode.service import GeocodeService, cell_cache_path
from repro.grouping.merge import TieBreak
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.yahooapi.client import PlaceFinderClient


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Execution configuration for a :class:`StudyEngine`.

    Attributes:
        shards: Contiguous shards the hot-path stages partition work into.
        backend: ``"serial"`` or ``"process"`` (one worker per shard).
        min_gps_tweets: Study-entry threshold (paper: 1).
        tie_break: Equal-count ordering policy for the grouping method.
        cache_dir: Directory for the geocode service's persistent cell
            tier (``geocells.jsonl``); ``None`` keeps the cache in
            memory only.  A second run pointed at a warm directory
            issues zero backend geocode lookups.
        fault_plan: Optional deterministic worker-crash injection
            (crash-recovery drills; see
            :class:`~repro.engine.sharding.WorkerFaultPlan`), mirroring
            the API-level ``FailurePlan`` idiom.
        columnar: Group over interned columnar batches (the default;
            byte-identical to the dict path).  ``False`` is the
            transition escape hatch — see the README note.
    """

    shards: int = 1
    backend: str = "serial"
    min_gps_tweets: int = 1
    tie_break: TieBreak = TieBreak.STRING_ASC
    cache_dir: str | None = None
    fault_plan: WorkerFaultPlan | None = None
    columnar: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.min_gps_tweets < 1:
            raise ConfigurationError(
                f"min_gps_tweets must be >= 1, got {self.min_gps_tweets}"
            )


def default_engine_config() -> EngineConfig:
    """The :class:`EngineConfig` a caller gets when passing none.

    Honours two environment overrides so an unmodified workload — the
    tier-1 test suite in particular — can be soaked under the parallel
    execution layer (the CI ``tests-process`` job sets both):

    * ``REPRO_BACKEND`` — ``"serial"`` or ``"process"``;
    * ``REPRO_SHARDS`` — shard count (the worker pool stays capped at
      the machine's CPU count regardless);
    * ``REPRO_COLUMNAR`` — ``"0"``/``"false"``/``"off"`` to group via
      the dict path instead of interned columns.

    Sharded and columnar runs are byte-identical to serial dict-path
    ones, so the overrides can never change a result — only how it is
    computed.

    Raises:
        ConfigurationError: for an unparseable or invalid override.
    """
    kwargs: dict[str, object] = {}
    backend = os.environ.get("REPRO_BACKEND", "").strip()
    if backend:
        kwargs["backend"] = backend
    shards = os.environ.get("REPRO_SHARDS", "").strip()
    if shards:
        try:
            kwargs["shards"] = int(shards)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_SHARDS must be an integer, got {shards!r}"
            ) from None
    columnar = os.environ.get("REPRO_COLUMNAR", "").strip().lower()
    if columnar:
        if columnar in ("1", "true", "on", "yes"):
            kwargs["columnar"] = True
        elif columnar in ("0", "false", "off", "no"):
            kwargs["columnar"] = False
        else:
            raise ConfigurationError(
                f"REPRO_COLUMNAR must be a boolean flag, got {columnar!r}"
            )
    return EngineConfig(**kwargs)  # type: ignore[arg-type]


@dataclass
class EngineRun:
    """One completed engine run: the result plus its execution context."""

    result: StudyResult
    context: RunContext
    state: StudyState


class StudyEngine:
    """Runs the correlation study as a staged, instrumented pipeline.

    Args:
        gazetteer: District catalogue both geocoders resolve against.
        config: Execution configuration (sharding, thresholds).
        placefinder: Optionally inject a pre-configured client (custom
            quota, failure plan).  Injection forces the reverse-geocode
            stage onto the serial path — shared quota and index-based
            failure schedules are inherently serial semantics.
        stages: Override the stage sequence (defaults to the five-stage
            study pipeline); each entry must satisfy the
            :class:`~repro.engine.stages.Stage` protocol.
    """

    def __init__(
        self,
        gazetteer: GazetteerBackend,
        config: EngineConfig | None = None,
        placefinder: PlaceFinderClient | None = None,
        stages: list[Stage] | None = None,
    ):
        self._gazetteer = gazetteer
        self._config = config or default_engine_config()
        self._placefinder = placefinder
        self._stages: list[Stage] = stages if stages is not None else default_stages()
        self._last_run: EngineRun | None = None
        # One tiered geocode service per engine: cells resolved by one run
        # stay warm for the next, and a cache_dir makes them durable.
        self._geocode: GeocodeService | None = None
        if placefinder is None:
            cache_path = (
                cell_cache_path(self._config.cache_dir)
                if self._config.cache_dir
                else None
            )
            self._geocode = GeocodeService(
                PlaceFinderBackend(
                    PlaceFinderClient(
                        ReverseGeocoder(gazetteer), daily_quota=ENGINE_QUOTA
                    )
                ),
                cache_path=cache_path,
            )

    @property
    def config(self) -> EngineConfig:
        """The engine's execution configuration."""
        return self._config

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The stage sequence, in execution order."""
        return tuple(self._stages)

    @property
    def last_run(self) -> EngineRun | None:
        """The most recent run's result/context/state (``None`` before any)."""
        return self._last_run

    @property
    def geocode(self) -> GeocodeService | None:
        """The engine-owned tiered geocode service (``None`` with an
        injected client, whose serial semantics bypass the tiers)."""
        return self._geocode

    def run(
        self,
        users: UserStore,
        tweets: TweetStore,
        dataset_name: str = "dataset",
        context: RunContext | None = None,
    ) -> StudyResult:
        """Execute every stage and assemble the :class:`StudyResult`.

        Args:
            users: Crawled / streamed accounts.
            tweets: Their tweets.
            dataset_name: Label used in reports.
            context: Optionally supply the run context (e.g. one whose
                metrics registry already carries crawl accounting); a
                fresh one is created otherwise.  Either way the full
                context stays available on :attr:`last_run`.
        """
        context = context or RunContext(dataset_name=dataset_name)
        executor = ShardedExecutor(
            shards=self._config.shards,
            backend=self._config.backend,
            fault_plan=self._config.fault_plan,
        )
        state = StudyState(
            users=users,
            tweets=tweets,
            text_geocoder=TextGeocoder(self._gazetteer),
            gazetteer=self._gazetteer,
            placefinder=self._placefinder,
            geocode=self._geocode,
            executor=executor,
            min_gps_tweets=self._config.min_gps_tweets,
            tie_break=self._config.tie_break,
            columnar=self._config.columnar,
        )
        # The bounded worker pool is shared by every sharded stage of the
        # run (one fork cost, not one per stage) and reaped afterwards.
        try:
            with context.metrics.timer("engine.total.s"):
                for stage in self._stages:
                    stage.run(context, state)
        finally:
            executor.close()
        if state.statistics is None:
            raise InsufficientDataError(
                "engine stage sequence produced no statistics"
            )  # pragma: no cover - default stages always aggregate
        result = StudyResult(
            dataset_name=dataset_name,
            funnel=state.funnel,
            observations=state.observations,
            groupings=state.groupings,
            statistics=state.statistics,
            profile_districts=state.kept_profile_districts,
            api_stats=state.api_stats,
        )
        self._last_run = EngineRun(result=result, context=context, state=state)
        return result


def default_stages() -> list[Stage]:
    """The standard five-stage study pipeline, in execution order."""
    return [
        RefineStage(),
        ProfileGeocodeStage(),
        ReverseGeocodeStage(),
        GroupingStage(),
        StatisticsStage(),
    ]
