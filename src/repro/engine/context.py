"""The RunContext threaded through every engine stage.

One :class:`RunContext` accompanies one study run: it carries the run's
identity (dataset name, master seed), the shared
:class:`~repro.engine.metrics.MetricsRegistry`, and the structured
per-stage :class:`StageSpan` records (start/end, items in/out, errors)
from which a full execution trace can be emitted — see
:func:`render_trace` and the ``repro engine trace`` CLI command.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.engine.metrics import MetricsRegistry


@dataclass
class StageSpan:
    """One stage execution record.

    Attributes:
        stage: Stage name (e.g. ``"reverse_geocode"``).
        started_s: ``time.perf_counter()`` at stage entry.
        ended_s: ``time.perf_counter()`` at stage exit (0 while running).
        items_in: Items the stage consumed (stage-defined unit).
        items_out: Items the stage produced.
        errors: Errors the stage observed (including a raised exception).
    """

    stage: str
    started_s: float
    ended_s: float = 0.0
    items_in: int = 0
    items_out: int = 0
    errors: int = 0

    @property
    def duration_s(self) -> float:
        """Wall time the stage took (0.0 while still running)."""
        if self.ended_s == 0.0:
            return 0.0
        return self.ended_s - self.started_s

    def as_dict(self) -> dict[str, float | int | str]:
        """JSON-friendly view for traces."""
        return {
            "stage": self.stage,
            "duration_s": round(self.duration_s, 6),
            "items_in": self.items_in,
            "items_out": self.items_out,
            "errors": self.errors,
        }


@dataclass
class RunContext:
    """Everything a run shares across stages.

    Attributes:
        dataset_name: Label used in reports ("Korean", "Lady Gaga").
        seed: The run's master seed, when the caller knows it (dataset
            builders record it here so traces are reproducible).
        metrics: The run-wide metrics registry.
        spans: Completed (and in-flight) stage spans, in execution order.
    """

    dataset_name: str = "dataset"
    seed: int | None = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    spans: list[StageSpan] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str):
        """Open a span for stage ``name``; yields the :class:`StageSpan`.

        The stage fills ``items_in`` / ``items_out`` while running.  On
        exit the span is closed and its duration mirrored into the
        metrics timer ``stage.<name>.s``; an escaping exception is
        counted in ``errors`` before propagating.
        """
        span = StageSpan(stage=name, started_s=time.perf_counter())
        self.spans.append(span)
        try:
            yield span
        except BaseException:
            span.errors += 1
            raise
        finally:
            span.ended_s = time.perf_counter()
            self.metrics.add_time(f"stage.{name}.s", span.duration_s)

    def record_span(
        self,
        name: str,
        duration_s: float,
        *,
        items_in: int = 0,
        items_out: int = 0,
        errors: int = 0,
    ) -> StageSpan:
        """Record a span whose wall time was measured elsewhere.

        Shard workers time themselves inside their own processes; the
        parent replays those measurements here so a sharded run's trace
        carries one span per shard (``reverse_geocode.shard3``, …) next
        to the enclosing stage span.  The span is anchored to end "now"
        and its duration is mirrored into ``stage.<name>.s`` exactly like
        a :meth:`stage` block's.
        """
        end = time.perf_counter()
        span = StageSpan(
            stage=name,
            started_s=end - duration_s,
            ended_s=end,
            items_in=items_in,
            items_out=items_out,
            errors=errors,
        )
        self.spans.append(span)
        self.metrics.add_time(f"stage.{name}.s", duration_s)
        return span

    def trace(self) -> dict[str, object]:
        """The full run trace: identity, metrics snapshot, span records."""
        return {
            "dataset": self.dataset_name,
            "seed": self.seed,
            "metrics": self.metrics.snapshot(),
            "spans": [span.as_dict() for span in self.spans],
        }


def render_trace(context: RunContext) -> str:
    """Plain-text rendering of a run trace (CLI ``engine trace`` output).

    Spans aggregate by stage name in first-execution order — a batch run
    prints one row per stage exactly as before, while a streaming run
    (thousands of ``stream.batch`` spans) collapses to one row with its
    run count, total time, and summed items.  The simulated API client's
    retry behaviour and the geocode service's per-tier hit/miss counters
    get their own summary lines so transient-failure and cache-warmth
    behaviour are legible without digging through the metrics snapshot.
    """
    lines = [f"Run trace — {context.dataset_name}"
             + (f" (seed {context.seed})" if context.seed is not None else "")]
    lines.append("")
    lines.append("per-stage spans:")
    width = max(18, *(len(span.stage) for span in context.spans)) if context.spans else 18
    lines.append(
        f"  {'stage':<{width}} {'runs':>6} {'seconds':>9} {'in':>9} {'out':>9} {'errors':>7}"
    )
    aggregated: dict[str, list[float]] = {}
    for span in context.spans:
        row = aggregated.setdefault(span.stage, [0, 0.0, 0, 0, 0])
        row[0] += 1
        row[1] += span.duration_s
        row[2] += span.items_in
        row[3] += span.items_out
        row[4] += span.errors
    for stage, (runs, seconds, items_in, items_out, errors) in aggregated.items():
        lines.append(
            f"  {stage:<{width}} {runs:>6} {seconds:>9.3f} {items_in:>9} "
            f"{items_out:>9} {errors:>7}"
        )
    snapshot = context.metrics.snapshot()
    if "sharding.shards" in snapshot:
        lines.append("")
        lines.append(
            f"sharding: {int(snapshot['sharding.shards'])} shards over "
            f"{int(snapshot['sharding.max_workers'])} worker(s), "
            f"worker_retries={int(snapshot.get('sharding.worker_retries', 0))} "
            f"serial_fallbacks={int(snapshot.get('sharding.serial_fallbacks', 0))}"
        )
    retries = snapshot.get("geocode.retries")
    retry_exhausted = snapshot.get("geocode.retry_exhausted")
    if retries is not None or retry_exhausted is not None:
        lines.append("")
        lines.append(
            f"api client: retries={int(retries or 0)} "
            f"retry_exhausted={int(retry_exhausted or 0)}"
        )
    if "geocode.tiers.l1.hits" in snapshot:
        lines.append("")
        lines.append(
            "geocode tiers: "
            f"l1 {int(snapshot['geocode.tiers.l1.hits'])} hit"
            f"/{int(snapshot['geocode.tiers.l1.misses'])} miss"
            f" ({int(snapshot['geocode.tiers.l1.evictions'])} evicted), "
            f"disk {int(snapshot['geocode.tiers.disk.hits'])} hit"
            f"/{int(snapshot['geocode.tiers.disk.misses'])} miss, "
            f"backend {int(snapshot['geocode.tiers.backend.lookups'])} lookups, "
            f"cache_size={int(snapshot['geocode.tiers.cache_size'])}"
        )
    lines.append("")
    lines.append("metrics snapshot:")
    for name, value in snapshot.items():
        if isinstance(value, float):
            value = round(value, 4)
        lines.append(f"  {name} = {value}")
    return "\n".join(lines)
