"""Deterministic sharded execution of the per-user hot path.

The engine's expensive stages (reverse geocoding, per-user grouping)
operate on ordered work lists whose items are independent.  The
:class:`ShardedExecutor` partitions such a list into *contiguous* shards
— so concatenating shard outputs reproduces the serial order exactly,
which is what makes sharded runs byte-identical to serial ones — and maps
a worker over the shards through one of two backends:

* ``"serial"`` — run shards in-process, one after another (the default;
  zero overhead, used by the thin ``run_study`` wrapper);
* ``"process"`` — a bounded, *reusable* ``concurrent.futures`` process
  pool for multi-core machines.  The pool holds
  ``min(shards, os.cpu_count())`` workers — ``--shards 64`` on a 4-core
  box runs 64 shards through 4 interpreters, not 64 — and is kept alive
  across :meth:`ShardedExecutor.run_shards` calls so one study run pays
  the fork cost once, not once per stage.

Workers must be module-level callables of ``(chunk, payload)`` so the
process backend can pickle them; payloads carry shared read-only inputs
(gazetteer, tie-break policy, …), or per-shard inputs via
``shard_payloads`` (shard-local cache segment paths, …).

Failure semantics
-----------------

Two failure modes are kept deliberately distinct:

* **Worker exception** — the worker callable *raised*.  Retrying cannot
  change a deterministic error, so the raw (pickled) traceback is
  wrapped in :class:`~repro.errors.ShardExecutionError` naming the shard
  index and global item range; the CLI maps it to exit code 4.
* **Worker crash** — the worker *process* died (OOM kill, native crash,
  ``os._exit``), surfacing as ``BrokenProcessPool``.  The executor
  discards the broken pool, retries every unfinished shard once on a
  fresh pool, and if that pool breaks too it runs the remaining shards
  serially in the parent — an actionable :class:`RuntimeWarning` each
  time, never a raw traceback, and results stay byte-identical because
  shard workers are pure functions of their chunk (crash drills are
  property-tested in ``tests/engine/test_crash_recovery.py``).

:class:`WorkerFaultPlan` is the deterministic crash-injection seam those
drills use, mirroring the API-level
:class:`~repro.geocode.policy.FailurePlan` idiom.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TypeVar

from repro.errors import ConfigurationError, ShardExecutionError

T = TypeVar("T")
R = TypeVar("R")

#: The supported execution backends.
BACKENDS = ("serial", "process")


def partition(items: Sequence[T], shards: int) -> list[list[T]]:
    """Split ``items`` into ``shards`` contiguous, near-equal chunks.

    Concatenating the chunks reproduces ``items`` exactly — the property
    shard-merging relies on.  When ``shards`` exceeds the item count the
    tail chunks are empty, so shard counts are always honoured.

    Raises:
        ConfigurationError: if ``shards < 1``.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(len(items), shards)
    chunks: list[list[T]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic worker-crash injection for crash-recovery drills.

    Kills the worker *process* (``os._exit``) handling ``shard`` while the
    token file still holds a positive crash budget; each crash consumes
    one unit, so ``crashes=1`` exercises the retry-on-fresh-pool path and
    ``crashes=2`` exhausts the retry too, forcing the serial fallback.
    The parent process is never killed — serial fallback runs the same
    worker in the parent, guarded by ``parent_pid``.

    Attributes:
        shard: 0-based index of the shard whose worker dies.
        token_path: File holding the remaining crash budget (an integer).
        parent_pid: PID of the orchestrating process, exempt from crashes.
    """

    shard: int
    token_path: str
    parent_pid: int

    @classmethod
    def arm(cls, token_path: str | Path, shard: int, crashes: int) -> "WorkerFaultPlan":
        """Write the crash budget to ``token_path`` and return the plan."""
        path = Path(token_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(str(crashes), encoding="utf-8")
        return cls(shard=shard, token_path=str(path), parent_pid=os.getpid())

    def maybe_crash(self, shard_index: int) -> None:
        """Die (``os._exit``) if this shard's budget allows, else return."""
        if shard_index != self.shard or os.getpid() == self.parent_pid:
            return
        path = Path(self.token_path)
        try:
            remaining = int(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if remaining <= 0:
            return
        path.write_text(str(remaining - 1), encoding="utf-8")
        os._exit(43)


def _shard_call(
    worker: Callable[[list[T], object], R],
    chunk: list[T],
    payload: object,
    index: int,
    fault: WorkerFaultPlan | None,
) -> tuple[R, float]:
    """Run one shard, timed; the unit of work both backends execute.

    Module-level so the process backend can pickle it; the fault plan is
    consulted before the worker runs so an injected crash costs nothing.
    """
    if fault is not None:
        fault.maybe_crash(index)
    start = time.perf_counter()
    result = worker(chunk, payload)
    return result, time.perf_counter() - start


@dataclass
class ShardOutcome:
    """One shard's execution record.

    Attributes:
        index: 0-based shard index.
        items: Items in the shard's chunk.
        item_range: Half-open global ``(start, stop)`` index range.
        result: The worker's return value.
        duration_s: Worker wall time (excludes queueing and pickling).
        attempts: Executions it took — 1 for a clean run, 2 when the
            first pool broke, 3 when the retry pool broke too.
        via: How the shard ultimately ran — ``"serial"``, ``"pool"``,
            ``"retry"``, ``"serial-fallback"``, or ``"inline-empty"``
            (an empty chunk answered in the parent, never submitted).
    """

    index: int
    items: int
    item_range: tuple[int, int]
    result: object
    duration_s: float
    attempts: int
    via: str


@dataclass
class ShardRunReport:
    """Everything one :meth:`ShardedExecutor.run_shards` call observed.

    Attributes:
        shards: Configured shard count.
        backend: Backend that executed the run.
        max_workers: Pool bound the run was subject to.
        outcomes: Per-shard records, in shard order.
    """

    shards: int
    backend: str
    max_workers: int
    outcomes: list[ShardOutcome]

    @property
    def results(self) -> list[object]:
        """Worker results in shard order (the :meth:`map_shards` view)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def worker_retries(self) -> int:
        """Shards that needed a second pool attempt (or worse)."""
        return sum(1 for o in self.outcomes if o.attempts >= 2)

    @property
    def serial_fallbacks(self) -> int:
        """Shards that exhausted both pools and ran in the parent."""
        return sum(1 for o in self.outcomes if o.via == "serial-fallback")


class ShardedExecutor:
    """Maps workers over deterministic contiguous shards.

    The process backend owns a bounded pool of
    ``min(shards, os.cpu_count())`` workers (overridable via
    ``max_workers``, still capped at the shard count), created lazily on
    the first sharded call and reused until :meth:`close` — the executor
    is also a context manager.  See the module docstring for the
    crash-recovery contract.

    Args:
        shards: Number of shards to partition work into (>= 1).
        backend: ``"serial"`` or ``"process"``.
        max_workers: Optional pool-size override (>= 1); defaults to the
            machine's CPU count.  Always capped at ``shards``.
        fault_plan: Optional deterministic crash-injection plan for
            recovery drills.

    Raises:
        ConfigurationError: for an invalid shard count, backend name, or
            worker bound.
    """

    def __init__(
        self,
        shards: int = 1,
        backend: str = "serial",
        max_workers: int | None = None,
        fault_plan: WorkerFaultPlan | None = None,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._shards = shards
        self._backend = backend
        self._max_workers = min(shards, max_workers or os.cpu_count() or 1)
        self._fault_plan = fault_plan
        self._pool: ProcessPoolExecutor | None = None

    @property
    def shards(self) -> int:
        """Configured shard count."""
        return self._shards

    @property
    def backend(self) -> str:
        """Configured backend name."""
        return self._backend

    @property
    def max_workers(self) -> int:
        """Worker-process bound: ``min(shards, cpu_count)`` by default."""
        return self._max_workers

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later call re-forks)."""
        self._discard_pool(wait=True)

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def _discard_pool(self, wait: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            # A broken pool's workers are already gone; cancel whatever
            # queued work remains and reap without blocking on it.
            pool.shutdown(wait=wait, cancel_futures=True)

    # ------------------------------------------------------------------- map
    def map_shards(
        self,
        items: Sequence[T],
        worker: Callable[[list[T], object], R],
        payload: object = None,
    ) -> list[R]:
        """Run ``worker(chunk, payload)`` over every shard, in shard order.

        Returns one result per shard (empty shards included), ordered so
        that order-sensitive merges are just concatenation.  Thin wrapper
        over :meth:`run_shards` for callers that only want the results.
        """
        return self.run_shards(items, worker, payload).results  # type: ignore[return-value]

    def run_shards(
        self,
        items: Sequence[T],
        worker: Callable[[list[T], object], R],
        payload: object = None,
        *,
        shard_payloads: Sequence[object] | None = None,
    ) -> ShardRunReport:
        """Run every shard and report per-shard timings and recovery info.

        With the process backend, ``worker`` must be a module-level
        callable and chunks/payloads/results must be picklable.  Empty
        shards are answered in the parent process (workers must accept an
        empty chunk cheaply) — the pool never sees them.  ``shard_payloads``
        supplies one payload per shard (length must equal ``shards``) for
        workers that need shard-local inputs such as cache segment paths.

        Raises:
            ShardExecutionError: when a worker callable raises, naming
                the shard and its global item range (both backends).
            ConfigurationError: for a mis-sized ``shard_payloads``.
        """
        chunks = partition(items, self._shards)
        if shard_payloads is not None and len(shard_payloads) != self._shards:
            raise ConfigurationError(
                f"shard_payloads must hold one payload per shard "
                f"({self._shards}), got {len(shard_payloads)}"
            )
        payloads = (
            list(shard_payloads)
            if shard_payloads is not None
            else [payload] * self._shards
        )
        ranges: list[tuple[int, int]] = []
        start = 0
        for chunk in chunks:
            ranges.append((start, start + len(chunk)))
            start += len(chunk)

        if self._backend == "serial" or self._shards == 1:
            outcomes = [
                self._run_inline(i, chunks, ranges, worker, payloads,
                                 via="serial", attempts=1)
                for i in range(self._shards)
            ]
        else:
            outcomes = self._run_process(chunks, ranges, worker, payloads)
        return ShardRunReport(
            shards=self._shards,
            backend=self._backend,
            max_workers=self._max_workers,
            outcomes=outcomes,
        )

    # -------------------------------------------------------------- internals
    def _run_inline(
        self,
        index: int,
        chunks: list[list[T]],
        ranges: list[tuple[int, int]],
        worker: Callable[[list[T], object], R],
        payloads: list[object],
        via: str,
        attempts: int,
    ) -> ShardOutcome:
        """Execute one shard in the parent process."""
        try:
            result, duration_s = _shard_call(
                worker, chunks[index], payloads[index], index, self._fault_plan
            )
        except Exception as exc:
            raise ShardExecutionError(
                index, self._shards, ranges[index], exc
            ) from exc
        return ShardOutcome(
            index=index,
            items=len(chunks[index]),
            item_range=ranges[index],
            result=result,
            duration_s=duration_s,
            attempts=attempts,
            via=via,
        )

    def _run_process(
        self,
        chunks: list[list[T]],
        ranges: list[tuple[int, int]],
        worker: Callable[[list[T], object], R],
        payloads: list[object],
    ) -> list[ShardOutcome]:
        outcomes: list[ShardOutcome | None] = [None] * self._shards
        pending: list[int] = []
        for index, chunk in enumerate(chunks):
            if chunk:
                pending.append(index)
            else:
                # An empty shard is pure bookkeeping — answer it here
                # rather than paying a pickle round-trip for nothing.
                outcomes[index] = self._run_inline(
                    index, chunks, ranges, worker, payloads,
                    via="inline-empty", attempts=0,
                )

        failed = self._submit_round(
            pending, chunks, ranges, worker, payloads, outcomes, attempt=1
        )
        if failed:
            self._discard_pool()
            warnings.warn(
                f"{len(failed)} shard worker(s) died "
                f"(shards {', '.join(str(i) for i in failed)} of "
                f"{self._shards}); retrying once on a fresh pool",
                RuntimeWarning,
                stacklevel=3,
            )
            failed = self._submit_round(
                failed, chunks, ranges, worker, payloads, outcomes, attempt=2
            )
        if failed:
            self._discard_pool()
            warnings.warn(
                f"shard worker(s) died again on the fresh pool; running "
                f"shard(s) {', '.join(str(i) for i in failed)} serially in "
                f"the parent — check for OOM kills, ulimits, or native "
                f"crashes in worker logs",
                RuntimeWarning,
                stacklevel=3,
            )
            for index in failed:
                outcomes[index] = self._run_inline(
                    index, chunks, ranges, worker, payloads,
                    via="serial-fallback", attempts=3,
                )
        return outcomes  # type: ignore[return-value]

    def _submit_round(
        self,
        shard_ids: list[int],
        chunks: list[list[T]],
        ranges: list[tuple[int, int]],
        worker: Callable[[list[T], object], R],
        payloads: list[object],
        outcomes: list[ShardOutcome | None],
        attempt: int,
    ) -> list[int]:
        """Submit ``shard_ids`` to the pool; return the ids that crashed.

        A worker *exception* raises :class:`ShardExecutionError`
        immediately — it is deterministic, so neither the retry pool nor
        the serial fallback could answer differently.  A worker *crash*
        (``BrokenExecutor``) marks the shard failed and poisons the pool,
        so every not-yet-finished shard of the round fails with it.

        An empty round never touches the pool: a workload whose shards
        were all answered inline (every chunk empty) must not pay the
        fork cost of a worker fleet it will never use.
        """
        if not shard_ids:
            return []
        pool = self._ensure_pool()
        futures = {}
        broken: list[int] = []
        for index in shard_ids:
            try:
                futures[index] = pool.submit(
                    _shard_call, worker, chunks[index], payloads[index],
                    index, self._fault_plan,
                )
            except BrokenExecutor:
                broken.append(index)
        for index, future in futures.items():
            try:
                result, duration_s = future.result()
            except BrokenExecutor:
                broken.append(index)
            except Exception as exc:
                raise ShardExecutionError(
                    index, self._shards, ranges[index], exc
                ) from exc
            else:
                outcomes[index] = ShardOutcome(
                    index=index,
                    items=len(chunks[index]),
                    item_range=ranges[index],
                    result=result,
                    duration_s=duration_s,
                    attempts=attempt,
                    via="pool" if attempt == 1 else "retry",
                )
        return sorted(broken)
