"""Deterministic sharded execution of the per-user hot path.

The engine's expensive stages (reverse geocoding, per-user grouping)
operate on ordered work lists whose items are independent.  The
:class:`ShardedExecutor` partitions such a list into *contiguous* shards
— so concatenating shard outputs reproduces the serial order exactly,
which is what makes sharded runs byte-identical to serial ones — and maps
a worker over the shards through one of two backends:

* ``"serial"`` — run shards in-process, one after another (the default;
  zero overhead, used by the thin ``run_study`` wrapper);
* ``"process"`` — a ``concurrent.futures`` process pool, one worker per
  shard, for multi-core machines.

Workers must be module-level callables of ``(chunk, payload)`` so the
process backend can pickle them; payloads carry shared read-only inputs
(gazetteer, tie-break policy, …).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: The supported execution backends.
BACKENDS = ("serial", "process")


def partition(items: Sequence[T], shards: int) -> list[list[T]]:
    """Split ``items`` into ``shards`` contiguous, near-equal chunks.

    Concatenating the chunks reproduces ``items`` exactly — the property
    shard-merging relies on.  When ``shards`` exceeds the item count the
    tail chunks are empty, so shard counts are always honoured.

    Raises:
        ConfigurationError: if ``shards < 1``.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(len(items), shards)
    chunks: list[list[T]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


class ShardedExecutor:
    """Maps workers over deterministic contiguous shards.

    Args:
        shards: Number of shards to partition work into (>= 1).
        backend: ``"serial"`` or ``"process"``.

    Raises:
        ConfigurationError: for an invalid shard count or backend name.
    """

    def __init__(self, shards: int = 1, backend: str = "serial"):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        self._shards = shards
        self._backend = backend

    @property
    def shards(self) -> int:
        """Configured shard count."""
        return self._shards

    @property
    def backend(self) -> str:
        """Configured backend name."""
        return self._backend

    def map_shards(
        self,
        items: Sequence[T],
        worker: Callable[[list[T], object], R],
        payload: object = None,
    ) -> list[R]:
        """Run ``worker(chunk, payload)`` over every shard, in shard order.

        Returns one result per shard (empty shards included), ordered so
        that order-sensitive merges are just concatenation.  With the
        process backend, ``worker`` must be a module-level callable and
        ``chunk``/``payload``/results must be picklable.
        """
        chunks = partition(items, self._shards)
        if self._backend == "serial" or self._shards == 1:
            return [worker(chunk, payload) for chunk in chunks]
        with ProcessPoolExecutor(max_workers=self._shards) as pool:
            futures = [pool.submit(worker, chunk, payload) for chunk in chunks]
            return [future.result() for future in futures]
