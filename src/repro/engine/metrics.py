"""Unified run metrics: counters, timers, gauges, and snapshot sources.

Before the staged engine, every layer kept its own accounting island —
:class:`~repro.yahooapi.client.ClientStats` inside the PlaceFinder client,
:class:`~repro.datasets.refine.RefinementFunnel` inside the refinement,
crawl counters inside :class:`~repro.twitter.crawler.CrawlResult`.  The
:class:`MetricsRegistry` gives one place all of them report into, so a
single :meth:`MetricsRegistry.snapshot` call describes a whole study run.

Naming convention (see DESIGN.md "Execution architecture"): dotted
lower-case paths, ``<subsystem>.<metric>`` — e.g. ``geocode.requests``,
``funnel.study_users``, ``crawl.api_calls``, ``grouping.users``, and
``stage.<stage>.s`` for per-stage wall time.  Existing stats objects keep
their own classes and *re-register* here via :meth:`register_source`, so
legacy call sites keep working while engine runs see everything.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from contextlib import contextmanager

from repro.errors import ConfigurationError

#: A snapshot source: zero-argument callable returning a (possibly nested)
#: mapping of metric names to numbers; evaluated lazily at snapshot time.
SnapshotSource = Callable[[], Mapping[str, object]]


def _flatten(prefix: str, mapping: Mapping[str, object], out: dict[str, float]) -> None:
    """Flatten nested mappings into dotted keys (``funnel.profile_status_counts.vague``)."""
    for key, value in mapping.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            _flatten(name, value, out)
        else:
            out[name] = value  # type: ignore[assignment]


class MetricsRegistry:
    """Counters, gauges, accumulated timers, and pluggable snapshot sources.

    Counters and timers are additive (and merge by summation across
    shards); gauges are point-in-time values where the last write wins.
    Sources are live views onto existing stats objects — registering the
    same prefix twice replaces the previous source, so re-running an
    engine over one context never double-counts.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, float] = {}
        self._sources: dict[str, SnapshotSource] = {}

    # ---------------------------------------------------------------- record
    def counter(self, name: str, delta: float = 1) -> float:
        """Add ``delta`` to counter ``name`` and return its new value."""
        value = self._counters.get(name, 0) + delta
        self._counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into timer ``name``."""
        self._timers[name] = self._timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating the block's wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def register_source(self, prefix: str, source: SnapshotSource) -> None:
        """Attach a live stats view under ``prefix`` (e.g. ``"geocode"``).

        The callable is evaluated at every :meth:`snapshot`; nested
        mappings flatten into dotted keys.  Re-registering a prefix
        replaces the previous source.

        Raises:
            ConfigurationError: for an empty prefix.
        """
        if not prefix:
            raise ConfigurationError("metrics source prefix must be non-empty")
        self._sources[prefix] = source

    # ----------------------------------------------------------------- merge
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters/timers sum, gauges last-write.

        This is how shard-local registries collapse into the run registry;
        sources are copied over as well (same replace-on-conflict rule).
        """
        for name, value in other._counters.items():
            self.counter(name, value)
        for name, seconds in other._timers.items():
            self.add_time(name, seconds)
        self._gauges.update(other._gauges)
        self._sources.update(other._sources)

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict[str, float]:
        """One flat, sorted dict over counters, gauges, timers, and sources.

        Timer values keep their registered names (convention: a ``.s``
        suffix); source values appear under ``<prefix>.<key>``.
        """
        out: dict[str, float] = {}
        out.update(self._counters)
        out.update(self._gauges)
        out.update(self._timers)
        for prefix, source in self._sources.items():
            _flatten(prefix, source(), out)
        return dict(sorted(out.items()))
