"""Unified run metrics: counters, timers, gauges, and snapshot sources.

Before the staged engine, every layer kept its own accounting island —
:class:`~repro.yahooapi.client.ClientStats` inside the PlaceFinder client,
:class:`~repro.datasets.refine.RefinementFunnel` inside the refinement,
crawl counters inside :class:`~repro.twitter.crawler.CrawlResult`.  The
:class:`MetricsRegistry` gives one place all of them report into, so a
single :meth:`MetricsRegistry.snapshot` call describes a whole study run.

Naming convention (see DESIGN.md "Execution architecture"): dotted
lower-case paths, ``<subsystem>.<metric>`` — e.g. ``geocode.requests``,
``funnel.study_users``, ``crawl.api_calls``, ``grouping.users``, and
``stage.<stage>.s`` for per-stage wall time.  Existing stats objects keep
their own classes and *re-register* here via :meth:`register_source`, so
legacy call sites keep working while engine runs see everything.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping
from contextlib import contextmanager

from repro.errors import ConfigurationError

#: A snapshot source: zero-argument callable returning a (possibly nested)
#: mapping of metric names to numbers; evaluated lazily at snapshot time.
SnapshotSource = Callable[[], Mapping[str, object]]

#: Default observation window of a :class:`LatencyHistogram` — large
#: enough for stable tail percentiles, small enough that a long-lived
#: server never grows without bound.
DEFAULT_HISTOGRAM_WINDOW = 4096


class LatencyHistogram:
    """Bounded sliding-window histogram with percentile summaries.

    The serving layer records one of these per endpoint.  Observations
    land in a fixed-size ring buffer (the most recent ``window`` values),
    while ``count``/``sum``/``max`` track the full lifetime — so p50/p95/
    p99 describe *recent* behaviour and the totals describe the whole
    run.  All operations are thread-safe: HTTP handler threads observe
    concurrently with ``/metrics`` snapshots.

    Observations may carry an *epoch* — an opaque integer identifying the
    regime they were measured under (the serving layer passes the
    snapshot store's generation).  The window only ever holds samples
    from one epoch: the first observation of a new epoch clears it, so
    percentiles never average latencies measured against different
    snapshots across an ``/admin/reload`` swap.  Lifetime ``count`` /
    ``total`` / ``max`` still span every epoch.

    Args:
        window: Ring-buffer capacity (>= 1).

    Raises:
        ConfigurationError: for a non-positive window.
    """

    def __init__(self, window: int = DEFAULT_HISTOGRAM_WINDOW):
        if window < 1:
            raise ConfigurationError(f"histogram window must be >= 1, got {window}")
        self._window = window
        self._ring: list[float] = []
        self._next = 0
        self._epoch = 0
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    @property
    def epoch(self) -> int:
        """The epoch the current window's samples belong to (0 initially)."""
        with self._lock:
            return self._epoch

    def observe(self, value: float, epoch: int = 0) -> None:
        """Record one observation (seconds, bytes, whatever the name says).

        Args:
            value: The measurement.
            epoch: Regime tag; a value different from the window's
                current epoch resets the window before recording (the
                lifetime totals are never reset).
        """
        with self._lock:
            if epoch != self._epoch:
                self._ring.clear()
                self._next = 0
                self._epoch = epoch
            if len(self._ring) < self._window:
                self._ring.append(value)
            else:
                self._ring[self._next] = value
                self._next = (self._next + 1) % self._window
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the current window (0.0 empty).

        Nearest-rank on a sorted copy — exact, deterministic, and cheap at
        the serving layer's window sizes.
        """
        with self._lock:
            values = sorted(self._ring)
        if not values:
            return 0.0
        rank = max(0, min(len(values) - 1, int(round(q / 100.0 * (len(values) - 1)))))
        return values[rank]

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in: totals always sum; windows obey epochs.

        Same epoch: the windows concatenate (truncated to this
        histogram's capacity).  ``other`` from a newer epoch: its window
        *replaces* this one and the newer epoch is adopted.  ``other``
        from an older epoch: its window samples are dropped — mixing
        them in would reintroduce exactly the cross-swap contamination
        the epoch exists to prevent.  Shard-local histograms never set an
        epoch, so engine merges keep the plain concatenation behaviour.
        """
        with other._lock:
            other_ring = list(other._ring)
            other_epoch = other._epoch
            other_count, other_total, other_max = other.count, other.total, other.max
        with self._lock:
            self.count += other_count
            self.total += other_total
            if other_max > self.max:
                self.max = other_max
            if other_epoch < self._epoch:
                return
            if other_epoch > self._epoch:
                self._ring.clear()
                self._next = 0
                self._epoch = other_epoch
            for value in other_ring:
                if len(self._ring) < self._window:
                    self._ring.append(value)
                else:
                    self._ring[self._next] = value
                    self._next = (self._next + 1) % self._window

    def snapshot(self) -> dict[str, float]:
        """Flat summary: count, mean, max, and the p50/p95/p99 tail."""
        with self._lock:
            count, total, peak = self.count, self.total, self.max
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "max": peak,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


def _flatten(prefix: str, mapping: Mapping[str, object], out: dict[str, float]) -> None:
    """Flatten nested mappings into dotted keys (``funnel.profile_status_counts.vague``)."""
    for key, value in mapping.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            _flatten(name, value, out)
        else:
            out[name] = value  # type: ignore[assignment]


class MetricsRegistry:
    """Counters, gauges, accumulated timers, and pluggable snapshot sources.

    Counters and timers are additive (and merge by summation across
    shards); gauges are point-in-time values where the last write wins.
    Sources are live views onto existing stats objects — registering the
    same prefix twice replaces the previous source, so re-running an
    engine over one context never double-counts.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, float] = {}
        self._sources: dict[str, SnapshotSource] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- record
    def counter(self, name: str, delta: float = 1) -> float:
        """Add ``delta`` to counter ``name`` and return its new value.

        Safe under concurrent callers (the serving layer's handler
        threads share one registry); single-threaded engine runs pay one
        uncontended lock acquisition.
        """
        with self._lock:
            value = self._counters.get(name, 0) + delta
            self._counters[name] = value
            return value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins).

        Locked for the same reason counters are: the live pipeline's
        ingest thread sets gauges while ``/metrics`` handler threads
        snapshot the registry, and an unguarded dict write concurrent
        with iteration is a ``RuntimeError``.
        """
        with self._lock:
            self._gauges[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into timer ``name``."""
        with self._lock:
            self._timers[name] = self._timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating the block's wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def register_source(self, prefix: str, source: SnapshotSource) -> None:
        """Attach a live stats view under ``prefix`` (e.g. ``"geocode"``).

        The callable is evaluated at every :meth:`snapshot`; nested
        mappings flatten into dotted keys.  Re-registering a prefix
        replaces the previous source.

        Raises:
            ConfigurationError: for an empty prefix.
        """
        if not prefix:
            raise ConfigurationError("metrics source prefix must be non-empty")
        with self._lock:
            self._sources[prefix] = source

    def histogram(
        self, name: str, window: int = DEFAULT_HISTOGRAM_WINDOW
    ) -> LatencyHistogram:
        """The :class:`LatencyHistogram` registered under ``name``,
        creating it on first use.

        Snapshots surface it as ``<name>.count`` / ``.mean`` / ``.max`` /
        ``.p50`` / ``.p95`` / ``.p99``.  Repeated calls return the same
        instance (the ``window`` argument only applies on creation), so
        hot paths may cache the handle or re-ask by name.

        Raises:
            ConfigurationError: for an empty name.
        """
        if not name:
            raise ConfigurationError("histogram name must be non-empty")
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = LatencyHistogram(window)
                self._histograms[name] = histogram
            return histogram

    # ----------------------------------------------------------------- merge
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters/timers sum, gauges last-write.

        This is how shard-local registries collapse into the run registry;
        sources are copied over as well (same replace-on-conflict rule).
        """
        for name, value in other._counters.items():
            self.counter(name, value)
        for name, seconds in other._timers.items():
            self.add_time(name, seconds)
        with self._lock:
            self._gauges.update(other._gauges)
            self._sources.update(other._sources)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram._window).merge(histogram)

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict[str, float]:
        """One flat, sorted dict over counters, gauges, timers, and sources.

        Timer values keep their registered names (convention: a ``.s``
        suffix); source values appear under ``<prefix>.<key>``.
        """
        out: dict[str, float] = {}
        with self._lock:
            out.update(self._counters)
            out.update(self._gauges)
            out.update(self._timers)
            histograms = list(self._histograms.items())
            sources = list(self._sources.items())
        # Histograms and sources are evaluated outside the lock: both
        # take their own locks (or read live objects), and holding ours
        # across them would couple every gauge write to snapshot cost.
        for name, histogram in histograms:
            _flatten(name, histogram.snapshot(), out)
        for prefix, source in sources:
            _flatten(prefix, source(), out)
        return dict(sorted(out.items()))
