"""Composable study stages — the decomposed §III-B/§IV pipeline.

The seed implementation ran the whole study inside two monoliths
(``RefinementPipeline.run`` and ``run_study``).  Here the same sequence is
five independently testable, swappable :class:`Stage` units operating on a
shared :class:`StudyState` under a
:class:`~repro.engine.context.RunContext`:

1. :class:`RefineStage` — corpus-level funnel accounting;
2. :class:`ProfileGeocodeStage` — forward-geocode profile locations;
3. :class:`ReverseGeocodeStage` — the per-tweet PlaceFinder hot path,
   shardable across processes;
4. :class:`GroupingStage` — the paper's merged-string Top-k method,
   shardable per user;
5. :class:`StatisticsStage` — Figs. 6-7 aggregates.

Every stage records a span and reports into the run's metrics registry.
The staged sequence is property-tested to be result-identical to the seed
monolith (``tests/engine/test_engine.py``), including the simulated API
usage accounting, for any shard count and backend.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Protocol

from pathlib import Path

from repro.columnar.grouping import (
    concat_packed,
    group_slices_shard,
    groupings_from_packed,
    merged_rows_packed,
)
from repro.columnar.records import MatchColumns
from repro.columnar.share import ShardSlice
from repro.datasets.refine import RefinementFunnel
from repro.engine.context import RunContext
from repro.engine.sharding import ShardedExecutor, ShardRunReport, partition
from repro.errors import ConfigurationError
from repro.geo.forward import GeocodeStatus, TextGeocoder
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.region import AdminPath, District
from repro.geo.reverse import ReverseGeocoder
from repro.geocode.cellstore import Cell
from repro.geocode.service import (
    GeocodeService,
    TierStats,
    shard_segment_path,
    simulated_latency,
)
from repro.geocode.backend import PlaceFinderBackend
from repro.grouping.merge import TieBreak
from repro.grouping.stats import GroupStatistics, compute_group_statistics
from repro.grouping.topk import UserGrouping, group_users
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.twitter.models import GeotaggedObservation, Tweet, TwitterUser
from repro.yahooapi.client import ClientStats, PlaceFinderClient

#: Quota used for engine-owned PlaceFinder clients (effectively unlimited,
#: matching the seed ``run_study`` default).
ENGINE_QUOTA = 10**9


@dataclass
class StudyState:
    """Mutable state the stages read and write.

    Inputs are set up by the engine (or by :class:`RefinementPipeline`
    when it delegates here); each stage fills in its output fields.

    Attributes:
        users: Crawled / streamed accounts.
        tweets: Their tweets.
        text_geocoder: Profile-location resolver.
        gazetteer: District catalogue (required for the sharded reverse-
            geocode path, which builds shard-local resolvers from it).
        placefinder: Injected client (custom quota / failure plan).  When
            present, reverse geocoding runs serially through it — index-
            based failure injection and shared quota cannot be sharded
            without changing semantics.  ``None`` lets the stage own its
            clients and shard freely.
        geocode: The tiered :class:`~repro.geocode.service.GeocodeService`
            reverse geocoding resolves through when no client is injected.
            ``None`` makes the stage build a memory-only service; the
            engine supplies one so warm tiers persist across runs.
        executor: Shard plan for the hot-path stages.
        min_gps_tweets: Study-entry threshold (paper: 1).
        tie_break: Equal-count ordering policy for the grouping method.
        columnar: Run the grouping stage over interned columnar batches
            (integer sort + run-length counting; sharded runs ship
            mmap'd buffers instead of pickled chunks).  Byte-identical
            to the dict path — this is the transition escape hatch, not
            a semantic switch.
        funnel: Refinement attrition accounting (RefineStage onwards).
        profile_districts: Every well-defined user's district (step 2).
        kept_profile_districts: Study users' districts (steps 3-4).
        observations: Grouping-ready per-tweet rows.
        study_users: Surviving users by id.
        api_stats: Simulated PlaceFinder usage for the run.
        groupings: Per-user Top-k outcomes.
        statistics: Per-group aggregates.
    """

    users: UserStore
    tweets: TweetStore
    text_geocoder: TextGeocoder
    gazetteer: GazetteerBackend | None = None
    placefinder: PlaceFinderClient | None = None
    geocode: GeocodeService | None = None
    executor: ShardedExecutor = field(default_factory=ShardedExecutor)
    min_gps_tweets: int = 1
    tie_break: TieBreak = TieBreak.STRING_ASC
    columnar: bool = True

    funnel: RefinementFunnel = field(default_factory=RefinementFunnel)
    profile_districts: dict[int, District] = field(default_factory=dict)
    kept_profile_districts: dict[int, District] = field(default_factory=dict)
    observations: list[GeotaggedObservation] = field(default_factory=list)
    study_users: dict[int, TwitterUser] = field(default_factory=dict)
    api_stats: ClientStats = field(default_factory=ClientStats)
    groupings: dict[int, UserGrouping] = field(default_factory=dict)
    statistics: GroupStatistics | None = None


class Stage(Protocol):
    """One unit of the study pipeline.

    A stage reads its inputs from the :class:`StudyState`, writes its
    outputs back, records items in/out on its span, and reports counters
    into ``context.metrics``.  Stages are stateless: all run state lives
    on the context and state objects, so one stage instance can serve any
    number of runs.
    """

    name: str

    def run(self, context: RunContext, state: StudyState) -> None:
        """Execute the stage over ``state`` under ``context``."""
        ...


# --------------------------------------------------------------------- stages
class RefineStage:
    """Seeds the refinement funnel with corpus-level counts (step 1)."""

    name = "refine"

    def run(self, context: RunContext, state: StudyState) -> None:
        """Count crawled users and stored/GPS tweets into the funnel."""
        with context.stage(self.name) as span:
            funnel = state.funnel
            funnel.crawled_users = len(state.users)
            funnel.total_tweets = len(state.tweets)
            funnel.gps_tweets = state.tweets.gps_count()
            span.items_in = funnel.crawled_users
            span.items_out = funnel.crawled_users
            context.metrics.register_source("funnel", funnel.as_dict)


class ProfileGeocodeStage:
    """Resolves profile locations to districts (funnel step 2)."""

    name = "profile_geocode"

    def run(self, context: RunContext, state: StudyState) -> None:
        """Forward-geocode every crawled user's profile-location field."""
        with context.stage(self.name) as span:
            funnel = state.funnel
            for user in state.users:
                span.items_in += 1
                result = state.text_geocoder.geocode(user.profile_location)
                funnel.profile_status_counts[result.status.value] += 1
                if result.status is GeocodeStatus.RESOLVED and result.district is not None:
                    state.profile_districts[user.user_id] = result.district
            funnel.well_defined_users = len(state.profile_districts)
            span.items_out = funnel.well_defined_users
            context.metrics.counter("profile_geocode.resolved", span.items_out)
            context.metrics.counter(
                "profile_geocode.dropped", span.items_in - span.items_out
            )


@dataclass
class ShardGeocodeReport:
    """What one reverse-geocode shard worker sends back to the parent.

    Attributes:
        resolved: ``(cell, outcome)`` pairs in chunk order.
        tier_stats: The shard-local service's tier accounting.
        client_stats: The shard-local PlaceFinder client's accounting.
    """

    resolved: list[tuple[Cell, AdminPath | None]]
    tier_stats: TierStats
    client_stats: ClientStats


def _resolve_cells_shard(
    cells: list[Cell], payload: object
) -> ShardGeocodeReport:
    """Shard worker: resolve each cache cell at its representative point.

    Each shard owns a full *shard-local* tiered
    :class:`~repro.geocode.service.GeocodeService` — an L1 over an
    optional shard-partitioned cell-store segment file — wrapping a
    PlaceFinder client (XML round trip included, so per-lookup cost
    matches the serial path) built from the shared gazetteer.  Workers
    never touch the shared warm cache; the parent merges their segments
    and stats after they return.  Because cell outcomes are pure
    functions of the cell key, a worker retried after a crash reopens its
    segment, warm-starts from the cells it already persisted, and still
    returns byte-identical outcomes.  Module-level so the process
    backend can pickle it.
    """
    gazetteer, latency_s, quantum_deg, segment = payload  # type: ignore[misc]
    if not cells:
        return ShardGeocodeReport([], TierStats(), ClientStats())
    client = PlaceFinderClient(
        ReverseGeocoder(gazetteer), daily_quota=ENGINE_QUOTA, latency_s=latency_s
    )
    service = GeocodeService(
        PlaceFinderBackend(client), cache_path=segment, quantum_deg=quantum_deg
    )
    resolved = [(cell, service.resolve_cell(cell)) for cell in cells]
    return ShardGeocodeReport(resolved, service.stats, client.stats)


def _record_shard_run(
    context: RunContext, stage_name: str, report: ShardRunReport
) -> None:
    """Mirror a sharded run into the trace: per-shard spans + counters."""
    for outcome in report.outcomes:
        context.record_span(
            f"{stage_name}.shard{outcome.index}",
            outcome.duration_s,
            items_in=outcome.items,
            items_out=outcome.items,
        )
    context.metrics.counter("sharding.worker_retries", report.worker_retries)
    context.metrics.counter("sharding.serial_fallbacks", report.serial_fallbacks)
    context.metrics.gauge("sharding.shards", report.shards)
    context.metrics.gauge("sharding.max_workers", report.max_workers)


class ReverseGeocodeStage:
    """The per-tweet PlaceFinder hot path (funnel steps 3-4), shardable.

    With an injected client the stage runs the seed's serial loop
    through it — quota exhaustion and index-based failure injection keep
    their exact semantics.  Otherwise the stage resolves through the
    tiered :class:`~repro.geocode.service.GeocodeService`: GPS points
    dedupe into 0.001° cells, cached cells are answered by the tiers
    (including the persistent store — a warm second run issues **zero**
    backend lookups), and only the misses are resolved — across the
    shard plan, each at its cell's canonical representative point.

    Because every cell outcome is a pure function of the cell key, the
    canonical :class:`ClientStats` a single shared serial client would
    have reported is reconstructed *arithmetically* — requests = distinct
    cells, cache hits = lookups minus distinct cells, no-results = cells
    resolving nowhere — instead of by the serial per-tweet replay earlier
    revisions needed.  Byte-identical for any shard count, backend, and
    cache warmth.
    """

    name = "reverse_geocode"

    #: Mirrors ``PlaceFinderClient`` defaults for engine-owned clients.
    latency_s = 0.05
    cache_quantum_deg = 0.001

    def run(self, context: RunContext, state: StudyState) -> None:
        """Reverse-geocode every study candidate's GPS tweets."""
        with context.stage(self.name) as span:
            candidates = self._candidates(state)
            span.items_in = sum(len(gps) for _, _, gps in candidates)
            if state.placefinder is not None:
                stats = self._run_injected(state, candidates)
                context.metrics.register_source(
                    "geocode.client",
                    lambda: {"cache_size": state.placefinder.cache_size},
                )
            else:
                stats = self._run_service(context, state, candidates)
                assert state.geocode is not None
                context.metrics.register_source(
                    "geocode.tiers", state.geocode.stats_source
                )
            state.api_stats = stats
            state.funnel.resolved_observations = len(state.observations)
            state.funnel.study_users = len(state.study_users)
            span.items_out = len(state.observations)
            context.metrics.register_source("geocode", stats.snapshot)

    # ------------------------------------------------------------ candidates
    def _candidates(
        self, state: StudyState
    ) -> list[tuple[int, District, list[Tweet]]]:
        """Users surviving the GPS-availability step, with their GPS tweets."""
        candidates = []
        for user_id, district in state.profile_districts.items():
            gps_tweets = [t for t in state.tweets.by_user(user_id) if t.has_gps]
            if len(gps_tweets) < state.min_gps_tweets:
                continue
            state.funnel.users_with_gps += 1
            candidates.append((user_id, district, gps_tweets))
        return candidates

    # -------------------------------------------------------- injected client
    def _run_injected(
        self,
        state: StudyState,
        candidates: list[tuple[int, District, list[Tweet]]],
    ) -> ClientStats:
        """The seed's serial per-tweet loop through the injected client."""
        placefinder = state.placefinder
        assert placefinder is not None
        for user_id, district, gps_tweets in candidates:
            user_rows = []
            for tweet in gps_tweets:
                assert tweet.coordinates is not None
                path = placefinder.resolve_admin_path(tweet.coordinates)
                if path is None:
                    state.funnel.unresolvable_gps_tweets += 1
                    continue
                user_rows.append(self._observation(user_id, district, tweet, path))
            self._keep(state, user_id, district, user_rows)
        return placefinder.stats

    # --------------------------------------------------------- tiered service
    def _run_service(
        self,
        context: RunContext,
        state: StudyState,
        candidates: list[tuple[int, District, list[Tweet]]],
    ) -> ClientStats:
        """Resolve distinct cells through the tiers; derive canonical stats."""
        service = self._service(state)
        # Dedupe GPS points into cells and split them by tier residency.
        lookups = 0
        seen: set[Cell] = set()
        outcomes: dict[Cell, AdminPath | None] = {}
        misses: list[Cell] = []
        for _, _, gps_tweets in candidates:
            for tweet in gps_tweets:
                assert tweet.coordinates is not None
                lookups += 1
                cell = service.cell_of(tweet.coordinates)
                if cell in seen:
                    continue
                seen.add(cell)
                hit, outcome = service.lookup_cached(cell)
                if hit:
                    outcomes[cell] = outcome
                else:
                    misses.append(cell)
        self._resolve_misses(context, state, service, misses, outcomes)

        # Canonical accounting, arithmetically: cell outcomes are pure
        # functions of the cell key, so a single shared serial client
        # would have issued one request per distinct cell (first point to
        # hit it) and served every other point from cache — no matter the
        # order.  Latency accumulates by repeated addition to reproduce
        # the serial client's float bit for bit.
        stats = ClientStats()
        stats.requests = len(seen)
        stats.cache_hits = lookups - len(seen)
        stats.no_result = sum(
            1 for outcome in outcomes.values() if outcome is None
        )
        stats.simulated_latency_s = simulated_latency(len(seen), self.latency_s)

        for user_id, district, gps_tweets in candidates:
            user_rows = []
            for tweet in gps_tweets:
                assert tweet.coordinates is not None
                path = outcomes[service.cell_of(tweet.coordinates)]
                if path is None:
                    state.funnel.unresolvable_gps_tweets += 1
                    continue
                user_rows.append(self._observation(user_id, district, tweet, path))
            self._keep(state, user_id, district, user_rows)
        return stats

    def _service(self, state: StudyState) -> GeocodeService:
        """The state's geocode service, building a memory-only default."""
        if state.geocode is None:
            if state.gazetteer is None:
                raise ConfigurationError(
                    "reverse geocoding requires a gazetteer or a geocode "
                    "service on the state"
                )
            state.geocode = GeocodeService(
                PlaceFinderBackend(
                    PlaceFinderClient(
                        ReverseGeocoder(state.gazetteer),
                        daily_quota=ENGINE_QUOTA,
                        latency_s=self.latency_s,
                    )
                )
            )
        return state.geocode

    def _resolve_misses(
        self,
        context: RunContext,
        state: StudyState,
        service: GeocodeService,
        misses: list[Cell],
        outcomes: dict[Cell, AdminPath | None],
    ) -> None:
        """Resolve uncached cells at their representatives, sharding when
        the executor has more than one shard.

        Sharded runs follow the shard-local-then-merge cellstore
        protocol: each worker resolves its chunk through its own tiered
        service over a shard-partitioned segment file (single writer per
        journal — no concurrent appends to the shared warm cache), and
        the parent merges outcomes append-only into the shared store and
        folds worker :class:`TierStats`/:class:`ClientStats` into the
        run's fleet totals, in shard order, deterministically.
        """
        if not misses:
            return
        if state.executor.shards > 1:
            if state.gazetteer is None:
                raise ConfigurationError(
                    "sharded reverse geocoding requires a gazetteer on the state"
                )
            shards = state.executor.shards
            segments = [
                shard_segment_path(service.cache_path, index)
                if service.cache_path is not None
                else None
                for index in range(shards)
            ]
            report = state.executor.run_shards(
                misses,
                _resolve_cells_shard,
                shard_payloads=[
                    (state.gazetteer, self.latency_s, service.quantum_deg, segment)
                    for segment in segments
                ],
            )
            fleet_clients = ClientStats()
            for outcome in report.outcomes:
                shard_report = outcome.result
                assert isinstance(shard_report, ShardGeocodeReport)
                service.stats.merge(shard_report.tier_stats)
                fleet_clients.merge(shard_report.client_stats)
                for cell, path in shard_report.resolved:
                    service.store(cell, path)
                    outcomes[cell] = path
            for segment in segments:
                if segment is not None:
                    Path(segment).unlink(missing_ok=True)
            context.metrics.register_source(
                "geocode.workers", fleet_clients.snapshot
            )
            _record_shard_run(context, self.name, report)
        else:
            for cell in misses:
                outcomes[cell] = service.resolve_uncached(cell)

    # -------------------------------------------------------------- internals
    @staticmethod
    def _observation(
        user_id: int, district: District, tweet: Tweet, path: AdminPath
    ) -> GeotaggedObservation:
        return GeotaggedObservation(
            user_id=user_id,
            profile_state=district.state,
            profile_county=district.name,
            tweet_state=path.state,
            tweet_county=path.county,
            timestamp_ms=tweet.created_at_ms,
        )

    @staticmethod
    def _keep(
        state: StudyState,
        user_id: int,
        district: District,
        user_rows: list[GeotaggedObservation],
    ) -> None:
        if not user_rows:
            return
        state.observations.extend(user_rows)
        state.study_users[user_id] = state.users.get(user_id)
        state.kept_profile_districts[user_id] = district


def _group_users_shard(
    user_chunks: list[list[GeotaggedObservation]], payload: object
) -> dict[int, UserGrouping]:
    """Shard worker: run the batch grouping method over one chunk of users.

    ``user_chunks`` holds each user's observation rows; users are
    independent under the method, so a chunk classifies exactly as it
    would inside the full serial run.
    """
    (tie_break,) = payload  # type: ignore[misc]
    flat = [obs for rows in user_chunks for obs in rows]
    return group_users(flat, tie_break=tie_break)


class GroupingStage:
    """The paper's merged-string Top-k method, sharded per user.

    Users are independent under the grouping method, so observations are
    partitioned into contiguous per-user chunks (first-encounter user
    order, matching the serial dict order) and classified shard-by-shard;
    merging is dict concatenation in shard order.

    With ``state.columnar`` (the default) the stage instead packs the
    observations into interned int64 columns and groups by integer sort
    + run-length counting; sharded runs write the columns to one temp
    buffer file that workers ``mmap`` and answer with packed result
    columns — no pickled object shards either way.  Both paths are
    property-tested byte-identical (``tests/engine/test_columnar_engine``).
    """

    name = "grouping"

    def run(self, context: RunContext, state: StudyState) -> None:
        """Classify every study user into their Top-k group."""
        with context.stage(self.name) as span:
            span.items_in = len(state.observations)
            if state.columnar:
                groupings = self._run_columnar(context, state)
            else:
                groupings = self._run_dicts(context, state)
            state.groupings = groupings
            span.items_out = len(groupings)
            context.metrics.counter("grouping.users", len(groupings))
            context.metrics.counter("grouping.observations", len(state.observations))
            for grouping in groupings.values():
                context.metrics.counter(f"grouping.group.{grouping.group.value}")

    # -------------------------------------------------------------- dict path
    def _run_dicts(
        self, context: RunContext, state: StudyState
    ) -> dict[int, UserGrouping]:
        """The pre-columnar path: pickled per-user chunks of objects."""
        per_user: dict[int, list[GeotaggedObservation]] = {}
        for observation in state.observations:
            per_user.setdefault(observation.user_id, []).append(observation)
        report = state.executor.run_shards(
            list(per_user.values()),
            _group_users_shard,
            payload=(state.tie_break,),
        )
        if state.executor.shards > 1:
            _record_shard_run(context, self.name, report)
        groupings: dict[int, UserGrouping] = {}
        for shard_result in report.results:
            groupings.update(shard_result)
        return groupings

    # ---------------------------------------------------------- columnar path
    def _run_columnar(
        self, context: RunContext, state: StudyState
    ) -> dict[int, UserGrouping]:
        """Pack, (optionally) shard over an mmap'd buffer, merge, classify."""
        columns = MatchColumns.from_observations(state.observations)
        executor = state.executor
        if executor.shards > 1 and len(columns):
            try:
                user_slices = columns.user_slices()
            except ConfigurationError:
                # A hand-assembled state with interleaved users cannot be
                # row-range sharded; the in-memory merge handles any order.
                user_slices = None
            if user_slices is not None:
                packed = self._merge_sharded(context, state, columns, user_slices)
                return groupings_from_packed(
                    packed, columns.interner.lookup, state.tie_break
                )
        packed = merged_rows_packed(columns)
        return groupings_from_packed(
            packed, columns.interner.lookup, state.tie_break
        )

    def _merge_sharded(
        self,
        context: RunContext,
        state: StudyState,
        columns: MatchColumns,
        user_slices: list[tuple[int, int, int]],
    ):
        """Run the merge across shards against one shared buffer file.

        Users are partitioned exactly as the dict path partitions them
        (contiguous near-equal chunks in first-encounter order), but a
        shard's work order is a single :class:`ShardSlice` row range and
        its result is packed fixed-width columns — the parent merges by
        array concatenation, in shard order.
        """
        chunks = partition(user_slices, state.executor.shards)
        slices: list[ShardSlice] = []
        position = len(columns)
        for chunk in reversed(chunks):
            if chunk:
                position = chunk[0][1]
                slices.append(ShardSlice(position, chunk[-1][2]))
            else:
                slices.append(ShardSlice(position, position))
        slices.reverse()
        with tempfile.TemporaryDirectory(prefix="repro-columnar-") as tmp:
            buffer_path = str(Path(tmp) / "grouping.buf")
            columns.write(buffer_path)
            report = state.executor.run_shards(
                slices, group_slices_shard, payload=(buffer_path,)
            )
            _record_shard_run(context, self.name, report)
        return concat_packed(list(report.results))


class StatisticsStage:
    """Aggregates groupings into the Figs. 6-7 statistics table."""

    name = "statistics"

    def run(self, context: RunContext, state: StudyState) -> None:
        """Compute per-group statistics over the run's groupings."""
        with context.stage(self.name) as span:
            span.items_in = len(state.groupings)
            state.statistics = compute_group_statistics(state.groupings.values())
            span.items_out = len(state.statistics.rows)
            context.metrics.gauge("stats.total_users", state.statistics.total_users)
            context.metrics.gauge("stats.total_tweets", state.statistics.total_tweets)
            context.metrics.gauge(
                "stats.overall_avg_tweet_locations",
                state.statistics.overall_avg_tweet_locations,
            )
