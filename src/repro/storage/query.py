"""Composable query predicates for the tweet store.

A tiny conjunctive query model: each :class:`TweetQuery` is a bundle of
optional constraints; the store picks the most selective available index
and filters the remainder.  This mirrors the shape of the ad-hoc queries
the study runs — "all GPS-tagged tweets of user X", "tweets in this time
window containing 'earthquake'", "tweets inside this bounding box".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geo.region import BoundingBox
from repro.twitter.models import Tweet


@dataclass(frozen=True, slots=True)
class TimeRange:
    """A half-open time interval ``[start_ms, end_ms)``."""

    start_ms: int
    end_ms: int

    def __post_init__(self) -> None:
        if self.start_ms > self.end_ms:
            raise ConfigurationError(
                f"time range start {self.start_ms} after end {self.end_ms}"
            )

    def contains(self, timestamp_ms: int) -> bool:
        """True if the timestamp falls inside the interval."""
        return self.start_ms <= timestamp_ms < self.end_ms

    @property
    def span_ms(self) -> int:
        """Interval length in milliseconds."""
        return self.end_ms - self.start_ms


@dataclass(frozen=True, slots=True)
class TweetQuery:
    """A conjunctive tweet query.

    Attributes:
        user_id: Restrict to one author.
        time_range: Restrict to a posting-time interval.
        has_gps: Require (True) or forbid (False) GPS coordinates.
        keyword: Case-insensitive substring of the text.
        bbox: Coordinates inside this box (implies ``has_gps=True``).
    """

    user_id: int | None = None
    time_range: TimeRange | None = None
    has_gps: bool | None = None
    keyword: str | None = None
    bbox: BoundingBox | None = None

    def matches(self, tweet: Tweet) -> bool:
        """Evaluate all constraints against one tweet."""
        if self.user_id is not None and tweet.user_id != self.user_id:
            return False
        if self.time_range is not None and not self.time_range.contains(
            tweet.created_at_ms
        ):
            return False
        if self.has_gps is not None and tweet.has_gps != self.has_gps:
            return False
        if self.bbox is not None:
            if tweet.coordinates is None or not self.bbox.contains(tweet.coordinates):
                return False
        if self.keyword is not None and self.keyword.lower() not in tweet.text.lower():
            return False
        return True

    @property
    def is_unconstrained(self) -> bool:
        """True when the query matches everything (full scan)."""
        return (
            self.user_id is None
            and self.time_range is None
            and self.has_gps is None
            and self.keyword is None
            and self.bbox is None
        )
