"""Storage substrate: tweet and user stores with JSONL persistence.

Public surface of :mod:`repro.storage`:

* :class:`TweetStore` — indexed tweet corpus (user/time/GPS indexes)
* :class:`UserStore` — account catalogue
* :class:`TweetQuery` / :class:`TimeRange` — conjunctive query model
"""

from repro.storage.query import TimeRange, TweetQuery
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore

__all__ = ["TimeRange", "TweetQuery", "TweetStore", "UserStore"]
