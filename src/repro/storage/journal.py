"""Shared append-only JSONL journal helpers.

Every durable log in the system — the tweet store, the streaming
write-ahead log, the checkpoint log, the geocode cell store — follows the
same crash contract: one JSON document per line, append-only, batches
written with a single buffered write + flush so a crash can tear at most
the *final* line.  On load a torn final line (no trailing newline, or
unparseable content on the last line) is dropped silently; corruption
anywhere else raises :class:`~repro.errors.StorageError`.

This module is the one implementation of that contract.  Readers pass a
``decode`` callable that turns one line into a record; writers pass
already-serialisable dicts.

The contract assumes a **single writer per journal file**: concurrent
appenders from different processes could interleave partial lines, which
the torn-tail rule cannot repair (it only forgives the *final* line).
Parallel producers must therefore write to private files and let one
owner merge them — the sharded engine's geocode workers each journal to
their own ``geocells.shard-<k>.jsonl`` segment and the parent process
folds the segments into the shared cache afterwards (DESIGN.md §11).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Mapping
from pathlib import Path
from typing import TypeVar

from repro.errors import StorageError

T = TypeVar("T")

#: Exceptions a ``decode`` callable may raise for a malformed line.  A
#: non-final line raising one of these is corruption (fatal); the final
#: line raising one is a torn tail (dropped).
DECODE_ERRORS = (json.JSONDecodeError, KeyError, ValueError, StorageError)


def read_journal(
    path: str | Path,
    decode: Callable[[str], T],
    *,
    description: str = "record",
) -> list[T]:
    """Decode every complete line of ``path``, dropping a torn final line.

    A missing file is an empty journal, not an error — every consumer of
    this contract treats "never written" and "empty" identically.

    Args:
        path: The JSONL journal file.
        decode: Turns one line into a record; may raise any of
            :data:`DECODE_ERRORS` for malformed input.
        description: Noun used in corruption error messages
            (``"record"``, ``"checkpoint"``, …).

    Raises:
        StorageError: if a non-final line is corrupt.
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = path.read_text(encoding="utf-8").split("\n")
    # A well-formed journal ends with "\n", so the final split element is "".
    torn_tail = bool(lines) and lines[-1] != ""
    records: list[T] = []
    for index, line in enumerate(lines[:-1]):
        try:
            records.append(decode(line))
        except DECODE_ERRORS as exc:
            raise StorageError(
                f"{path}:{index + 1}: corrupt {description}: {exc}"
            ) from exc
    if torn_tail:
        try:
            records.append(decode(lines[-1]))
        except DECODE_ERRORS:
            pass  # torn final record: expected crash artefact
    return records


def append_journal(path: str | Path, records: Iterable[Mapping[str, object]]) -> int:
    """Append ``records`` as JSONL with one buffered write + flush.

    The whole batch is serialised to a single string before any byte
    reaches disk, so a crash mid-append tears at most the final line —
    exactly what :func:`read_journal` recovers from.  Returns the number
    of records appended.
    """
    batch = list(records)
    payload = "".join(
        json.dumps(record, ensure_ascii=False) + "\n" for record in batch
    )
    path = Path(path)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
    return len(batch)
