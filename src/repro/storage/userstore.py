"""User store: the account catalogue with profile-based lookups.

Holds the crawled accounts and answers the refinement phase's questions:
iterate everyone, look up by id or screen name, and (after the forward
geocoder has classified profiles) partition by profile quality.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import DuplicateKeyError, NotFoundError, StorageError
from repro.twitter.models import TwitterUser


class UserStore:
    """In-memory user catalogue with JSONL persistence."""

    def __init__(self) -> None:
        self._by_id: dict[int, TwitterUser] = {}
        self._by_screen_name: dict[str, int] = {}

    # ----------------------------------------------------------------- write
    def insert(self, user: TwitterUser) -> None:
        """Insert one account.

        Raises:
            DuplicateKeyError: on a duplicate user id or screen name.
        """
        if user.user_id in self._by_id:
            raise DuplicateKeyError(f"user {user.user_id} already stored")
        lowered = user.screen_name.lower()
        if lowered in self._by_screen_name:
            raise DuplicateKeyError(f"screen name {user.screen_name!r} already stored")
        self._by_id[user.user_id] = user
        self._by_screen_name[lowered] = user.user_id

    def insert_many(self, users: Iterable[TwitterUser]) -> int:
        """Insert accounts, skipping duplicates; returns the inserted count."""
        inserted = 0
        for user in users:
            try:
                self.insert(user)
            except DuplicateKeyError:
                continue
            inserted += 1
        return inserted

    def upsert(self, user: TwitterUser) -> None:
        """Insert or replace by user id (screen-name index kept consistent)."""
        existing = self._by_id.get(user.user_id)
        if existing is not None:
            self._by_screen_name.pop(existing.screen_name.lower(), None)
            self._by_id.pop(user.user_id)
        self.insert(user)

    # ------------------------------------------------------------------ read
    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[TwitterUser]:
        """Iterate accounts in user-id order."""
        for user_id in sorted(self._by_id):
            yield self._by_id[user_id]

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._by_id

    def get(self, user_id: int) -> TwitterUser:
        """Primary-key lookup.

        Raises:
            NotFoundError: if the id is unknown.
        """
        try:
            return self._by_id[user_id]
        except KeyError:
            raise NotFoundError(f"user {user_id} not stored") from None

    def by_screen_name(self, screen_name: str) -> TwitterUser:
        """Case-insensitive screen-name lookup.

        Raises:
            NotFoundError: if the handle is unknown.
        """
        user_id = self._by_screen_name.get(screen_name.lower())
        if user_id is None:
            raise NotFoundError(f"screen name {screen_name!r} not stored")
        return self._by_id[user_id]

    def with_profile_location(self) -> list[TwitterUser]:
        """Accounts whose profile-location field is non-empty."""
        return [u for u in self if u.profile_location.strip()]

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> int:
        """Write all accounts as JSONL; returns the line count."""
        path = Path(path)
        count = 0
        with path.open("w", encoding="utf-8") as handle:
            for user in self:
                handle.write(json.dumps(user.to_dict(), ensure_ascii=False))
                handle.write("\n")
                count += 1
        return count

    @classmethod
    def load(cls, path: str | Path) -> "UserStore":
        """Rebuild a store from a JSONL file.

        Raises:
            StorageError: on any corrupt record.
        """
        path = Path(path)
        store = cls()
        with path.open("r", encoding="utf-8") as handle:
            for index, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    store.insert(TwitterUser.from_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    raise StorageError(
                        f"{path}:{index + 1}: corrupt record: {exc}"
                    ) from exc
        return store
