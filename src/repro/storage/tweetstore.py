"""Tweet store: append-only log persistence with in-memory indexes.

The study's collection phase gathered millions of tweets; everything
downstream (refinement, grouping, event detection) queries them by user,
time, GPS presence, or keyword.  The store keeps tweets in insertion
order, maintains secondary indexes, and can persist to / recover from an
append-only JSONL log — one JSON document per line, so a partially
written final line (a crash mid-append) is detected and ignored on load.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right, insort
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import DuplicateKeyError, NotFoundError
from repro.storage.journal import append_journal, read_journal
from repro.storage.query import TweetQuery
from repro.twitter.models import Tweet


class TweetStore:
    """In-memory tweet store with optional JSONL persistence.

    Indexes maintained on insert:

    * primary — tweet id -> tweet
    * by user — user id -> tweet ids in time order
    * by time — global ``(created_at_ms, tweet_id)`` ordering
    * gps — the subset of ids carrying coordinates
    """

    def __init__(self) -> None:
        self._by_id: dict[int, Tweet] = {}
        self._by_user: dict[int, list[int]] = {}
        self._time_index: list[tuple[int, int]] = []  # (created_at_ms, tweet_id)
        self._gps_ids: set[int] = set()

    # ----------------------------------------------------------------- write
    def insert(self, tweet: Tweet) -> None:
        """Insert one tweet.

        Raises:
            DuplicateKeyError: if the tweet id is already present.
        """
        if tweet.tweet_id in self._by_id:
            raise DuplicateKeyError(f"tweet {tweet.tweet_id} already stored")
        self._by_id[tweet.tweet_id] = tweet
        self._by_user.setdefault(tweet.user_id, [])
        insort(self._by_user[tweet.user_id], tweet.tweet_id)
        insort(self._time_index, (tweet.created_at_ms, tweet.tweet_id))
        if tweet.has_gps:
            self._gps_ids.add(tweet.tweet_id)

    def insert_many(self, tweets: Iterable[Tweet]) -> int:
        """Insert tweets, skipping duplicates; returns the inserted count."""
        inserted = 0
        for tweet in tweets:
            try:
                self.insert(tweet)
            except DuplicateKeyError:
                continue
            inserted += 1
        return inserted

    # ------------------------------------------------------------------ read
    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Tweet]:
        """Iterate all tweets in time order."""
        for _, tweet_id in self._time_index:
            yield self._by_id[tweet_id]

    def get(self, tweet_id: int) -> Tweet:
        """Primary-key lookup.

        Raises:
            NotFoundError: if the id is unknown.
        """
        try:
            return self._by_id[tweet_id]
        except KeyError:
            raise NotFoundError(f"tweet {tweet_id} not stored") from None

    def user_ids(self) -> list[int]:
        """Distinct author ids, sorted."""
        return sorted(self._by_user)

    def by_user(self, user_id: int) -> list[Tweet]:
        """A user's tweets in time order (empty list if none)."""
        return [self._by_id[tid] for tid in self._by_user.get(user_id, [])]

    def gps_count(self) -> int:
        """Number of GPS-tagged tweets."""
        return len(self._gps_ids)

    def gps_tweets(self) -> list[Tweet]:
        """All GPS-tagged tweets in id order."""
        return [self._by_id[tid] for tid in sorted(self._gps_ids)]

    def query(self, query: TweetQuery) -> list[Tweet]:
        """Evaluate a conjunctive query.

        Index selection: a ``user_id`` constraint scans only that user's
        timeline; otherwise a ``time_range`` binary-searches the global
        time index; a bare ``has_gps=True`` (or bbox) uses the GPS subset;
        anything else is a full scan.  Results come back in time order.
        """
        candidates = self._candidates(query)
        return [t for t in candidates if query.matches(t)]

    def _candidates(self, query: TweetQuery) -> list[Tweet]:
        if query.user_id is not None:
            return self.by_user(query.user_id)
        if query.time_range is not None:
            lo = bisect_left(self._time_index, (query.time_range.start_ms, -1))
            hi = bisect_right(self._time_index, (query.time_range.end_ms, -1))
            return [self._by_id[tid] for _, tid in self._time_index[lo:hi]]
        if query.has_gps is True or query.bbox is not None:
            return self.gps_tweets()
        return list(self)

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> int:
        """Write all tweets as JSONL (time order); returns the line count."""
        path = Path(path)
        count = 0
        with path.open("w", encoding="utf-8") as handle:
            for tweet in self:
                handle.write(json.dumps(tweet.to_dict(), ensure_ascii=False))
                handle.write("\n")
                count += 1
        return count

    def append_many(self, path: str | Path, tweets: Iterable[Tweet]) -> int:
        """Insert a batch and journal it with one buffered write + flush.

        The streaming write-ahead path: the whole batch is serialised to a
        single string and written (then flushed) in one call, so a crash
        mid-append can tear at most the *final* line of the log — which
        :meth:`load` already drops — instead of leaving a partially
        written line in the middle of the batch.  All tweets are inserted
        into the in-memory indexes before any byte reaches disk, so a
        duplicate id raises with the log untouched.

        Returns the number of records appended.

        Raises:
            DuplicateKeyError: if a tweet id is already present (nothing
                is written to the log in that case).
        """
        batch = list(tweets)
        for tweet in batch:
            self.insert(tweet)
        return append_journal(path, (tweet.to_dict() for tweet in batch))

    def append_log(self, path: str | Path, tweets: Iterable[Tweet]) -> int:
        """Append tweets to an existing JSONL log (crash-tolerant format)."""
        path = Path(path)
        count = 0
        with path.open("a", encoding="utf-8") as handle:
            for tweet in tweets:
                handle.write(json.dumps(tweet.to_dict(), ensure_ascii=False))
                handle.write("\n")
                count += 1
        return count

    @classmethod
    def load(cls, path: str | Path) -> "TweetStore":
        """Rebuild a store from a JSONL log.

        A torn final line (no trailing newline, or unparseable JSON on the
        last line) is dropped silently — the crash-recovery contract of an
        append-only log (the shared journal contract,
        :func:`repro.storage.journal.read_journal`).  Corruption anywhere
        else raises.

        Raises:
            StorageError: if a non-final line is corrupt.
        """
        store = cls()
        for tweet in read_journal(
            path, lambda line: Tweet.from_dict(json.loads(line)), description="record"
        ):
            store.insert(tweet)
        return store
