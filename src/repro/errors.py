"""Exception hierarchy shared across the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeoError(ReproError):
    """Base class for errors in the :mod:`repro.geo` subsystem."""


class InvalidCoordinateError(GeoError):
    """A latitude/longitude pair is outside the valid WGS-84 range."""


class UnknownRegionError(GeoError):
    """A gazetteer lookup referenced a region that does not exist."""


class GeocodingError(GeoError):
    """Forward or reverse geocoding could not resolve a location."""


class ApiError(ReproError):
    """Base class for simulated remote-API failures."""


class RateLimitExceededError(ApiError):
    """A simulated API rejected a request because the quota was exhausted."""

    def __init__(self, retry_after_s: float, message: str = "rate limit exceeded"):
        super().__init__(f"{message} (retry after {retry_after_s:.1f}s)")
        self.retry_after_s = retry_after_s


class ServiceUnavailableError(ApiError):
    """A simulated API returned a transient 5xx-style failure."""


class MalformedResponseError(ApiError):
    """A simulated API response could not be parsed."""


class StorageError(ReproError):
    """Base class for errors in the :mod:`repro.storage` subsystem."""


class DuplicateKeyError(StorageError):
    """An insert collided with an existing primary key."""


class NotFoundError(StorageError):
    """A lookup referenced a record that is not in the store."""


class AnalysisError(ReproError):
    """Base class for errors in the grouping/analysis subsystems."""


class InsufficientDataError(AnalysisError):
    """An analysis step received too little data to produce a result."""


class ConfigurationError(ReproError):
    """A configuration object failed validation."""


class FleetError(ReproError):
    """Base class for errors in the :mod:`repro.fleet` subsystem."""


class ReplicaUnreachableError(FleetError):
    """A replica could not be reached over its admin/data socket.

    Connection-level only: refused, reset, or timed out.  A replica that
    *answers* with an error status is reachable and is reported through
    the status code instead.
    """


class ReplicaBootError(FleetError):
    """A subprocess replica failed to start or report a bound port."""


class RolloutInProgressError(FleetError):
    """A publish was requested while another rollout is still running."""


class ShardExecutionError(ReproError):
    """A shard worker raised an application exception.

    Raised by :class:`~repro.engine.sharding.ShardedExecutor` in place of
    the raw (possibly pickled-across-processes) traceback a
    ``future.result()`` call surfaces, so operators see *which* shard over
    *which* item range failed.  Distinct from a crashed worker process —
    a dead process is an infrastructure failure the executor retries and
    falls back from; this error means the worker code itself raised, which
    a retry cannot fix.  The CLI maps it to exit code 4.

    Attributes:
        shard_index: 0-based index of the failing shard.
        shards: Total shard count of the run.
        item_range: Half-open ``(start, stop)`` range of global item
            indexes the shard was processing.
    """

    def __init__(self, shard_index: int, shards: int, item_range: tuple[int, int],
                 cause: BaseException):
        self.shard_index = shard_index
        self.shards = shards
        self.item_range = item_range
        super().__init__(
            f"shard {shard_index + 1}/{shards} failed on items "
            f"[{item_range[0]}:{item_range[1]}): "
            f"{type(cause).__name__}: {cause}"
        )
