"""Asyncio serving front door: the event-loop twin of :class:`StudyServer`.

The threaded server (:class:`~repro.serving.http.StudyServer`) spends a
kernel thread per connection to serve what is almost always a dictionary
read off an immutable snapshot.  :class:`AsyncStudyServer` serves the
same :meth:`~repro.serving.http.ServingApp.dispatch` core from a single
event loop: one task per connection, hand-rolled minimal HTTP/1.1
parsing, keep-alive by default, and request pipelining for free (the
stream reader buffers whatever the client sent ahead; the loop just
keeps parsing).

**What runs where.**  Every endpoint except a *cold* ``/reverse`` cell
is non-blocking — a pure read of the snapshot the request grabbed — so
it dispatches directly on the event loop; the per-request overhead is
parsing, not context switching.  A cold ``/reverse`` blocks on the
geocode backend (milliseconds, not microseconds), so those requests are
routed through a small thread-pool executor, identified up front by
:meth:`ServingApp.dispatch_blocks` (a read-only cache probe).  The
executor threads re-enter the same
:class:`~repro.serving.batcher.SingleFlight`-coordinated service the
threaded server uses, so concurrent duplicate misses still cost one
backend call per distinct cell.

**Identical semantics by construction.**  Admission, snapshot grab,
handlers, canonical JSON encoding, latency recording, hot reload — all
of it lives inside ``ServingApp.dispatch``, which both servers mount
unchanged.  The parity suite (``tests/serving/test_parity.py``) asserts
the consequence: byte-identical status/body pairs across the two
servers on every endpoint, including while snapshots hot-swap under the
requests.

**Error taxonomy** (connection level; ``dispatch`` owns request-level
errors):

* Malformed framing — bad request line, oversized header, invalid
  ``Content-Length``, a ``Transfer-Encoding`` we do not implement —
  answers ``400`` with a canonical JSON body and closes the connection
  (framing errors are not recoverable mid-stream).
* A client that disappears — reset mid-request, EOF mid-body, reset
  while a response is being written — increments
  ``serving.client_disconnects`` and closes quietly; no traceback, no
  response attempt.
* EOF at a request boundary is a clean close: counted nowhere, it is
  how keep-alive connections are supposed to end.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.serving.http import CONTENT_TYPE, ServingApp, StudyServer, encode_body

#: Longest accepted request/header line, and the stream reader's buffer
#: limit.  Anything longer is a framing error, not a request.
MAX_LINE_BYTES = 65_536

#: Maximum header count per request — a backstop against slow-drip
#: header floods holding parser state open forever.
MAX_HEADER_COUNT = 100

#: Executor threads for cold ``/reverse`` dispatches.  Distinct cold
#: cells beyond this queue behind the pool; duplicates of an in-flight
#: cell coalesce in single-flight regardless.
REVERSE_EXECUTOR_WORKERS = 8

#: Reason phrases for the statuses the dispatch core emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _BadRequest(Exception):
    """Client-visible framing error: answered 400, then the connection closes."""


class _ClientDisconnect(Exception):
    """The client vanished mid-request; close quietly and count it."""


@dataclass
class _Request:
    """One parsed request head (the body is drained during parsing)."""

    method: str
    target: str
    keep_alive: bool


def _response_bytes(status: int, payload: bytes, keep_alive: bool) -> bytes:
    """Serialise one complete HTTP/1.1 response."""
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Response')}\r\n"
        f"Content-Type: {CONTENT_TYPE}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload


class AsyncStudyServer:
    """The study snapshot server on one event loop, shared app.

    Mounts the same :class:`~repro.serving.http.ServingApp` as the
    threaded :class:`~repro.serving.http.StudyServer`; see the module
    docstring for the event-loop/executor split and error taxonomy.

    Args:
        app: The request core (shared with any other front end).  Any
            object with the ``dispatch`` / ``dispatch_blocks`` /
            ``metrics`` surface mounts here — the fleet front
            (:class:`~repro.fleet.front.FleetFront`) reuses this exact
            framing code by implementing the same protocol.
        host: Bind address.
        port: TCP port; ``0`` picks a free one (see :attr:`port`).
        executor_workers: Thread-pool width for dispatches the app
            declares blocking.  The default suits the study app (only
            cold ``/reverse`` blocks); a proxying app like the fleet
            front blocks on *every* request and wants a wider pool.
    """

    def __init__(
        self,
        app: ServingApp,
        host: str = "127.0.0.1",
        port: int = 8080,
        executor_workers: int | None = None,
    ):
        self.app = app
        self._host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers or REVERSE_EXECUTOR_WORKERS,
            thread_name_prefix="aio-reverse",
        )

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the listening socket (idempotent per instance)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._requested_port,
            limit=MAX_LINE_BYTES,
        )

    @property
    def port(self) -> int:
        """The actually-bound port (useful after binding port 0)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Accept connections until cancelled or :meth:`stop` is called."""
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listening socket, drop live connections, release the
        executor.

        Open keep-alive connections are parked in ``readline`` waiting
        for a next request that will never matter; they are cancelled
        explicitly, because (since 3.12) ``Server.wait_closed`` waits for
        connection handlers and an idle client would otherwise pin the
        shutdown forever.
        """
        if self._server is not None:
            self._server.close()
            for task in list(self._connections):
                task.cancel()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------ connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: parse, dispatch, respond, repeat."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    payload = encode_body({"error": str(exc)})
                    writer.write(_response_bytes(400, payload, keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return  # clean close at a request boundary
                status, payload = await self._dispatch(request)
                writer.write(_response_bytes(status, payload, request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    return
        except (_ClientDisconnect, ConnectionResetError, BrokenPipeError):
            self.app.metrics.counter("serving.client_disconnects")
        except asyncio.CancelledError:
            # Deliberate teardown (stop() cancelling parked keep-alive
            # connections).  Exit cleanly — re-raising would make every
            # shutdown log a phantom connection error.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()

    async def _dispatch(self, request: _Request) -> tuple[int, bytes]:
        """Run one request through the shared core, off-loop if it blocks."""
        if self.app.dispatch_blocks(request.method, request.target):
            return await asyncio.get_running_loop().run_in_executor(
                self._executor, self.app.dispatch, request.method, request.target
            )
        return self.app.dispatch(request.method, request.target)

    # --------------------------------------------------------------- parsing
    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        """Parse one request head and drain its body.

        Returns ``None`` on a clean EOF at the request boundary.  Raises
        :class:`_BadRequest` on a framing error and
        :class:`_ClientDisconnect` when the stream dies mid-request.
        """
        line = await self._read_line(reader, context="request line")
        while line in (b"\r\n", b"\n"):  # tolerate blank lines between requests
            line = await self._read_line(reader, context="request line")
        if line == b"":
            return None
        if not line.endswith(b"\n"):
            # readline returned a partial line: EOF mid-request-line.
            raise _ClientDisconnect
        try:
            method, target, version = line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest(f"malformed request line: {line[:80]!r}") from None
        if not version.startswith("HTTP/1."):
            raise _BadRequest(f"unsupported protocol: {version!r}")

        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_COUNT + 1):
            line = await self._read_line(reader, context="header")
            if line in (b"\r\n", b"\n"):
                break
            if line == b"" or not line.endswith(b"\n"):
                raise _ClientDisconnect  # EOF mid-headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line: {line[:80]!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest(f"more than {MAX_HEADER_COUNT} headers")

        if "transfer-encoding" in headers:
            raise _BadRequest("Transfer-Encoding is not supported")
        await self._drain_body(reader, headers.get("content-length"))

        tokens = {
            token.strip().lower()
            for token in headers.get("connection", "").split(",")
        }
        if version == "HTTP/1.0":
            keep_alive = "keep-alive" in tokens
        else:
            keep_alive = "close" not in tokens
        return _Request(method=method, target=target, keep_alive=keep_alive)

    async def _read_line(
        self, reader: asyncio.StreamReader, context: str
    ) -> bytes:
        """One ``readline`` with framing and disconnect errors mapped."""
        try:
            return await reader.readline()
        except ValueError:
            # The stream reader's buffer limit tripped: an overlong line.
            raise _BadRequest(
                f"{context} exceeds {MAX_LINE_BYTES} bytes"
            ) from None
        except ConnectionResetError:
            raise _ClientDisconnect from None

    async def _drain_body(
        self, reader: asyncio.StreamReader, raw_length: str | None
    ) -> None:
        """Read and discard the declared request body.

        The dispatch core takes no request bodies, but the bytes must
        leave the stream: an undrained body would be parsed as the next
        pipelined request's head — the exact keep-alive corruption the
        threaded server's ``_drain_body`` fixes.
        """
        if raw_length is None:
            return
        try:
            remaining = int(raw_length)
            if remaining < 0:
                raise ValueError
        except ValueError:
            raise _BadRequest(f"invalid Content-Length: {raw_length!r}") from None
        try:
            while remaining > 0:
                chunk = await reader.read(min(remaining, MAX_LINE_BYTES))
                if not chunk:
                    raise _ClientDisconnect  # EOF mid-body
                remaining -= len(chunk)
        except ConnectionResetError:
            raise _ClientDisconnect from None


class AsyncServerThread:
    """An :class:`AsyncStudyServer` on a dedicated event-loop thread.

    The synchronous harness the rest of the system needs: ``repro live``
    runs its pipeline on the main thread, tests and benchmarks drive
    blocking socket clients — all of them want ``start() / port /
    shutdown()`` semantics, mirroring how :class:`StudyServer` pairs
    with a ``serve_forever`` thread.

    Args:
        app: The request core.
        host: Bind address.
        port: TCP port; ``0`` picks a free one.
    """

    def __init__(
        self,
        app: ServingApp,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int | None = None,
    ):
        self.app = app
        self._host = host
        self._requested_port = port
        self._executor_workers = executor_workers
        self._thread = threading.Thread(
            target=self._run, name="aio-serving", daemon=True
        )
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._port: int | None = None
        self._boot_error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> "AsyncServerThread":
        """Start the loop thread and wait until the socket is bound.

        Returns ``self`` so callers can one-line construction + start.
        Re-raises a bind failure (e.g. port in use) in the caller's
        thread.
        """
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("asyncio server failed to start in time")
        if self._boot_error is not None:
            raise self._boot_error
        return self

    @property
    def port(self) -> int:
        """The actually-bound port (valid after :meth:`start` returns)."""
        assert self._port is not None, "server not started"
        return self._port

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting, close the loop, and join the thread (idempotent)."""
        loop = self._loop
        stop = self._stop_event
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread.is_alive():
            self._thread.join(timeout)

    def join(self) -> None:
        """Block until the server thread exits (Ctrl-C still interrupts)."""
        self._thread.join()

    def _run(self) -> None:
        """Thread body: own event loop, serve until :meth:`shutdown`."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface boot failures to start()
            if not self._ready.is_set():
                self._boot_error = exc
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        """Bind, publish readiness, then park until told to stop."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = AsyncStudyServer(
            self.app,
            host=self._host,
            port=self._requested_port,
            executor_workers=self._executor_workers,
        )
        await server.start()
        self._port = server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()


class ThreadedServerHandle:
    """A :class:`StudyServer` + its ``serve_forever`` thread, same shape.

    Gives the threaded server the ``port / shutdown() / join()`` surface
    :class:`AsyncServerThread` has, so callers that take a ``--server``
    choice (the CLI, the parity tests, the benchmark) can hold either
    behind one variable.
    """

    def __init__(self, app: ServingApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self._server = StudyServer(app, host=host, port=port)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="thread-serving", daemon=True
        )

    def start(self, timeout: float = 10.0) -> "ThreadedServerHandle":
        """Start the accept loop thread (the socket is already bound)."""
        del timeout  # binding happened in __init__; signature parity only
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The actually-bound port."""
        return self._server.port

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the accept loop, close the socket, join the thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def join(self) -> None:
        """Block until the accept-loop thread exits."""
        self._thread.join()


def start_background_server(
    app: ServingApp,
    server: str,
    host: str = "127.0.0.1",
    port: int = 0,
    executor_workers: int | None = None,
) -> AsyncServerThread | ThreadedServerHandle:
    """Boot either front end on a background thread; started on return.

    Args:
        app: The request core (or any app-protocol object, e.g. a
            :class:`~repro.fleet.front.FleetFront`).
        server: ``"thread"`` or ``"asyncio"`` (the CLI ``--server`` value).
        host: Bind address.
        port: TCP port; ``0`` picks a free one.
        executor_workers: Blocking-dispatch pool width for the asyncio
            transport (ignored by the threaded one, which is a thread
            per connection anyway).

    Raises:
        ValueError: on an unknown ``server`` kind.
    """
    if server == "asyncio":
        return AsyncServerThread(
            app, host=host, port=port, executor_workers=executor_workers
        ).start()
    if server == "thread":
        return ThreadedServerHandle(app, host=host, port=port).start()
    raise ValueError(f"unknown server kind: {server!r}")
