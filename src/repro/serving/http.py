"""The serving front door: dispatch, admission, metrics, and the server.

Layering — each request passes through, in order:

1. **Admission** (:class:`~repro.serving.ratelimit.TokenBucket`): data
   endpoints only; a shed request is answered ``429`` in microseconds and
   counted under ``serving.shed``, so admitted requests keep their
   latency.  Operational endpoints (``/healthz``, ``/metrics``,
   ``/admin/reload``) are never shed — you must be able to observe and
   fix an overloaded server.
2. **Snapshot grab**: the live :class:`~repro.serving.state
   .ServingSnapshot` reference is read exactly once; the handler sees
   one immutable snapshot for its whole lifetime, which is what makes
   hot-swap safe under concurrent readers.
3. **Handler** (:mod:`repro.serving.handlers`): a pure function of the
   snapshot and query parameters.
4. **Encoding**: canonical JSON — ``sort_keys=True``, no ASCII escaping
   — so equal bodies are equal *bytes* (the property tests compare raw
   payloads).
5. **Latency recording**: one
   :class:`~repro.engine.metrics.LatencyHistogram` per endpoint
   (``serving.latency.<endpoint>``), surfaced by ``/metrics``.

:class:`ServingApp` is the transport-free core — tests drive it directly
via :meth:`ServingApp.dispatch` without sockets.  :class:`StudyServer`
mounts it on a stdlib ``ThreadingHTTPServer``.  Hot reload is exposed
twice: ``POST /admin/reload`` and (where the platform has it) ``SIGHUP``
via :func:`install_reload_signal`.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qsl, urlsplit

from repro.engine.metrics import MetricsRegistry
from repro.errors import ReproError
from repro.geo.point import GeoPoint
from repro.geocode.service import GeocodeService
from repro.serving import handlers
from repro.serving.batcher import SingleFlight
from repro.serving.ratelimit import TokenBucket
from repro.serving.state import ServingSnapshot, SnapshotStore

#: Content type of every response body.
CONTENT_TYPE = "application/json; charset=utf-8"

#: Endpoints subject to admission control.  Operational endpoints are
#: exempt: shedding ``/healthz`` would turn overload into a false outage.
DATA_ENDPOINTS = frozenset({"/lookup", "/region", "/regions", "/reverse", "/stats"})


def encode_body(body: dict) -> bytes:
    """Canonical JSON encoding: sorted keys, real UTF-8 (no ``\\uXXXX``).

    Canonicalisation is what upgrades "equal responses" to "byte-identical
    responses": two handlers returning equal dicts — possibly built in
    different key orders on different threads — always serialise to the
    same bytes.
    """
    return json.dumps(body, ensure_ascii=False, sort_keys=True).encode("utf-8")


class ServingApp:
    """Transport-independent request core shared by HTTP and tests.

    Args:
        store: Holder of the live snapshot (swapped by reload).
        geocoder: Tiered service answering ``/reverse``; single-flight is
            enabled on it here so concurrent duplicate lookups coalesce.
        metrics: Registry for counters/histograms (fresh one if omitted).
        bucket: Admission controller (unlimited if omitted).
        reloader: Zero-argument callable producing a fresh snapshot for
            ``POST /admin/reload`` / SIGHUP; ``None`` disables reload.
        snapshot_loader: One-argument callable loading a *named* snapshot
            artifact for ``POST /admin/reload?snapshot=<path>`` — how a
            fleet publisher ships a replica a snapshot it was not booted
            with.  ``None`` rejects path-targeted reloads.
    """

    def __init__(
        self,
        store: SnapshotStore,
        geocoder: GeocodeService,
        metrics: MetricsRegistry | None = None,
        bucket: TokenBucket | None = None,
        reloader: Callable[[], ServingSnapshot] | None = None,
        snapshot_loader: Callable[[str], ServingSnapshot] | None = None,
    ):
        self.store = store
        self.geocoder = geocoder
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bucket = bucket if bucket is not None else TokenBucket(rate=None)
        self._reloader = reloader
        self._snapshot_loader = snapshot_loader
        self._draining = False
        self._reload_lock = threading.Lock()
        self.flight = SingleFlight()
        geocoder.enable_single_flight(self.flight)
        self.metrics.register_source("serving.snapshot", store.snapshot_source)
        self.metrics.register_source("serving.admission", self.bucket.snapshot_source)
        self.metrics.register_source(
            "serving.flight", lambda: self.flight.stats().as_dict()
        )
        self.metrics.register_source("serving.geocode", geocoder.stats_source)

    # ------------------------------------------------------------- dispatch
    def dispatch(self, method: str, target: str) -> tuple[int, bytes]:
        """Serve one request; returns ``(status, canonical JSON bytes)``.

        Args:
            method: HTTP method (``GET`` for queries, ``POST`` for admin).
            target: Request target, path plus optional query string
                (e.g. ``"/lookup?user=17"``).
        """
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = dict(parse_qsl(split.query))
        self.metrics.counter("serving.requests")

        if path in DATA_ENDPOINTS:
            # Drain is checked before admission: a draining server must
            # answer 503 (so fronts route elsewhere) without burning
            # bucket tokens it will never serve against.  In-flight
            # requests already past this point finish normally.
            if self._draining:
                self.metrics.counter("serving.drained")
                return 503, encode_body(
                    {"error": "draining; not accepting new requests"}
                )
            if not self.bucket.try_acquire():
                self.metrics.counter("serving.shed")
                return 429, encode_body({"error": "rate limited; retry later"})

        start = time.perf_counter()
        try:
            status, body = self._route(method, path, params)
        except Exception as exc:
            # An unexpected handler exception must still produce a
            # response: the stdlib server would otherwise drop the
            # connection with a stderr traceback and no bytes, and the
            # asyncio server would tear down a keep-alive pipeline.
            # Expected failures (bad params, geocode misses, reload
            # errors) are already mapped to 4xx/5xx by the handlers;
            # anything reaching here is a bug, answered uniformly so
            # both servers stay byte-identical.
            self.metrics.counter("serving.errors")
            status, body = 500, {
                "error": f"internal server error: {type(exc).__name__}"
            }
        endpoint = path.strip("/").replace("/", ".") or "overview"
        # Tag the sample with the store generation: the histogram window
        # partitions on it, so an /admin/reload swap can never leave
        # percentiles averaging old-snapshot and new-snapshot latencies.
        self.metrics.histogram(f"serving.latency.{endpoint}").observe(
            time.perf_counter() - start, epoch=self.store.generation
        )
        return status, encode_body(body)

    def dispatch_blocks(self, method: str, target: str) -> bool:
        """Whether dispatching ``target`` may block on a backend call.

        The only blocking path in the whole request surface is a *cold*
        ``/reverse`` cell — every other endpoint is a dictionary read off
        an immutable snapshot.  The asyncio front end
        (:mod:`repro.serving.aio`) uses this hint to route cold reverse
        lookups through an executor thread while serving everything else
        directly on the event loop.

        The probe is read-only (no stats, no LRU promotion) and advisory:
        a cell evicted between the probe and the dispatch costs one
        backend call on the event loop, which is safe, just slower for
        that one request.  Malformed or missing coordinates return
        ``False`` — those requests fail fast in the handler.
        """
        split = urlsplit(target)
        if (split.path.rstrip("/") or "/") != "/reverse":
            return False
        params = dict(parse_qsl(split.query))
        try:
            lat = float(params["lat"])
            lon = float(params["lon"])
        except (KeyError, ValueError):
            return False
        if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
            return False
        return not self.geocoder.is_cached(self.geocoder.cell_of(GeoPoint(lat, lon)))

    def _route(
        self, method: str, path: str, params: dict[str, str]
    ) -> tuple[int, dict]:
        """Map one (method, path) to its handler."""
        if path == "/admin/reload":
            if method != "POST":
                return 405, {"error": "reload requires POST"}
            return self.reload(params.get("snapshot"))
        if path == "/admin/drain":
            if method != "POST":
                return 405, {"error": "drain requires POST"}
            return self.drain()
        if path == "/admin/undrain":
            if method != "POST":
                return 405, {"error": "undrain requires POST"}
            return self.undrain()
        if method != "GET":
            return 405, {"error": f"method not allowed: {method}"}
        snapshot = self.store.current()
        if path == "/":
            return handlers.handle_overview(snapshot)
        if path == "/healthz":
            return handlers.handle_healthz(
                snapshot,
                self.store.generation,
                self.store.age_seconds(),
                draining=self._draining,
            )
        if path == "/metrics":
            return 200, {"metrics": self.metrics.snapshot()}
        if path == "/lookup":
            return handlers.handle_lookup(snapshot, params)
        if path == "/region":
            return handlers.handle_region(snapshot, params)
        if path == "/regions":
            return handlers.handle_regions(snapshot)
        if path == "/stats":
            return handlers.handle_stats(snapshot)
        if path == "/reverse":
            return handlers.handle_reverse(snapshot, self.geocoder, params)
        return 404, {"error": f"unknown endpoint: {path}"}

    # --------------------------------------------------------------- reload
    def reload(self, snapshot_path: str | None = None) -> tuple[int, dict]:
        """Load a fresh snapshot and swap it live (no requests dropped).

        With ``snapshot_path`` (``POST /admin/reload?snapshot=<path>``)
        the named artifact is loaded through ``snapshot_loader`` — the
        fleet publisher's way of shipping a replica a *new* version;
        without it the configured ``reloader`` re-reads its current
        source.  Serialised by a lock so overlapping reloads cannot
        interleave a load with a stale swap.  On a load failure the
        previous snapshot stays live — a bad file on disk never takes
        the server down, which is the keep-old-on-failure property the
        fleet rollback path leans on.
        """
        if snapshot_path is not None:
            if self._snapshot_loader is None:
                return 400, {"error": "snapshot reload not configured"}
            load = lambda: self._snapshot_loader(snapshot_path)  # noqa: E731
        elif self._reloader is not None:
            load = self._reloader
        else:
            return 400, {"error": "reload not configured"}
        with self._reload_lock:
            try:
                fresh = load()
            except ReproError as exc:
                self.metrics.counter("serving.reload_failures")
                return 500, {"error": f"reload failed: {exc}"}
            previous = self.store.swap(fresh)
        self.metrics.counter("serving.reloads")
        return 200, {
            "previous": previous.version,
            "current": fresh.version,
            "digest": fresh.digest,
            "changed": previous.version != fresh.version,
            "generation": self.store.generation,
        }

    # ---------------------------------------------------------------- drain
    def drain(self) -> tuple[int, dict]:
        """Stop accepting new data requests ahead of shutdown.

        In-flight requests finish (handlers already hold their snapshot
        reference); new data requests answer 503 and ``/healthz`` reports
        ``draining`` — the signal a fleet front or supervisor uses to
        route elsewhere before terminating the process.  Operational
        endpoints keep answering so the drain itself stays observable.
        Idempotent.
        """
        if not self._draining:
            self._draining = True
            self.metrics.counter("serving.drains")
        return 200, {"draining": True, "version": self.store.current().version}

    def undrain(self) -> tuple[int, dict]:
        """Resume accepting data requests (a cancelled shutdown). Idempotent."""
        self._draining = False
        return 200, {"draining": False, "version": self.store.current().version}

    @property
    def draining(self) -> bool:
        """Whether new data requests are currently being refused."""
        return self._draining


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin stdlib adapter: socket in, :meth:`ServingApp.dispatch` out."""

    server: "StudyServer"
    protocol_version = "HTTP/1.1"

    #: Largest chunk read while draining a request body.
    _DRAIN_CHUNK = 65_536

    def _drain_body(self) -> bool:
        """Consume the declared request body; ``False`` aborts the request.

        Keep-alive correctness depends on this: the dispatch core ignores
        request bodies, but an undrained ``POST /admin/reload`` body
        stays buffered in ``rfile``, and the *next* pipelined request
        line is then parsed out of the stale body bytes — corrupting
        every request behind it on the connection.  A malformed
        ``Content-Length`` or a body the client never finished sending
        cannot be recovered from mid-stream, so both close the
        connection (the former after a 400).
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            return True
        try:
            remaining = int(raw)
        except ValueError:
            self.close_connection = True
            self._respond(400, encode_body(
                {"error": f"invalid Content-Length: {raw!r}"}
            ))
            return False
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, self._DRAIN_CHUNK))
            if not chunk:  # client vanished mid-body
                self.close_connection = True
                return False
            remaining -= len(chunk)
        return True

    def _respond(self, status: int, payload: bytes) -> None:
        """Write one complete response (status line, headers, body)."""
        self.send_response(status)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _serve(self) -> None:
        try:
            if not self._drain_body():
                return
            status, payload = self.server.app.dispatch(self.command, self.path)
            self._respond(status, payload)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-request or mid-write.  That is its
            # prerogative, not a server fault: count it and close the
            # connection instead of spraying a handler-thread traceback.
            self.server.app.metrics.counter("serving.client_disconnects")
            self.close_connection = True

    def handle(self) -> None:
        """Serve the connection, absorbing client-initiated resets.

        A reset can also arrive while the stdlib machinery is reading the
        *next* request line of a keep-alive connection — outside
        :meth:`_serve` — where it would otherwise bubble into
        ``socketserver.handle_error``'s stderr traceback.
        """
        try:
            super().handle()
        except (BrokenPipeError, ConnectionResetError):
            self.server.app.metrics.counter("serving.client_disconnects")
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 — stdlib hook name
        """Serve a GET request."""
        self._serve()

    def do_POST(self) -> None:  # noqa: N802 — stdlib hook name
        """Serve a POST request (``/admin/reload``)."""
        self._serve()

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging; ``/metrics`` replaces it."""


class StudyServer(ThreadingHTTPServer):
    """The study snapshot server: one thread per connection, shared app.

    Thread-per-connection is the right shape here because every data
    request is a dictionary read off an immutable snapshot — handlers
    hold no locks, so threads never convoy.  The only blocking path is a
    cold ``/reverse`` cell, and single-flight bounds that to one backend
    call per distinct cell.

    Args:
        app: The request core.
        host: Bind address.
        port: TCP port; ``0`` picks a free one (see :attr:`port`).
    """

    daemon_threads = True

    def __init__(self, app: ServingApp, host: str = "127.0.0.1", port: int = 8080):
        self.app = app
        super().__init__((host, port), _RequestHandler)

    @property
    def port(self) -> int:
        """The actually-bound port (useful after binding port 0)."""
        return self.server_address[1]


def install_reload_signal(app: ServingApp) -> bool:
    """Route ``SIGHUP`` to :meth:`ServingApp.reload` (classic daemon idiom).

    Only possible from the main thread of the main interpreter and on
    platforms that have ``SIGHUP``; returns whether the handler was
    installed.  ``POST /admin/reload`` works everywhere regardless.
    """
    if not hasattr(signal, "SIGHUP"):
        return False
    if threading.current_thread() is not threading.main_thread():
        return False

    def _on_hup(signum: int, frame: object) -> None:
        app.reload()

    signal.signal(signal.SIGHUP, _on_hup)
    return True


def render_serving_summary(app: ServingApp, host: str, port: int) -> str:
    """Startup banner for the CLI: where, what, and which version."""
    snapshot = app.store.current()
    lines = [
        f"serving {snapshot.dataset_name!r} on http://{host}:{port}",
        f"  snapshot version {snapshot.version} "
        f"({snapshot.total_users} users, {snapshot.total_tweets} tweets, "
        f"{len(snapshot.regions)} regions)",
        "  endpoints: /lookup /region /regions /stats /reverse "
        "/healthz /metrics /admin/reload /admin/drain",
    ]
    source = app.bucket.snapshot_source()
    if source["rate"] != "unlimited":
        lines.append(
            f"  admission: {source['rate']}/s sustained, burst {source['burst']}"
        )
    return "\n".join(lines)
