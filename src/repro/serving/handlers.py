"""Pure endpoint handlers: ``(snapshot, params) -> (status, body)``.

Every data handler here is a pure function of the snapshot it is handed
and its query parameters — no clocks, no ambient state, no mutation.
That is the determinism contract the property tests enforce: the same
query against the same snapshot version yields the same body, whether
the requests are serial, concurrent, or separated by a hot-swap to an
equal snapshot.  The HTTP layer (:mod:`repro.serving.http`) grabs the
snapshot reference once per request and passes it in, so a handler can
never observe a swap mid-response.

Each body carries the snapshot's ``version`` tag, which is how the
hot-swap test detects torn reads: a response mixing data from one
snapshot with the version tag of another is impossible by construction,
because both come from the single reference the handler received.

The only handler touching state outside the snapshot is
:func:`handle_reverse`, whose geocode service is read-only at serving
time (a :class:`~repro.geocode.backend.DirectBackend` over the static
gazetteer) — its outcome is a pure function of the cell key by the
canonical-representative contract.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.geo.point import GeoPoint
from repro.geocode.service import GeocodeService
from repro.serving.state import ServingSnapshot

#: Status codes the handlers emit (kept symbolic for the tests).
OK = 200
BAD_REQUEST = 400
NOT_FOUND = 404


def _error(status: int, message: str, snapshot: ServingSnapshot) -> tuple[int, dict]:
    """A uniform error body, still version-tagged for traceability."""
    return status, {"error": message, "version": snapshot.version}


def handle_overview(snapshot: ServingSnapshot) -> tuple[int, dict]:
    """``GET /`` — dataset-level summary of the live snapshot."""
    body = snapshot.overview()
    body["reliability"] = snapshot.reliability
    return OK, body


def handle_healthz(
    snapshot: ServingSnapshot,
    generation: int,
    age_seconds: float,
    draining: bool = False,
) -> tuple[int, dict]:
    """``GET /healthz`` — liveness plus which snapshot is being served.

    The body carries both the short ``version`` tag and the full
    ``digest``: the fleet publisher verifies rollout convergence by
    *content* (every replica reports the published study's digest), not
    by the per-process ``generation`` counter, which starts over on every
    replica restart and says nothing about which snapshot is live.

    Args:
        snapshot: The live snapshot.
        generation: The store's publish counter (how many swaps + 1).
        age_seconds: Seconds since that snapshot was published — the
            externally observable freshness signal (a live pipeline that
            stalls shows up here before anyone notices stale answers).
        draining: Whether the server is refusing new data requests ahead
            of shutdown (``POST /admin/drain``); surfaced as the
            ``status`` so fronts and supervisors stop routing here.
    """
    return OK, {
        "status": "draining" if draining else "ok",
        "draining": draining,
        "dataset": snapshot.dataset_name,
        "version": snapshot.version,
        "digest": snapshot.digest,
        "generation": generation,
        "age_seconds": round(age_seconds, 3),
    }


def handle_lookup(
    snapshot: ServingSnapshot, params: dict[str, str]
) -> tuple[int, dict]:
    """``GET /lookup?user=<id>`` — one user's match record.

    The body is the precomputed per-user view: group, matched rank and
    string, tweet counts, matched share, reliability weight, merged
    location strings, and the profile district.
    """
    raw = params.get("user")
    if raw is None:
        return _error(BAD_REQUEST, "missing required parameter: user", snapshot)
    try:
        user_id = int(raw)
    except ValueError:
        return _error(BAD_REQUEST, f"user must be an integer, got {raw!r}", snapshot)
    record = snapshot.user(user_id)
    if record is None:
        return _error(NOT_FOUND, f"unknown user: {user_id}", snapshot)
    body = dict(record)
    # The reliability weight is a function of *global* statistics, so it
    # lives beside the snapshot (keyed by group) rather than inside each
    # cached body — see serving.state.user_entry.
    body["weight"] = snapshot.user_weights[body["group"]]
    body["version"] = snapshot.version
    return OK, body


def handle_region(
    snapshot: ServingSnapshot, params: dict[str, str]
) -> tuple[int, dict]:
    """``GET /region?state=<name>`` — one profile state's agreement stats."""
    state = params.get("state")
    if state is None:
        return _error(BAD_REQUEST, "missing required parameter: state", snapshot)
    record = snapshot.region(state)
    if record is None:
        return _error(NOT_FOUND, f"unknown region: {state}", snapshot)
    body = dict(record)
    body["version"] = snapshot.version
    return OK, body


def handle_regions(snapshot: ServingSnapshot) -> tuple[int, dict]:
    """``GET /regions`` — every region's stats, sorted by state name."""
    return OK, {
        "regions": [snapshot.regions[state] for state in sorted(snapshot.regions)],
        "version": snapshot.version,
    }


def handle_stats(snapshot: ServingSnapshot) -> tuple[int, dict]:
    """``GET /stats`` — the per-group statistics table and funnel."""
    return OK, {
        "statistics": snapshot.statistics,
        "funnel": snapshot.funnel,
        "reliability": snapshot.reliability,
        "version": snapshot.version,
    }


def handle_reverse(
    snapshot: ServingSnapshot,
    geocoder: GeocodeService,
    params: dict[str, str],
) -> tuple[int, dict]:
    """``GET /reverse?lat=<deg>&lon=<deg>`` — reverse-geocode one point.

    Routed through the shared tiered :class:`GeocodeService` with
    single-flight enabled, so concurrent duplicate lookups for one cell
    cost one backend call.  The outcome is a pure function of the cell
    the point quantises to (canonical-representative semantics), so the
    response includes the cell key for cache-behaviour debugging.
    """
    try:
        lat = float(params["lat"])
        lon = float(params["lon"])
    except KeyError as exc:
        return _error(BAD_REQUEST, f"missing required parameter: {exc.args[0]}", snapshot)
    except ValueError:
        return _error(BAD_REQUEST, "lat and lon must be numbers", snapshot)
    if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
        return _error(BAD_REQUEST, "lat/lon out of range", snapshot)
    point = GeoPoint(lat, lon)
    cell = geocoder.cell_of(point)
    try:
        path = geocoder.resolve_cell(cell)
    except ReproError as exc:
        return _error(BAD_REQUEST, f"geocode failed: {exc}", snapshot)
    body: dict[str, object] = {
        "cell": list(cell),
        "resolved": path is not None,
        "version": snapshot.version,
    }
    if path is not None:
        body["state"] = path.state
        body["county"] = path.county
        body["country"] = path.country
    return OK, body
