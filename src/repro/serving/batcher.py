"""Single-flight coalescing of concurrent duplicate keyed calls.

When N requests ask to reverse-geocode the same cell at the same moment,
only one of them should pay the backend call; the other N-1 should wait
for — and share — its result.  :class:`SingleFlight` implements this
leader/follower protocol: the first caller for a key becomes the
*leader* and runs the function; callers arriving while the flight is
open become *followers* and block on the leader's completion event.

This is the serving half of the contract declared by
:class:`repro.geocode.service.FlightCoordinator`; the
:class:`~repro.geocode.service.GeocodeService` plugs an instance in via
``enable_single_flight`` and routes every cold-cache ``resolve_cell``
through :meth:`do`.

Error semantics: if the leader's function raises, every follower of that
flight re-raises the same exception — a failed flight is not silently
retried, because the admission layer above decides retry policy.  The
flight is removed either way, so the *next* caller for the key starts a
fresh flight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, TypeVar

_T = TypeVar("_T")


class _Flight:
    """One in-progress call: completion event plus its outcome."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: object = None
        self.error: BaseException | None = None


@dataclass
class FlightStats:
    """Counters describing how much duplicate work coalescing saved.

    Attributes:
        leaders: Calls that actually executed the function.
        followers: Calls that waited on a leader and shared its result.
        failures: Flights whose function raised (followers re-raised).
    """

    leaders: int = 0
    followers: int = 0
    failures: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON/metrics-friendly view."""
        return {
            "leaders": self.leaders,
            "followers": self.followers,
            "failures": self.failures,
        }


class SingleFlight:
    """Keyed leader/follower call coalescer (the Go ``singleflight`` idiom).

    Thread-safe; one instance serves all handler threads.  Keys must be
    hashable.  Results are *not* cached across flights — once a flight
    lands, the next call for the same key starts a new one.  Caching is
    the caller's concern (the geocode tier cache, for the serving layer).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[object, _Flight] = {}
        self._stats = FlightStats()

    def do(self, key: object, fn: Callable[[], _T]) -> _T:
        """Run ``fn`` once per concurrent burst of callers with ``key``.

        The first caller executes ``fn``; concurrent callers with the
        same key block until it finishes and receive the same result (or
        re-raise the same exception).

        Args:
            key: Hashable identity of the call (e.g. a geocode cell).
            fn: Zero-argument callable producing the shared result.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
                self._stats.leaders += 1
            else:
                leader = False
                self._stats.followers += 1

        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result  # type: ignore[return-value]

        try:
            flight.result = fn()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._stats.failures += 1
                self._flights.pop(key, None)
            flight.done.set()
            raise
        with self._lock:
            self._flights.pop(key, None)
        flight.done.set()
        return flight.result  # type: ignore[return-value]

    def stats(self) -> FlightStats:
        """A copy of the coalescing counters (safe to read anytime)."""
        with self._lock:
            return FlightStats(
                leaders=self._stats.leaders,
                followers=self._stats.followers,
                failures=self._stats.failures,
            )

    def in_flight(self) -> int:
        """Number of currently open flights (for tests and metrics)."""
        with self._lock:
            return len(self._flights)
