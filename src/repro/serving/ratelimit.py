"""Token-bucket admission control for the serving layer.

The server sheds load rather than queueing it: when the bucket is empty
a data request is answered ``429 Too Many Requests`` immediately, so the
requests that *are* admitted keep their latency.  This is the classic
admission-control trade — bounded latency for admitted work, explicit
rejection for the rest — and it is what the closed-loop benchmark
(`benchmarks/bench_serving_load.py`) measures: p95 of admitted requests
must not degrade when the offered load doubles past the rate limit.

The clock is injectable so tests can drive refill deterministically
without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    ``try_acquire`` never blocks — it either takes a token or reports
    shed.  A ``rate`` of ``None`` disables limiting entirely (every
    acquire succeeds), which is the default for tests and ad-hoc serving.

    Thread-safe; refill is computed lazily from elapsed clock time on
    each acquire, so there is no background thread.
    """

    def __init__(
        self,
        rate: float | None,
        burst: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        """Configure the bucket.

        Args:
            rate: Sustained admissions per second, or ``None`` for
                unlimited.
            burst: Bucket capacity — how far admissions may overshoot the
                sustained rate momentarily.  Clamped to at least 1.
            clock: Monotonic-seconds source; injectable for tests.

        Raises:
            ValueError: if ``rate`` is given but not positive.
        """
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        self._rate = rate
        self._burst = max(1, int(burst))
        self._clock = clock
        self._tokens = float(self._burst)
        self._last = clock()
        self._lock = threading.Lock()
        self._admitted = 0
        self._shed = 0

    def try_acquire(self) -> bool:
        """Take one token if available; never blocks.

        Returns:
            ``True`` if the request is admitted, ``False`` if it must be
            shed (answered 429).
        """
        if self._rate is None:
            with self._lock:
                self._admitted += 1
            return True
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(
                float(self._burst), self._tokens + elapsed * self._rate
            )
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self._admitted += 1
                return True
            self._shed += 1
            return False

    @property
    def admitted(self) -> int:
        """Requests admitted so far."""
        with self._lock:
            return self._admitted

    @property
    def shed(self) -> int:
        """Requests shed (rejected) so far."""
        with self._lock:
            return self._shed

    def snapshot_source(self) -> dict[str, object]:
        """Metrics-registry source: admission counters and configuration."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "shed": self._shed,
                "rate": self._rate if self._rate is not None else "unlimited",
                "burst": self._burst,
            }
