"""Immutable, versioned study snapshots and their atomic hot-swap holder.

The serving layer never computes anything at query time that can be
computed at load time.  A :class:`ServingSnapshot` is built once — from a
:class:`~repro.analysis.correlation.StudyResult` in memory or a study
JSON document on disk — and precomputes every response fragment the
query endpoints need: per-user match records, per-region agreement
stats, the reliability weight table, and the group statistics.  After
construction it is never mutated, so any number of handler threads can
read it without locks.

**Versioning contract.**  A snapshot's version is the content digest of
the study it was built from (:func:`~repro.analysis.serialization
.study_digest`).  Version equality therefore *is* response equality:
two snapshots with the same version answer every query byte-identically,
and hot-swapping between them is observationally a no-op.  This is what
makes the determinism property testable — and what lets operators tell
a real deploy from a redundant one by comparing version tags.

**Hot swap.**  A :class:`SnapshotStore` holds the live snapshot behind a
lock.  Handlers grab the reference *once* per request and read only from
that object, so an in-flight request keeps answering from the snapshot
it started with while :meth:`SnapshotStore.swap` publishes a new one —
no torn reads, no draining, no 5xx window.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.analysis.correlation import StudyResult
from repro.analysis.regional import RegionalRow, regional_breakdown
from repro.analysis.reliability import ReliabilityTable
from repro.analysis.serialization import load_study, study_digest
from repro.columnar.interner import StringInterner, study_interner
from repro.columnar.keys import location_key
from repro.columnar.storage import is_columnar_study, load_study_columnar
from repro.errors import ReproError
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.region import District
from repro.grouping.topk import UserGrouping

#: Hex digits of the study digest used as the public version tag.  16
#: hex chars (64 bits) cannot collide by accident at any realistic
#: snapshot cadence; the full digest stays available on the snapshot.
VERSION_TAG_LENGTH = 16


def user_entry(
    user_id: int,
    grouping: UserGrouping,
    district: District | None,
) -> tuple[dict[str, object], str | None]:
    """One user's precomputed lookup body and matched-key, if any.

    The body deliberately omits the reliability ``weight``: that value
    depends on *global* statistics (the group's mean matched share), so
    caching it per user would force a full-study rebuild whenever any
    user changed.  The handler splices it in at query time from
    :attr:`ServingSnapshot.user_weights`, keyed by the user's group —
    response bytes are unchanged, but the body itself becomes a pure
    function of this user's own state, which is what lets the live
    delta builder (:mod:`repro.live.builder`) reuse it across builds.
    """
    matched_string = None
    matched_key = None
    if grouping.matched_rank is not None:
        matched = grouping.merged[grouping.matched_rank - 1]
        matched_string = matched.render()
        record = matched.record
        matched_key = location_key(
            record.user_id,
            record.profile_state,
            record.profile_county,
            record.tweet_state,
            record.tweet_county,
        )
    body: dict[str, object] = {
        "user_id": user_id,
        "group": grouping.group.value,
        "matched_rank": grouping.matched_rank,
        "matched_string": matched_string,
        "matched_tweets": grouping.matched_tweets,
        "total_tweets": grouping.total_tweets,
        "matched_share": round(grouping.matched_share, 6),
        "tweet_locations": grouping.tweet_location_count,
        "merged": [row.render() for row in grouping.merged],
        "profile_district": {
            "state": district.state,
            "county": district.name,
        }
        if district is not None
        else None,
    }
    return body, matched_key


def region_entry(row: RegionalRow) -> dict[str, object]:
    """One profile state's precomputed response body."""
    return {
        "state": row.state,
        "users": row.users,
        "top1_share": round(row.top1_share, 6),
        "matched_share": round(row.matched_share, 6),
        "avg_tweet_locations": round(row.avg_tweet_locations, 6),
    }


def group_weights(table: ReliabilityTable) -> dict[str, float]:
    """Per-group reliability weights keyed by group label, rounded as
    they appear in lookup responses (6 places, matching the historical
    per-user precompute)."""
    return {
        group.value: round(weight, 6) for group, weight in table.weights.items()
    }


@dataclass(frozen=True)
class ServingSnapshot:
    """One immutable, query-ready view of a study.

    Attributes:
        version: Public version tag (prefix of ``digest``); stamped into
            every snapshot-backed response.
        digest: Full SHA-256 content digest of the source study.
        dataset_name: The study's dataset label.
        users: Per-user response bodies, keyed by user id (version tag
            and reliability weight excluded; the handler adds them from
            ``version`` and ``user_weights``).
        regions: Per-profile-state response bodies, keyed by state name.
        reliability: The learned per-group weight table (JSON view).
        user_weights: Reliability weight per group label, spliced into
            lookup bodies at query time (see :func:`user_entry` for why
            it is not cached per user).
        statistics: Per-group statistics table (JSON view).
        funnel: Refinement funnel counters (JSON view).
        total_users / total_tweets: Study-level aggregates.
        interner: The study's canonical string-id table
            (:func:`~repro.columnar.interner.study_interner`) — the same
            table a columnar artifact of this study embeds, so an
            operator can prove a mmap-reloaded snapshot shares the live
            one's id space by comparing ``interner.digest()``.
        matched_keys: Lookup table from a matched string's
            :func:`~repro.columnar.keys.location_key` to the user it
            belongs to, precomputed over the interned merged columns at
            build time (see :meth:`matched_user`).
    """

    version: str
    digest: str
    dataset_name: str
    users: dict[int, dict[str, object]]
    regions: dict[str, dict[str, object]]
    reliability: dict[str, float]
    user_weights: dict[str, float]
    statistics: dict[str, dict[str, float]]
    funnel: dict[str, object]
    total_users: int
    total_tweets: int
    interner: StringInterner
    matched_keys: dict[str, int]

    @classmethod
    def from_study(cls, study: StudyResult) -> "ServingSnapshot":
        """Precompute every query-ready view from ``study``.

        All derived values (matched string, reliability weight, regional
        agreement) are fixed here, so a query later is a dictionary read
        — a pure function of this object.
        """
        digest = study_digest(study)
        table = ReliabilityTable.from_statistics(study.statistics)
        interner = study_interner(study.observations, study.profile_districts)

        users: dict[int, dict[str, object]] = {}
        matched_keys: dict[str, int] = {}
        for user_id, grouping in study.groupings.items():
            body, matched_key = user_entry(
                user_id, grouping, study.profile_districts.get(user_id)
            )
            users[user_id] = body
            if matched_key is not None:
                matched_keys[matched_key] = user_id

        regions: dict[str, dict[str, object]] = {}
        try:
            rows = regional_breakdown(
                study.groupings, study.profile_districts, min_users=1
            )
        except ReproError:
            rows = []
        for row in rows:
            regions[row.state] = region_entry(row)

        return cls(
            version=digest[:VERSION_TAG_LENGTH],
            digest=digest,
            dataset_name=study.dataset_name,
            users=users,
            regions=regions,
            reliability=table.as_dict(),
            user_weights=group_weights(table),
            statistics=study.statistics.as_dict(),
            funnel=dict(study.funnel.as_dict()),
            total_users=study.statistics.total_users,
            total_tweets=study.statistics.total_tweets,
            interner=interner,
            matched_keys=matched_keys,
        )

    def user(self, user_id: int) -> dict[str, object] | None:
        """The precomputed lookup body for ``user_id`` (``None`` unknown)."""
        return self.users.get(user_id)

    def matched_user(self, key: str) -> int | None:
        """The user whose *matched* string renders to ``key`` (``None``
        unknown) — a reverse lookup over the precomputed
        :attr:`matched_keys` table."""
        return self.matched_keys.get(key)

    def region(self, state: str) -> dict[str, object] | None:
        """The precomputed body for profile state ``state`` (``None`` unknown)."""
        return self.regions.get(state)

    def overview(self) -> dict[str, object]:
        """Dataset-level summary used by ``/healthz`` and ``/``."""
        return {
            "dataset": self.dataset_name,
            "version": self.version,
            "users": self.total_users,
            "tweets": self.total_tweets,
            "regions": len(self.regions),
        }


def load_snapshot(path: str | Path, gazetteer: GazetteerBackend) -> ServingSnapshot:
    """Load a study artifact and build its serving snapshot.

    The format is sniffed from the file itself: a columnar buffer
    (:data:`~repro.columnar.share.MAGIC` leading bytes) is mmap'd and
    decoded lazily through :func:`~repro.columnar.storage
    .load_study_columnar` — the reload path never parses JSON or copies
    the column payloads — while anything else goes through the JSON
    :func:`~repro.analysis.serialization.load_study`.  Both formats of
    the same study produce snapshots with the same version tag, so a
    reload that merely switches formats is observationally a no-op.

    Raises:
        StorageError: on a missing/malformed artifact (propagated from
            either loader).
    """
    if is_columnar_study(path):
        return ServingSnapshot.from_study(load_study_columnar(path, gazetteer))
    return ServingSnapshot.from_study(load_study(path, gazetteer))


class SnapshotStore:
    """The mutable cell holding the live snapshot — swap is atomic.

    Readers call :meth:`current` exactly once per request and then use
    only that reference; writers call :meth:`swap`.  The lock makes the
    generation counter and reference move together; the snapshot objects
    themselves are immutable, so readers never need the lock after the
    initial grab.
    """

    def __init__(
        self,
        snapshot: ServingSnapshot,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._lock = threading.Lock()
        self._current = snapshot
        self._generation = 1
        self._swaps = 0
        self._clock = clock
        self._swapped_at = clock()

    def current(self) -> ServingSnapshot:
        """The live snapshot (grab once per request)."""
        with self._lock:
            return self._current

    def swap(self, snapshot: ServingSnapshot) -> ServingSnapshot:
        """Publish ``snapshot`` as live; returns the one it replaced.

        In-flight requests keep the reference they already grabbed, so a
        swap never tears a response; requests admitted after the swap see
        only the new snapshot.
        """
        with self._lock:
            previous = self._current
            self._current = snapshot
            self._generation += 1
            self._swaps += 1
            self._swapped_at = self._clock()
            return previous

    @property
    def generation(self) -> int:
        """Monotone publish counter (1 for the boot snapshot)."""
        with self._lock:
            return self._generation

    def age_seconds(self) -> float:
        """Seconds since the live snapshot was published (0 at boot).

        The one number an external freshness monitor needs: a live
        pipeline that stops swapping shows up as unbounded age long
        before anyone notices stale answers.
        """
        with self._lock:
            return max(0.0, self._clock() - self._swapped_at)

    def snapshot_source(self) -> dict[str, object]:
        """Metrics-registry source: generation, swap count, live version
        and content digest, and seconds since the last publish.

        The digest is the convergence signal a fleet publisher reads off
        ``/metrics``/``/healthz``: generations restart at 1 on every
        replica boot, but equal digests *prove* two replicas serve the
        same study bytes.
        """
        with self._lock:
            return {
                "generation": self._generation,
                "swaps": self._swaps,
                "users": self._current.total_users,
                "version": self._current.version,
                "digest": self._current.digest,
                "age_seconds": round(
                    max(0.0, self._clock() - self._swapped_at), 3
                ),
            }
