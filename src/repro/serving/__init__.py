"""Online serving of study results (`repro serve`).

The batch/streaming pipelines answer "what did the study find?"; this
package answers it *per query, online*: load a saved
:class:`~repro.analysis.correlation.StudyResult` into an immutable,
versioned :class:`ServingSnapshot` and serve per-user match lookups,
per-region reliability stats, and reverse-geocoding over a stdlib-only
JSON HTTP API — with the production machinery a long-lived query server
needs: single-flight coalescing of duplicate geocode lookups
(:class:`SingleFlight`), token-bucket load shedding
(:class:`TokenBucket`), per-endpoint latency histograms, and atomic
hot-swap of snapshots (``SIGHUP`` / ``POST /admin/reload``) without
dropping in-flight requests.

Layer map:

* :mod:`repro.serving.state` — :class:`ServingSnapshot` (immutable,
  content-versioned), :class:`SnapshotStore` (atomic swap),
  :func:`load_snapshot`.
* :mod:`repro.serving.batcher` — :class:`SingleFlight` /
  :class:`FlightStats`.
* :mod:`repro.serving.ratelimit` — :class:`TokenBucket`.
* :mod:`repro.serving.handlers` — pure ``(snapshot, params) -> (status,
  body)`` endpoint functions.
* :mod:`repro.serving.http` — :class:`ServingApp` (dispatch, admission,
  metrics), :class:`StudyServer` (threaded HTTP), reload plumbing.
* :mod:`repro.serving.aio` — :class:`AsyncStudyServer` (the same app on
  one asyncio event loop: keep-alive, pipelining, executor off-load for
  cold ``/reverse``), :class:`AsyncServerThread` /
  :class:`ThreadedServerHandle` background harnesses,
  :func:`start_background_server`.
"""

from repro.serving.aio import (
    AsyncServerThread,
    AsyncStudyServer,
    ThreadedServerHandle,
    start_background_server,
)
from repro.serving.batcher import FlightStats, SingleFlight
from repro.serving.handlers import (
    handle_healthz,
    handle_lookup,
    handle_overview,
    handle_region,
    handle_regions,
    handle_reverse,
    handle_stats,
)
from repro.serving.http import (
    ServingApp,
    StudyServer,
    encode_body,
    install_reload_signal,
    render_serving_summary,
)
from repro.serving.ratelimit import TokenBucket
from repro.serving.state import (
    ServingSnapshot,
    SnapshotStore,
    load_snapshot,
)

__all__ = [
    "AsyncServerThread",
    "AsyncStudyServer",
    "FlightStats",
    "ServingApp",
    "ServingSnapshot",
    "SingleFlight",
    "SnapshotStore",
    "StudyServer",
    "ThreadedServerHandle",
    "TokenBucket",
    "encode_body",
    "handle_healthz",
    "handle_lookup",
    "handle_overview",
    "handle_region",
    "handle_regions",
    "handle_reverse",
    "handle_stats",
    "install_reload_signal",
    "load_snapshot",
    "render_serving_summary",
    "start_background_server",
]
