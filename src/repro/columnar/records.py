"""Packed match-record columns — the study's rows as flat int64 arrays.

A :class:`~repro.twitter.models.GeotaggedObservation` is five strings and
two integers in a Python object; a million of them is a million boxed
objects that must be pickled field by field to cross a process boundary.
:class:`MatchColumns` stores the same information as six parallel
``array('q')`` columns over a :class:`~repro.columnar.interner
.StringInterner` — user id, interned profile state/county, interned
tweet state/county, timestamp — so a study's whole observation table is
a handful of contiguous buffers that can be written to disk once and
mapped zero-copy by any number of workers
(:mod:`repro.columnar.share`).

Construction preserves row order exactly, and
:meth:`MatchColumns.to_observations` restores the original objects bit
for bit, which is what the engine's columnar/dict equivalence property
tests lean on.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.columnar.interner import StringInterner
from repro.columnar.share import BufferReader, BufferWriter
from repro.errors import ConfigurationError
from repro.twitter.models import GeotaggedObservation

#: The array typecode every column uses: signed 64-bit, fixed width.
TYPECODE = "q"


class MatchColumns:
    """Parallel int64 columns over one interner — the columnar batch.

    Attributes:
        interner: The string table every ``*_id`` column indexes into.
        user_ids: Author id per row.
        profile_states / profile_counties: Interned profile district.
        tweet_states / tweet_counties: Interned tweet district.
        timestamps_ms: Posting time per row.

    Columns may be ``array('q')`` (owned) or ``memoryview`` slices cast
    to int64 (zero-copy views over a mapped buffer) — every consumer
    indexes and slices them identically.
    """

    __slots__ = (
        "interner",
        "user_ids",
        "profile_states",
        "profile_counties",
        "tweet_states",
        "tweet_counties",
        "timestamps_ms",
    )

    def __init__(
        self,
        interner: StringInterner,
        user_ids: Sequence[int],
        profile_states: Sequence[int],
        profile_counties: Sequence[int],
        tweet_states: Sequence[int],
        tweet_counties: Sequence[int],
        timestamps_ms: Sequence[int],
    ) -> None:
        lengths = {
            len(user_ids),
            len(profile_states),
            len(profile_counties),
            len(tweet_states),
            len(tweet_counties),
            len(timestamps_ms),
        }
        if len(lengths) != 1:
            raise ConfigurationError(
                f"match columns must be parallel; got lengths {sorted(lengths)}"
            )
        self.interner = interner
        self.user_ids = user_ids
        self.profile_states = profile_states
        self.profile_counties = profile_counties
        self.tweet_states = tweet_states
        self.tweet_counties = tweet_counties
        self.timestamps_ms = timestamps_ms

    def __len__(self) -> int:
        return len(self.user_ids)

    @classmethod
    def from_observations(
        cls,
        observations: Iterable[GeotaggedObservation],
        interner: StringInterner | None = None,
    ) -> "MatchColumns":
        """Pack observation rows into columns, interning as encountered.

        The interning sweep order (profile state, profile county, tweet
        state, tweet county per row) matches
        :func:`~repro.columnar.interner.study_interner`, so a batch built
        here carries the same table a study's canonical interner would.
        """
        interner = interner if interner is not None else StringInterner()
        intern = interner.intern
        user_ids = array(TYPECODE)
        profile_states = array(TYPECODE)
        profile_counties = array(TYPECODE)
        tweet_states = array(TYPECODE)
        tweet_counties = array(TYPECODE)
        timestamps_ms = array(TYPECODE)
        # Bound appends hoisted out of the loop: this sweep runs once per
        # observation on the engine's hot path, so the six attribute
        # lookups per row are worth eliding.
        append_user = user_ids.append
        append_ps = profile_states.append
        append_pc = profile_counties.append
        append_ts = tweet_states.append
        append_tc = tweet_counties.append
        append_time = timestamps_ms.append
        for observation in observations:
            append_user(observation.user_id)
            append_ps(intern(observation.profile_state))
            append_pc(intern(observation.profile_county))
            append_ts(intern(observation.tweet_state))
            append_tc(intern(observation.tweet_county))
            append_time(observation.timestamp_ms)
        return cls(
            interner,
            user_ids,
            profile_states,
            profile_counties,
            tweet_states,
            tweet_counties,
            timestamps_ms,
        )

    def row(self, index: int) -> GeotaggedObservation:
        """Materialise one row back into its observation object."""
        lookup = self.interner.lookup
        return GeotaggedObservation(
            user_id=self.user_ids[index],
            profile_state=lookup(self.profile_states[index]),
            profile_county=lookup(self.profile_counties[index]),
            tweet_state=lookup(self.tweet_states[index]),
            tweet_county=lookup(self.tweet_counties[index]),
            timestamp_ms=self.timestamps_ms[index],
        )

    def to_observations(self) -> list[GeotaggedObservation]:
        """Materialise every row, in order (the inverse of packing)."""
        lookup = self.interner.lookup
        return [
            GeotaggedObservation(
                user_id=uid,
                profile_state=lookup(ps),
                profile_county=lookup(pc),
                tweet_state=lookup(ts),
                tweet_county=lookup(tc),
                timestamp_ms=tms,
            )
            for uid, ps, pc, ts, tc, tms in zip(
                self.user_ids,
                self.profile_states,
                self.profile_counties,
                self.tweet_states,
                self.tweet_counties,
                self.timestamps_ms,
            )
        ]

    def write(self, path: str | Path) -> Path:
        """Lay the batch out as one mappable buffer file.

        Writes the interner table (``interner.*``) and every column
        (``obs.*``) through :class:`~repro.columnar.share.BufferWriter`;
        :meth:`mapped` reopens the file as zero-copy views.  Requires an
        owned batch (the interner must be a real
        :class:`StringInterner`, not a mapped table).
        """
        writer = BufferWriter()
        writer.add_strings("interner", self.interner.to_lines())
        writer.add_i64("obs.user_ids", self.user_ids)
        writer.add_i64("obs.profile_states", self.profile_states)
        writer.add_i64("obs.profile_counties", self.profile_counties)
        writer.add_i64("obs.tweet_states", self.tweet_states)
        writer.add_i64("obs.tweet_counties", self.tweet_counties)
        writer.add_i64("obs.timestamps_ms", self.timestamps_ms)
        return writer.write(path)

    @classmethod
    def mapped(cls, reader: BufferReader) -> "MatchColumns":
        """Open a :meth:`write` file's columns as zero-copy views.

        The interner slot holds the reader's lazy
        :class:`~repro.columnar.share.StringTable` — same ``len`` and
        ``lookup`` surface, strings decoded only on demand — and every
        column is a ``memoryview`` over the shared mapping, so a worker
        "receiving" a million-row batch copies nothing.
        """
        return cls(
            reader.strings("interner"),  # type: ignore[arg-type]
            reader.i64("obs.user_ids"),
            reader.i64("obs.profile_states"),
            reader.i64("obs.profile_counties"),
            reader.i64("obs.tweet_states"),
            reader.i64("obs.tweet_counties"),
            reader.i64("obs.timestamps_ms"),
        )

    def user_slices(self) -> list[tuple[int, int, int]]:
        """Contiguous per-user row runs: ``(user_id, start, stop)``.

        The engine appends observations user by user, so each user's
        rows form one contiguous run; this is the unit the sharded
        grouping path partitions.

        Raises:
            ConfigurationError: if a user's rows are not contiguous —
                a batch that did not come from the staged pipeline.
        """
        slices: list[tuple[int, int, int]] = []
        seen: set[int] = set()
        user_ids = self.user_ids
        start = 0
        for index in range(1, len(user_ids) + 1):
            if index == len(user_ids) or user_ids[index] != user_ids[start]:
                user_id = user_ids[start]
                if user_id in seen:
                    raise ConfigurationError(
                        f"user {user_id} has non-contiguous rows; columnar "
                        "sharding requires per-user contiguity"
                    )
                seen.add(user_id)
                slices.append((user_id, start, index))
                start = index
        return slices
