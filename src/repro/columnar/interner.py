"""String interning: every location string becomes a stable integer id.

The hot paths of the study shuffle the same few thousand strings —
state names, county names, the components of ``uid#state#county`` keys —
through dicts, pickles, and JSON millions of times.  A
:class:`StringInterner` maps each distinct string to a small, stable
integer once; downstream layers (grouping, sharding, streaming, serving)
then move fixed-width integer columns instead of object graphs.

Id assignment is *dense first-encounter order*: the first string ever
interned gets id 0, the next new one id 1, and so on.  Re-interning a
known string returns its existing id, and ids survive a
:meth:`to_lines` / :meth:`from_lines` round trip unchanged — the
property the persisted study artifact and warm caches depend on
(property-tested in ``tests/columnar/test_interner.py`` over both
datasets' real location strings, Korean district names included).

Arbitrary strings are supported — empty strings, ``#``-containing
strings, any Unicode — because the interner works on whole components,
never on the delimited record.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.errors import ConfigurationError


class StringInterner:
    """A bidirectional string ↔ dense-integer-id table.

    Ids are assigned in first-encounter order starting at 0, so two
    interners fed the same strings in the same order are identical —
    the determinism the columnar study digest builds on.
    """

    __slots__ = ("_ids", "_strings")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, text: str) -> bool:
        return text in self._ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StringInterner):
            return NotImplemented
        return self._strings == other._strings

    def intern(self, text: str) -> int:
        """The id for ``text``, assigning the next dense id if unseen."""
        table = self._ids
        found = table.get(text)
        if found is not None:
            return found
        assigned = len(self._strings)
        table[text] = assigned
        self._strings.append(text)
        return assigned

    def intern_many(self, texts: Iterable[str]) -> list[int]:
        """Intern every string of ``texts``, returning their ids in order."""
        return [self.intern(text) for text in texts]

    def id_of(self, text: str) -> int:
        """The id of an already-interned string.

        Raises:
            KeyError: if ``text`` has never been interned.
        """
        return self._ids[text]

    def lookup(self, string_id: int) -> str:
        """The string behind ``string_id``.

        Raises:
            ConfigurationError: for an id the table never assigned.
        """
        if not 0 <= string_id < len(self._strings):
            raise ConfigurationError(
                f"interner id {string_id} out of range "
                f"(table holds {len(self._strings)} strings)"
            )
        return self._strings[string_id]

    @property
    def strings(self) -> tuple[str, ...]:
        """Every interned string, in id order (index == id)."""
        return tuple(self._strings)

    # ----------------------------------------------------------- persistence
    def to_lines(self) -> list[str]:
        """The table as a list of strings in id order (the wire form).

        The list *is* the table: index equals id, so serialising it into
        a study document (or a columnar buffer's string section) and
        rebuilding with :meth:`from_lines` preserves every id exactly.
        """
        return list(self._strings)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "StringInterner":
        """Rebuild an interner from :meth:`to_lines` output.

        Raises:
            ConfigurationError: if ``lines`` holds duplicate strings —
                a table that cannot have come from an interner.
        """
        interner = cls()
        for index, text in enumerate(lines):
            assigned = interner.intern(text)
            if assigned != index:
                raise ConfigurationError(
                    f"duplicate string {text!r} at position {index} in "
                    "interner table (first seen as id "
                    f"{assigned})"
                )
        return interner

    def digest(self) -> str:
        """SHA-256 over the table contents (order-sensitive).

        Two interners digest equal iff they assign every id identically,
        which is the cheap equality warm caches and snapshot versioning
        compare.
        """
        hasher = hashlib.sha256()
        for text in self._strings:
            encoded = text.encode("utf-8")
            hasher.update(len(encoded).to_bytes(4, "little"))
            hasher.update(encoded)
        return hasher.hexdigest()


def study_interner(observations, profile_districts=None) -> StringInterner:
    """The canonical interner for a study's content.

    One sweep in canonical order — each observation's profile state,
    profile county, tweet state, tweet county, then each kept profile
    district's state and name — so every layer that derives an interner
    from the same study content (the engine's columnar batch, the JSON
    serializer, the columnar artifact writer) produces the *same* table
    with the *same* ids.

    Args:
        observations: Iterable of
            :class:`~repro.twitter.models.GeotaggedObservation` rows in
            study order.
        profile_districts: Optional mapping of user id to
            :class:`~repro.geo.region.District`, swept after the
            observations in iteration order.
    """
    interner = StringInterner()
    intern = interner.intern
    for observation in observations:
        intern(observation.profile_state)
        intern(observation.profile_county)
        intern(observation.tweet_state)
        intern(observation.tweet_county)
    if profile_districts is not None:
        for district in profile_districts.values():
            intern(district.state)
            intern(district.name)
    return interner
