"""The one home of the ``uid#state#county#state#county`` key logic.

The paper's working representation is a ``#``-delimited text record per
tweet (Table I), and three layers used to re-implement pieces of it —
the batch merger (:mod:`repro.grouping.merge`), the incremental grouper
(:mod:`repro.grouping.incremental`), and the serving snapshot all built
the rendered key and the merged-row ordering independently.  This module
is now the single source of truth: :data:`DELIMITER` and
:func:`location_key` define the record's text form, and
:func:`merged_sort_key` produces the one tie-break-aware ordering every
grouping path (dict, incremental, columnar) sorts with.

Keeping the key logic here — inside the columnar package — is not an
accident of layering: the columnar grouping path orders *interned* rows
by exactly these rendered strings, so byte-identity between the dict and
columnar paths reduces to both calling the same two functions.  The
module is deliberately import-free (``TieBreak`` is resolved lazily) so
every grouping module can depend on it without cycles.
"""

from __future__ import annotations

from collections.abc import Callable

#: Field delimiter of the paper's string records.  Defined here — the
#: grouping package re-exports it — so the key builders and the record
#: validators agree by construction.
DELIMITER = "#"


def location_key(
    user_id: int,
    profile_state: str,
    profile_county: str,
    tweet_state: str,
    tweet_county: str,
) -> str:
    """Render the canonical ``uid#state#county#state#county`` record.

    This is the paper's Table I string form; every layer that needs the
    rendered key — grouping, the incremental accumulator, the serving
    snapshot, columnar workers — builds it through here.
    """
    return DELIMITER.join(
        (str(user_id), profile_state, profile_county, tweet_state, tweet_county)
    )


def merged_sort_key(tie_break) -> Callable[[object], object]:
    """The ordering key for one user's merged strings.

    Count descending, then the ``tie_break``
    (:class:`~repro.grouping.merge.TieBreak`) policy over the rendered
    string — the exact ordering of paper Table II.  All three grouping
    implementations (batch dict, incremental, columnar) sort with the
    key returned here, which is what makes their outputs interchangeable
    byte for byte.  Rows must carry ``count``, ``is_matched``, and a
    ``record`` with ``render()`` (the :class:`~repro.grouping.merge
    .MergedString` surface).
    """
    from repro.grouping.merge import TieBreak

    def sort_key(row) -> object:
        if tie_break is TieBreak.STRING_ASC:
            tail: object = row.record.render()
        elif tie_break is TieBreak.STRING_DESC:
            tail = tuple(-ord(ch) for ch in row.record.render())
        elif tie_break is TieBreak.MATCHED_FIRST:
            tail = (0 if row.is_matched else 1, row.record.render())
        else:  # MATCHED_LAST
            tail = (1 if row.is_matched else 0, row.record.render())
        return (-row.count, tail)

    return sort_key
