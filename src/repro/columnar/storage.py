"""The columnar study artifact: a mappable ``.cstudy`` buffer file.

:func:`~repro.analysis.serialization.save_study` writes a human-readable
JSON document; this module writes the same study as a
:mod:`repro.columnar.share` buffer file — interner table plus fixed-width
int64 columns — that the serving layer can ``mmap`` and reload without
parsing, decoding, or object churn.  The two formats are interchangeable:
:func:`load_study_columnar` restores a :class:`StudyResult` whose
``study_to_json`` text is byte-identical to the source study's.

Sections (all ids index the ``interner`` string table):

* ``meta`` — JSON blob: format version, dataset name, funnel, api stats;
* ``interner.offsets`` / ``interner.bytes`` — the canonical
  :func:`~repro.columnar.interner.study_interner` table;
* ``obs.*`` — observation columns (user id, interned profile/tweet
  district ids, timestamp);
* ``merged.*`` — per-user merged rows *in final tie-broken order*, the
  order the study's groupings already carry, so loading never needs a
  tie-break policy (mirroring ``load_study``'s trust-the-row-order
  semantics);
* ``districts.*`` — per-user profile district keys as interned ids.
"""

from __future__ import annotations

import json
from array import array
from pathlib import Path
from typing import Any

from repro.analysis.correlation import StudyResult
from repro.columnar.grouping import groupings_from_packed
from repro.columnar.interner import StringInterner, study_interner
from repro.columnar.share import MAGIC, BufferReader, BufferWriter
from repro.datasets.refine import RefinementFunnel
from repro.errors import StorageError
from repro.geo.gazetteer import GazetteerBackend
from repro.grouping.stats import compute_group_statistics
from repro.twitter.models import GeotaggedObservation
from repro.yahooapi.client import ClientStats

#: Version stamp embedded in the ``meta`` section.
COLUMNAR_FORMAT_VERSION = 1


def is_columnar_study(path: str | Path) -> bool:
    """True when ``path`` starts with the columnar buffer magic."""
    try:
        with Path(path).open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError as exc:
        raise StorageError(f"cannot probe study file {path}: {exc}") from exc


def save_study_columnar(study: StudyResult, path: str | Path) -> None:
    """Write ``study`` to ``path`` as a mappable columnar buffer file.

    The interner is the canonical study interner (observations swept
    first, then profile districts), so every consumer that re-derives a
    table from the same study content agrees on the ids.
    """
    interner = study_interner(study.observations, study.profile_districts)
    intern = interner.intern

    writer = BufferWriter()

    meta: dict[str, Any] = {
        "format_version": COLUMNAR_FORMAT_VERSION,
        "dataset_name": study.dataset_name,
        "funnel": study.funnel.as_dict(),
        "api_stats": study.api_stats.snapshot(),
    }
    writer.add_blob("meta", json.dumps(meta, ensure_ascii=False).encode("utf-8"))

    obs_users = array("q")
    obs_ps = array("q")
    obs_pc = array("q")
    obs_ts = array("q")
    obs_tc = array("q")
    obs_t = array("q")
    for observation in study.observations:
        obs_users.append(observation.user_id)
        obs_ps.append(intern(observation.profile_state))
        obs_pc.append(intern(observation.profile_county))
        obs_ts.append(intern(observation.tweet_state))
        obs_tc.append(intern(observation.tweet_county))
        obs_t.append(observation.timestamp_ms)
    writer.add_i64("obs.user_ids", obs_users)
    writer.add_i64("obs.profile_states", obs_ps)
    writer.add_i64("obs.profile_counties", obs_pc)
    writer.add_i64("obs.tweet_states", obs_ts)
    writer.add_i64("obs.tweet_counties", obs_tc)
    writer.add_i64("obs.timestamps_ms", obs_t)

    merged_users = array("q")
    merged_rows_per_user = array("q")
    merged_ps = array("q")
    merged_pc = array("q")
    merged_ts = array("q")
    merged_tc = array("q")
    merged_counts = array("q")
    for user_id, grouping in study.groupings.items():
        merged_users.append(user_id)
        merged_rows_per_user.append(len(grouping.merged))
        for row in grouping.merged:
            merged_ps.append(intern(row.record.profile_state))
            merged_pc.append(intern(row.record.profile_county))
            merged_ts.append(intern(row.record.tweet_state))
            merged_tc.append(intern(row.record.tweet_county))
            merged_counts.append(row.count)
    writer.add_i64("merged.user_ids", merged_users)
    writer.add_i64("merged.rows_per_user", merged_rows_per_user)
    writer.add_i64("merged.profile_states", merged_ps)
    writer.add_i64("merged.profile_counties", merged_pc)
    writer.add_i64("merged.tweet_states", merged_ts)
    writer.add_i64("merged.tweet_counties", merged_tc)
    writer.add_i64("merged.counts", merged_counts)

    district_users = array("q")
    district_states = array("q")
    district_names = array("q")
    for user_id, district in study.profile_districts.items():
        district_users.append(user_id)
        district_states.append(intern(district.state))
        district_names.append(intern(district.name))
    writer.add_i64("districts.user_ids", district_users)
    writer.add_i64("districts.states", district_states)
    writer.add_i64("districts.names", district_names)

    # The interner is written last but decoded first on load: sweeping
    # the merged rows and districts above can only re-encounter strings
    # the canonical sweep already assigned, so the table is final here.
    writer.add_strings("interner", interner.to_lines())
    writer.write(path)


def load_study_columnar(path: str | Path, gazetteer: GazetteerBackend) -> StudyResult:
    """Restore a study written by :func:`save_study_columnar`.

    Semantics mirror :func:`~repro.analysis.serialization.load_study`:
    stored merged-row order is trusted (it is the final tie-broken
    order), classification and statistics are recomputed, and district
    keys resolve against the live ``gazetteer``.

    Raises:
        StorageError: on bad magic, version mismatch, or corrupt content.
    """
    with BufferReader(path) as reader:
        try:
            meta = json.loads(bytes(reader.blob("meta")))
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt meta section in {path}: {exc}") from exc
        version = meta.get("format_version")
        if version != COLUMNAR_FORMAT_VERSION:
            raise StorageError(
                f"unsupported columnar study format version: {version}"
            )

        interner = StringInterner.from_lines(reader.strings("interner").all())
        lookup = interner.lookup

        observations = [
            GeotaggedObservation(
                user_id=uid,
                profile_state=lookup(ps),
                profile_county=lookup(pc),
                tweet_state=lookup(ts),
                tweet_county=lookup(tc),
                timestamp_ms=tms,
            )
            for uid, ps, pc, ts, tc, tms in zip(
                reader.i64("obs.user_ids"),
                reader.i64("obs.profile_states"),
                reader.i64("obs.profile_counties"),
                reader.i64("obs.tweet_states"),
                reader.i64("obs.tweet_counties"),
                reader.i64("obs.timestamps_ms"),
            )
        ]

        # Rows were stored in final tie-broken order under whatever
        # policy produced the study; trust that order (tie_break=None),
        # exactly as the JSON loader trusts its stored row order.
        packed = {
            "user_ids": reader.i64("merged.user_ids"),
            "rows_per_user": reader.i64("merged.rows_per_user"),
            "profile_states": reader.i64("merged.profile_states"),
            "profile_counties": reader.i64("merged.profile_counties"),
            "tweet_states": reader.i64("merged.tweet_states"),
            "tweet_counties": reader.i64("merged.tweet_counties"),
            "counts": reader.i64("merged.counts"),
        }
        groupings = groupings_from_packed(packed, lookup, tie_break=None)

        profile_districts = {
            uid: gazetteer.get(lookup(state_id), lookup(name_id))
            for uid, state_id, name_id in zip(
                reader.i64("districts.user_ids"),
                reader.i64("districts.states"),
                reader.i64("districts.names"),
            )
        }

    funnel_data = dict(meta["funnel"])
    status_counts = funnel_data.pop("profile_status_counts", {})
    funnel = RefinementFunnel(**funnel_data)
    funnel.profile_status_counts.update(status_counts)

    stats_data = meta.get("api_stats", {})
    api_stats = ClientStats(
        requests=int(stats_data.get("requests", 0)),
        cache_hits=int(stats_data.get("cache_hits", 0)),
        failures_injected=int(stats_data.get("failures_injected", 0)),
        no_result=int(stats_data.get("no_result", 0)),
        retries=int(stats_data.get("retries", 0)),
        retry_exhausted=int(stats_data.get("retry_exhausted", 0)),
        simulated_latency_s=float(stats_data.get("simulated_latency_s", 0.0)),
    )

    return StudyResult(
        dataset_name=meta["dataset_name"],
        funnel=funnel,
        observations=observations,
        groupings=groupings,
        statistics=compute_group_statistics(groupings.values()),
        profile_districts=profile_districts,
        api_stats=api_stats,
    )
