"""Grouping over interned columns: integer sort + run-length counting.

The dict path builds one :class:`~repro.grouping.strings.LocationString`
object per tweet and counts them in per-user ``Counter`` dicts — object
construction, field validation, and string hashing on every row.  The
columnar path packs each row's five interned ids into a single integer,
sorts the packed keys, and run-length counts the sorted runs; only the
*distinct* merged rows (orders of magnitude fewer than tweets on real
data) are ever materialised back into objects for the final, paper-exact
:class:`~repro.grouping.topk.UserGrouping`.

Byte-identity with :func:`~repro.grouping.topk.group_users` is a theorem
of two facts, both property-tested:

* user output order — packed keys lead with each user's *first-encounter
  index*, so the sorted runs visit users in exactly the order the dict
  path's insertion-ordered ``per_user`` dict does;
* row order — distinct rows are sorted with the shared
  :func:`~repro.columnar.keys.merged_sort_key`, a total order (rendered
  strings are unique per user), so counting order cannot leak through.

:class:`ColumnarGrouper` is the streaming counterpart: per-user counters
keyed by interned-id tuples instead of record objects, drop-in
compatible with :class:`~repro.grouping.incremental.IncrementalGrouper`.
"""

from __future__ import annotations

from array import array
from collections import Counter, defaultdict

from repro.columnar.interner import StringInterner
from repro.columnar.keys import merged_sort_key
from repro.columnar.records import MatchColumns
from repro.columnar.share import BufferReader, ShardSlice
from repro.errors import InsufficientDataError
from repro.grouping.merge import MergedString, TieBreak
from repro.grouping.strings import LocationString
from repro.grouping.topk import UserGrouping, classify_rows


def merged_rows_packed(
    columns: MatchColumns, start: int = 0, stop: int | None = None
) -> dict[str, array]:
    """Merge one row range into packed result columns (the worker half).

    Sorts the packed ``(user-order, profile, tweet)`` integer keys of
    ``[start, stop)`` and run-length counts them.  The result is five
    fixed-width columns plus two per-user columns — exactly what a shard
    worker sends back to the parent instead of pickled object graphs:

    * ``user_ids`` / ``rows_per_user`` — one entry per user, in
      first-encounter order;
    * ``profile_states`` / ``profile_counties`` / ``tweet_states`` /
      ``tweet_counties`` / ``counts`` — one entry per distinct merged
      row, users concatenated in order, each user's rows *unsorted by
      policy* (count-and-tie-break ordering happens where the strings
      live; see :func:`groupings_from_packed`).

    Within a user the distinct rows appear in packed-integer order —
    deterministic, but not the paper's ordering; the parent applies the
    tie-break sort when it materialises strings.
    """
    stop = len(columns) if stop is None else stop
    user_ids = columns.user_ids
    profile_states = columns.profile_states
    profile_counties = columns.profile_counties
    tweet_states = columns.tweet_states
    tweet_counties = columns.tweet_counties

    # Dense first-encounter index per user keeps the output in the dict
    # path's insertion order while letting one global integer sort group
    # every user's rows together.  Iterating zipped column slices (cheap
    # views for mapped columns, one C-level copy for owned arrays) beats
    # five indexed reads per row by a wide margin.
    order: dict[int, int] = {}
    order_get = order.get
    base = len(columns.interner) + 1
    packed: list[int] = []
    append = packed.append
    for user_id, ps, pc, ts, tc in zip(
        user_ids[start:stop],
        profile_states[start:stop],
        profile_counties[start:stop],
        tweet_states[start:stop],
        tweet_counties[start:stop],
    ):
        seq = order_get(user_id)
        if seq is None:
            seq = len(order)
            order[user_id] = seq
        append((((seq * base + ps) * base + pc) * base + ts) * base + tc)
    packed.sort()

    by_seq = list(order)  # insertion order: seq -> user_id

    out_users = array("q")
    out_rows_per_user = array("q")
    out_ps = array("q")
    out_pc = array("q")
    out_ts = array("q")
    out_tc = array("q")
    out_counts = array("q")

    previous: int | None = None
    run = 0
    current_seq = -1
    rows_for_current = 0

    def flush_run(key: int, count: int) -> None:
        nonlocal current_seq, rows_for_current
        tc = key % base
        key //= base
        ts = key % base
        key //= base
        pc = key % base
        key //= base
        ps = key % base
        seq = key // base
        if seq != current_seq:
            if current_seq >= 0:
                out_users.append(by_seq[current_seq])
                out_rows_per_user.append(rows_for_current)
            current_seq = seq
            rows_for_current = 0
        out_ps.append(ps)
        out_pc.append(pc)
        out_ts.append(ts)
        out_tc.append(tc)
        out_counts.append(count)
        rows_for_current += 1

    for key in packed:
        if key == previous:
            run += 1
        else:
            if previous is not None:
                flush_run(previous, run)
            previous = key
            run = 1
    if previous is not None:
        flush_run(previous, run)
    if current_seq >= 0:
        out_users.append(by_seq[current_seq])
        out_rows_per_user.append(rows_for_current)

    return {
        "user_ids": out_users,
        "rows_per_user": out_rows_per_user,
        "profile_states": out_ps,
        "profile_counties": out_pc,
        "tweet_states": out_ts,
        "tweet_counties": out_tc,
        "counts": out_counts,
    }


#: The column names a packed merged-rows dict carries, in merge order.
PACKED_FIELDS = (
    "user_ids",
    "rows_per_user",
    "profile_states",
    "profile_counties",
    "tweet_states",
    "tweet_counties",
    "counts",
)


def concat_packed(parts: list[dict[str, array]]) -> dict[str, array]:
    """Concatenate packed merged columns in shard order.

    Shard slices never split a user, so concatenation preserves both
    user uniqueness and first-encounter order — the parent's merge step
    is seven ``array.extend`` calls, not an object-graph walk.
    """
    merged: dict[str, array] = {name: array("q") for name in PACKED_FIELDS}
    for part in parts:
        for name in PACKED_FIELDS:
            merged[name].extend(part[name])
    return merged


def group_slices_shard(
    slices: list[ShardSlice], payload: object
) -> dict[str, array]:
    """Shard worker: merge row slices of a mapped column buffer.

    The mmap counterpart of the engine's pickled-chunk grouping worker:
    the chunk is a list of :class:`~repro.columnar.share.ShardSlice` row
    ranges and the payload is the buffer file's path — the worker maps
    the file (zero-copy, shared page cache across the pool), merges its
    ranges with :func:`merged_rows_packed`, and returns owned packed
    arrays, so neither inputs nor results ever pickle an object graph.
    Module-level so the process backend can pickle it.
    """
    (path,) = payload  # type: ignore[misc]
    live = [item for item in slices if len(item)]
    if not live:
        return {name: array("q") for name in PACKED_FIELDS}
    with BufferReader(path) as reader:
        columns = MatchColumns.mapped(reader)
        parts = [
            merged_rows_packed(columns, item.start, item.stop) for item in live
        ]
        del columns
    return concat_packed(parts) if len(parts) > 1 else parts[0]


def groupings_from_packed(
    packed: dict[str, array],
    lookup,
    tie_break: TieBreak | None,
) -> dict[int, UserGrouping]:
    """Materialise packed merged columns into per-user groupings.

    The parent half of the sharded protocol: walk the per-user runs,
    rebuild each distinct row as a :class:`MergedString` via ``lookup``
    (an interner or lazy string table ``lookup(id) -> str``), order with
    the shared tie-break key, and classify.  Output dict order follows
    the packed user order — the dict path's first-encounter order.

    Pass ``tie_break=None`` to trust the packed row order instead of
    re-sorting — the columnar study loader does this because its rows
    were stored in final order under a policy it no longer knows.
    """
    sort_key = None if tie_break is None else merged_sort_key(tie_break)
    groupings: dict[int, UserGrouping] = {}
    profile_states = packed["profile_states"]
    profile_counties = packed["profile_counties"]
    tweet_states = packed["tweet_states"]
    tweet_counties = packed["tweet_counties"]
    counts = packed["counts"]
    cursor = 0
    for user_id, row_count in zip(packed["user_ids"], packed["rows_per_user"]):
        rows = [
            MergedString(
                record=LocationString(
                    user_id=user_id,
                    profile_state=lookup(profile_states[index]),
                    profile_county=lookup(profile_counties[index]),
                    tweet_state=lookup(tweet_states[index]),
                    tweet_county=lookup(tweet_counties[index]),
                ),
                count=counts[index],
            )
            for index in range(cursor, cursor + row_count)
        ]
        cursor += row_count
        if sort_key is not None:
            rows.sort(key=sort_key)
        groupings[user_id] = classify_rows(user_id, rows)
    return groupings


def columnar_group_users(
    columns: MatchColumns,
    tie_break: TieBreak = TieBreak.STRING_ASC,
) -> dict[int, UserGrouping]:
    """Run the full grouping method over a columnar batch.

    Drop-in equivalent of :func:`~repro.grouping.topk.group_users` over
    packed columns — identical output, dict order included (property-
    tested in ``tests/columnar/test_grouping_equivalence.py``).
    """
    packed = merged_rows_packed(columns)
    return groupings_from_packed(packed, columns.interner.lookup, tie_break)


class ColumnarGrouper:
    """Streaming grouping state over interned ids — the columnar
    counterpart of :class:`~repro.grouping.incremental.IncrementalGrouper`.

    Observations fold into per-user counters keyed by 4-tuples of
    interned ids (profile state/county, tweet state/county): no record
    objects, no validation, no string hashing on the hot path.  Strings
    are materialised only when a user is (re)classified or the state is
    exported — and classification output is byte-identical to the
    incremental and batch paths (same rows, same shared sort key, same
    :func:`~repro.grouping.topk.classify_rows`).

    Args:
        tie_break: Equal-count ordering policy (matches the batch path).
        interner: Share a table with the surrounding layer (the
            accumulator's study interner); a private one by default.
    """

    def __init__(
        self,
        tie_break: TieBreak = TieBreak.STRING_ASC,
        interner: StringInterner | None = None,
    ):
        self._tie_break = tie_break
        self._interner = interner if interner is not None else StringInterner()
        self._counts: dict[int, Counter[tuple[int, int, int, int]]] = defaultdict(
            Counter
        )

    @property
    def interner(self) -> StringInterner:
        """The string table the counters' id tuples index into."""
        return self._interner

    # ---------------------------------------------------------------- ingest
    def add(self, observation) -> None:
        """Fold one observation into the per-user interned counters."""
        intern = self._interner.intern
        self._counts[observation.user_id][
            (
                intern(observation.profile_state),
                intern(observation.profile_county),
                intern(observation.tweet_state),
                intern(observation.tweet_county),
            )
        ] += 1

    def add_many(self, observations) -> None:
        """Fold a batch of observations in."""
        for observation in observations:
            self.add(observation)

    # ----------------------------------------------------------------- query
    @property
    def user_ids(self) -> list[int]:
        """Users with at least one observation, sorted."""
        return sorted(self._counts)

    def observation_count(self, user_id: int) -> int:
        """Observations folded in for ``user_id`` (0 if unseen)."""
        if user_id not in self._counts:
            return 0
        return sum(self._counts[user_id].values())

    def classify(self, user_id: int) -> UserGrouping:
        """The user's current grouping (identical to the batch result).

        Raises:
            InsufficientDataError: for a user with no observations.
        """
        counts = self._counts.get(user_id)
        if not counts:
            raise InsufficientDataError(f"user {user_id} has no observations")
        lookup = self._interner.lookup
        rows = [
            MergedString(
                record=LocationString(
                    user_id=user_id,
                    profile_state=lookup(ps),
                    profile_county=lookup(pc),
                    tweet_state=lookup(ts),
                    tweet_county=lookup(tc),
                ),
                count=count,
            )
            for (ps, pc, ts, tc), count in counts.items()
        ]
        rows.sort(key=merged_sort_key(self._tie_break))
        return classify_rows(user_id, rows)

    def group_of(self, user_id: int):
        """Current group, or ``None`` for unseen users (no raising)."""
        if user_id not in self._counts or not self._counts[user_id]:
            return None
        return self.classify(user_id).group

    def classify_all(self) -> dict[int, UserGrouping]:
        """Current groupings for every seen user."""
        return {user_id: self.classify(user_id) for user_id in self._counts}

    def export_counts(self) -> dict[int, dict[str, int]]:
        """Canonical view of the per-user merge counters.

        Identical to :meth:`IncrementalGrouper.export_counts` — rendered
        record form, users ascending, rows sorted by rendered string —
        so checkpoint digests cannot tell the implementations apart.
        """
        lookup = self._interner.lookup
        exported: dict[int, dict[str, int]] = {}
        for user_id in sorted(self._counts):
            rendered = [
                (
                    LocationString(
                        user_id=user_id,
                        profile_state=lookup(ps),
                        profile_county=lookup(pc),
                        tweet_state=lookup(ts),
                        tweet_county=lookup(tc),
                    ).render(),
                    count,
                )
                for (ps, pc, ts, tc), count in self._counts[user_id].items()
            ]
            rendered.sort(key=lambda pair: pair[0])
            exported[user_id] = dict(rendered)
        return exported
