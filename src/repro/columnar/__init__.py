"""Columnar raw-speed core: interned ids, packed columns, shared buffers.

The study's hot paths — grouping, sharding, streaming folds, serving
lookups — all shuffle the same few thousand location strings through
object graphs.  This package gives every layer one alternative
representation: a :class:`StringInterner` turns each string into a
stable dense integer once, :class:`MatchColumns` stores match records as
parallel int64 columns over that table, and :mod:`repro.columnar.share`
lays those columns out in a single mappable file so the process backend
ships row *ranges* instead of pickled shards.

Grouping over this representation (:func:`columnar_group_users`) is an
integer sort plus run-length count, property-tested byte-identical to
the dict path; :mod:`repro.columnar.storage` persists whole studies in
the same flat form for zero-parse serving reloads.

Exports resolve lazily (PEP 562): the base grouping modules import
:mod:`repro.columnar.keys` at module load, so the package body must not
eagerly pull in the higher layers it is imported *by*.
"""

from importlib import import_module

_EXPORTS = {
    "BufferReader": "repro.columnar.share",
    "BufferWriter": "repro.columnar.share",
    "COLUMNAR_FORMAT_VERSION": "repro.columnar.storage",
    "ColumnarGrouper": "repro.columnar.grouping",
    "DELIMITER": "repro.columnar.keys",
    "MAGIC": "repro.columnar.share",
    "MatchColumns": "repro.columnar.records",
    "PACKED_FIELDS": "repro.columnar.grouping",
    "ShardSlice": "repro.columnar.share",
    "StringInterner": "repro.columnar.interner",
    "StringTable": "repro.columnar.share",
    "TYPECODE": "repro.columnar.records",
    "columnar_group_users": "repro.columnar.grouping",
    "concat_packed": "repro.columnar.grouping",
    "group_slices_shard": "repro.columnar.grouping",
    "groupings_from_packed": "repro.columnar.grouping",
    "is_columnar_study": "repro.columnar.storage",
    "load_study_columnar": "repro.columnar.storage",
    "location_key": "repro.columnar.keys",
    "merged_rows_packed": "repro.columnar.grouping",
    "merged_sort_key": "repro.columnar.keys",
    "save_study_columnar": "repro.columnar.storage",
    "study_interner": "repro.columnar.interner",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve a public export from its defining submodule on first use."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    """Expose the lazy exports to introspection alongside the defaults."""
    return sorted(set(globals()) | set(_EXPORTS))
