"""Zero-copy buffer sharing: flat sections in one file, mapped by workers.

The process backend used to ship every shard its inputs by pickling
Python object graphs through the pool's pipe — the overhead that made
BENCH_parallel *lose* to serial on small boxes.  A :class:`BufferWriter`
instead lays the shared inputs out once as named sections in a single
file:

* ``i64`` sections — ``array('q')`` columns written as raw bytes;
* ``f64`` sections — ``array('d')`` columns (centroid/polygon coordinates);
* ``blob`` sections — one UTF-8 byte blob (string tables, JSON headers).

Workers open the file with :class:`BufferReader`, which ``mmap``\\ s it
read-only and hands back :class:`memoryview` slices — ``.cast('q')`` for
int64 columns — so N workers share one page cache copy of the data and a
shard's "payload" over the pipe shrinks to a path plus a row range.

The layout is deliberately boring::

    magic "RCOLBUF1" | 8-byte LE header length | header JSON | padding
    | section bytes (each 8-byte aligned) ...

The header records byte order; :class:`BufferReader` refuses a file
written on a machine with a different one (these are same-host temp
files and local artifacts, not portable archives).
"""

from __future__ import annotations

import json
import mmap
import sys
from array import array
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StorageError

#: File magic for columnar buffer files.
MAGIC = b"RCOLBUF1"

_ALIGN = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True, slots=True)
class ShardSlice:
    """One shard's half-open row range into a shared buffer file.

    This — not a pickled chunk of objects — is what travels to a worker:
    the worker maps the buffer and reads only ``[start, stop)``.
    """

    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


class BufferWriter:
    """Accumulates named sections and writes them as one buffer file."""

    def __init__(self) -> None:
        self._sections: list[tuple[str, str, bytes]] = []
        self._names: set[str] = set()

    def _add(self, name: str, kind: str, payload: bytes) -> None:
        if name in self._names:
            raise StorageError(f"duplicate buffer section {name!r}")
        self._names.add(name)
        self._sections.append((name, kind, payload))

    def add_i64(self, name: str, values) -> None:
        """Add an int64 column (any iterable of ints, or ``array('q')``)."""
        column = values if isinstance(values, array) else array("q", values)
        if column.typecode != "q":
            raise StorageError(
                f"section {name!r}: expected typecode 'q', got {column.typecode!r}"
            )
        self._add(name, "i64", column.tobytes())

    def add_f64(self, name: str, values) -> None:
        """Add a float64 column (any iterable of floats, or ``array('d')``).

        Float64 round-trips exactly through ``array('d')``, so coordinates
        written here compare bit-identical after a reload — the property
        the gazetteer artifact's byte-identity guarantee rests on.
        """
        column = values if isinstance(values, array) else array("d", values)
        if column.typecode != "d":
            raise StorageError(
                f"section {name!r}: expected typecode 'd', got {column.typecode!r}"
            )
        self._add(name, "f64", column.tobytes())

    def add_blob(self, name: str, payload: bytes) -> None:
        """Add an opaque byte blob (string tables, JSON metadata)."""
        self._add(name, "blob", bytes(payload))

    def add_strings(self, name: str, strings) -> None:
        """Add a string table as two sections: offsets + UTF-8 blob.

        Written as ``<name>.offsets`` (n+1 int64 byte offsets) and
        ``<name>.bytes``; read back with :meth:`BufferReader.strings`.
        """
        offsets = array("q", [0])
        chunks: list[bytes] = []
        total = 0
        for text in strings:
            encoded = text.encode("utf-8")
            chunks.append(encoded)
            total += len(encoded)
            offsets.append(total)
        self.add_i64(f"{name}.offsets", offsets)
        self.add_blob(f"{name}.bytes", b"".join(chunks))

    def write(self, path: str | Path) -> Path:
        """Write every section to ``path``; returns the path.

        Section offsets are stored *relative to the aligned end of the
        header*, so the header's own size never feeds back into the
        offsets it records — the reader recomputes the same base from
        the header length.
        """
        relative = 0
        entries: list[tuple[str, str, bytes, int]] = []
        for name, kind, payload in self._sections:
            relative = _aligned(relative)
            entries.append((name, kind, payload, relative))
            relative += len(payload)
        header = {
            "byteorder": sys.byteorder,
            "sections": {
                name: {"kind": kind, "offset": offset, "length": len(payload)}
                for name, kind, payload, offset in entries
            },
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        base = _aligned(len(MAGIC) + 8 + len(header_bytes))

        target = Path(path)
        with target.open("wb") as handle:
            handle.write(MAGIC)
            handle.write(len(header_bytes).to_bytes(8, "little"))
            handle.write(header_bytes)
            position = len(MAGIC) + 8 + len(header_bytes)
            for name, kind, payload, offset in entries:
                absolute = base + offset
                handle.write(b"\0" * (absolute - position))
                handle.write(payload)
                position = absolute + len(payload)
        return target


class BufferReader:
    """A read-only, memory-mapped view over a :class:`BufferWriter` file.

    Sections come back as zero-copy :class:`memoryview` slices of one
    shared mapping; close the reader only after every view derived from
    it has been dropped.  Usable as a context manager.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        try:
            with self._path.open("rb") as handle:
                self._map = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise StorageError(f"cannot map buffer file {path}: {exc}") from exc
        self._view: memoryview | None = memoryview(self._map)
        try:
            view = self._view
            if bytes(view[: len(MAGIC)]) != MAGIC:
                raise StorageError(f"{path} is not a columnar buffer file")
            header_len = int.from_bytes(view[len(MAGIC) : len(MAGIC) + 8], "little")
            try:
                header = json.loads(
                    bytes(view[len(MAGIC) + 8 : len(MAGIC) + 8 + header_len])
                )
            except json.JSONDecodeError as exc:
                raise StorageError(
                    f"corrupt buffer header in {path}: {exc}"
                ) from exc
            if header.get("byteorder") != sys.byteorder:
                raise StorageError(
                    f"buffer file {path} was written on a "
                    f"{header.get('byteorder')}-endian machine; this one is "
                    f"{sys.byteorder}-endian"
                )
        except StorageError:
            self.close()
            raise
        self._base = _aligned(len(MAGIC) + 8 + header_len)
        self._sections: dict[str, dict[str, object]] = header["sections"]

    @property
    def path(self) -> Path:
        """The mapped file."""
        return self._path

    @property
    def section_names(self) -> tuple[str, ...]:
        """Every section in the file, sorted."""
        return tuple(sorted(self._sections))

    def _section(self, name: str, kind: str) -> memoryview:
        entry = self._sections.get(name)
        if entry is None:
            raise StorageError(f"buffer file {self._path} has no section {name!r}")
        if entry["kind"] != kind:
            raise StorageError(
                f"section {name!r} is {entry['kind']!r}, not {kind!r}"
            )
        offset = self._base + int(entry["offset"])  # type: ignore[arg-type]
        length = int(entry["length"])  # type: ignore[arg-type]
        return self._view[offset : offset + length]

    def i64(self, name: str) -> memoryview:
        """Zero-copy int64 view of section ``name`` (supports len/index/slice)."""
        return self._section(name, "i64").cast("q")

    def f64(self, name: str) -> memoryview:
        """Zero-copy float64 view of section ``name`` (supports len/index/slice)."""
        return self._section(name, "f64").cast("d")

    def blob(self, name: str) -> memoryview:
        """Zero-copy byte view of blob section ``name``."""
        return self._section(name, "blob")

    def strings(self, name: str) -> "StringTable":
        """Lazy string table over ``<name>.offsets`` / ``<name>.bytes``."""
        return StringTable(self.i64(f"{name}.offsets"), self.blob(f"{name}.bytes"))

    def close(self) -> None:
        """Drop the mapping (idempotent, best-effort).

        If section views are still alive the OS mapping cannot be torn
        down yet; the reader releases its own references and the mapping
        closes when the last outstanding view is garbage-collected —
        safe for a read-only map, and far friendlier than raising out of
        a ``with`` block mid-load.
        """
        view = getattr(self, "_view", None)
        if view is not None:
            view.release()
            self._view = None
        mapping = getattr(self, "_map", None)
        if mapping is not None:
            self._map = None  # type: ignore[assignment]
            try:
                mapping.close()
            except BufferError:
                pass  # exported section views keep the mapping alive

    def __enter__(self) -> "BufferReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class StringTable:
    """Decode-on-demand view of an interner table inside a buffer.

    Workers touch only the handful of strings their shard's merged rows
    actually need — the rest of the table is never decoded, only mapped.
    Decoded strings are memoised per table instance.
    """

    __slots__ = ("_offsets", "_bytes", "_cache")

    def __init__(self, offsets: memoryview, blob: memoryview):
        self._offsets = offsets
        self._bytes = blob
        self._cache: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def lookup(self, string_id: int) -> str:
        """The string behind ``string_id`` (decoded lazily, memoised).

        Raises:
            StorageError: for an id outside the table.
        """
        cached = self._cache.get(string_id)
        if cached is not None:
            return cached
        if not 0 <= string_id < len(self):
            raise StorageError(
                f"string id {string_id} out of range (table holds {len(self)})"
            )
        start = self._offsets[string_id]
        stop = self._offsets[string_id + 1]
        text = bytes(self._bytes[start:stop]).decode("utf-8")
        self._cache[string_id] = text
        return text

    def all(self) -> list[str]:
        """Decode the whole table, in id order."""
        return [self.lookup(index) for index in range(len(self))]
