"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``study``       — build a dataset and run the correlation study
* ``experiment``  — render one of the E1-E10 artefacts
* ``dataset``     — build a dataset and persist it as JSONL
* ``localize``    — run the reliability-weighted localisation experiment
* ``engine``      — staged-engine introspection (``engine trace``)
* ``stream``      — live firehose ingestion with checkpoint/resume
* ``serve``       — online query API over a saved study snapshot
* ``live``        — ingestion + serving in one process with delta snapshots
* ``fleet``       — multi-replica serving with health-gated snapshot rollout
* ``geodata``     — compile / inspect mmap gazetteer artifacts (RGAZ1)

Everything is deterministic given ``--seed``; ``--shards``/``--backend``
change only how the study executes, never its result.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from urllib.parse import quote

from repro.analysis.correlation import run_study
from repro.analysis.regional import regional_breakdown, render_regional_breakdown
from repro.analysis.reliability import ReliabilityTable
from repro.analysis.report import (
    render_fig6,
    render_fig7,
    render_funnel,
    render_tweet_distribution,
)
from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.analysis.serialization import load_study, save_study
from repro.analysis.significance import bootstrap_share_intervals
from repro.analysis.stability import render_stability, split_half_stability
from repro.engine import EngineConfig, MetricsRegistry, RunContext, render_trace
from repro.geodata.prepare import prepare_artifact
from repro.geodata.artifact import gazetteer_artifact_info
from repro.geodata.registry import dataset_gazetteer
from repro.datasets.korean import KoreanDatasetConfig, build_korean_dataset
from repro.datasets.ladygaga import LadyGagaDatasetConfig, build_ladygaga_dataset
from repro.errors import (
    FleetError,
    ReplicaUnreachableError,
    ReproError,
    ShardExecutionError,
    StorageError,
)
from repro.fleet import (
    FleetController,
    FleetFront,
    PooledReplicaClient,
    ReplicaSet,
    ReplicaSupervisor,
    RolloutConfig,
    SnapshotPublisher,
)
from repro.events.evaluation import (
    LocalizationExperiment,
    make_korean_scenarios,
    render_localization_table,
)
from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.live import DeltaSnapshotBuilder, LiveConfig, LiveStudyPipeline
from repro.pipelines.experiments import EXPERIMENTS, run_experiment
from repro.serving import (
    AsyncStudyServer,
    ServingApp,
    SnapshotStore,
    StudyServer,
    TokenBucket,
    install_reload_signal,
    load_snapshot,
    render_serving_summary,
    start_background_server,
)
from repro.streaming import (
    BackpressurePolicy,
    BoundedTweetQueue,
    CheckpointLog,
    FirehoseSource,
    StreamConfig,
    StreamConsumer,
    StreamPump,
)
from repro.twitter.tweetgen import CollectionWindow


def _build_dataset(args: argparse.Namespace):
    """Build the dataset selected by ``args`` (korean | ladygaga)."""
    window = CollectionWindow(start_ms=1_314_835_200_000, days=args.days)
    if args.dataset == "korean":
        config = KoreanDatasetConfig(
            population_size=args.population,
            crawl_limit=min(args.users, args.population),
            window=window,
            seed=args.seed,
            use_api_timelines=False,
        )
        return build_korean_dataset(config)
    config = LadyGagaDatasetConfig(
        population_size=args.population, window=window, seed=args.seed
    )
    return build_ladygaga_dataset(config)


def _run_engine_study(args: argparse.Namespace):
    """Build the dataset and run the study with the CLI's engine options."""
    dataset = _build_dataset(args)
    context = RunContext(dataset_name=args.dataset, seed=args.seed)
    if hasattr(dataset, "crawl"):
        context.metrics.register_source("crawl", dataset.crawl.snapshot)
    else:
        context.metrics.register_source("crawl", dataset.stream_stats.snapshot)
    study = run_study(
        dataset.users,
        dataset.tweets,
        dataset.gazetteer,
        dataset_name=args.dataset,
        engine_config=EngineConfig(
            shards=getattr(args, "shards", 1),
            backend=getattr(args, "backend", "serial"),
            cache_dir=getattr(args, "cache_dir", None) or None,
            columnar=getattr(args, "columnar", True),
        ),
        context=context,
    )
    return dataset, study, context


def _cmd_study(args: argparse.Namespace) -> int:
    dataset, study, context = _run_engine_study(args)
    print(render_funnel(study.funnel))
    print()
    print(render_fig7(study.statistics))
    print()
    print(render_fig6(study.statistics))
    print()
    print(render_tweet_distribution(study.statistics))
    print()
    table = ReliabilityTable.from_statistics(study.statistics)
    print("reliability weight factors:", table.as_dict())
    if args.metrics:
        print()
        print(render_trace(context))
    if args.save:
        save_study(study, args.save)
        print(f"study saved to {args.save}")
    return 0


def _cmd_engine_trace(args: argparse.Namespace) -> int:
    _, _, context = _run_engine_study(args)
    print(render_trace(context))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    gazetteer = dataset_gazetteer(args.gazetteer)
    study = load_study(args.study, gazetteer)
    print(f"loaded study {study.dataset_name!r}: "
          f"{study.statistics.total_users} users, "
          f"{len(study.observations)} observations")
    print()
    print(render_fig7(study.statistics))
    print()
    intervals = bootstrap_share_intervals(study.groupings.values(), seed=args.seed)
    print("95% bootstrap confidence intervals on user shares:")
    for group, ci in intervals.items():
        print(f"  {group.value:<8} {ci.share:7.2%}  [{ci.low:6.2%}, {ci.high:6.2%}]")
    print()
    try:
        rows = regional_breakdown(study.groupings, study.profile_districts, min_users=10)
    except ReproError:
        print("regional breakdown: too few users per region at this scale")
    else:
        print(render_regional_breakdown(rows))
    print()
    try:
        print(render_stability(split_half_stability(study.observations)))
    except ReproError:
        print("stability analysis: too few timestamped observations")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    print(run_experiment(args.id, scale=args.scale))
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    users_path = out_dir / f"{args.dataset}_users.jsonl"
    tweets_path = out_dir / f"{args.dataset}_tweets.jsonl"
    user_count = dataset.users.save(users_path)
    tweet_count = dataset.tweets.save(tweets_path)
    print(f"wrote {user_count} users to {users_path}")
    print(f"wrote {tweet_count} tweets to {tweets_path}")
    print(f"geotagged tweets: {dataset.tweets.gps_count()}")
    return 0


def _cmd_localize(args: argparse.Namespace) -> int:
    args.dataset = "korean"  # localisation scenarios are Korean
    dataset = _build_dataset(args)
    study = run_study(dataset.users, dataset.tweets, dataset.gazetteer, "Korean")
    experiment = LocalizationExperiment(
        study, dataset.gazetteer, study.profile_districts, gps_rate=args.gps_rate
    )
    scenarios = make_korean_scenarios(dataset.gazetteer)
    outcomes = experiment.run_localization(scenarios)
    print(render_localization_table(outcomes))
    print()
    print("learned weight factors:", experiment.reliability_table.as_dict())
    return 0


#: Exit code for unusable on-disk state at boot — a ``stream --resume``
#: against a bad state directory, or a ``serve``/``live`` boot over a
#: missing/corrupt/truncated snapshot artifact.  Distinct from 1 (generic
#: :class:`ReproError`) so operators and scripts can tell "fix the
#: state/artifact" apart from every other failure.
EXIT_RESUME_STATE = 3

#: Exit code for a shard worker failing with an application exception
#: under ``--backend process`` (:class:`~repro.errors.ShardExecutionError`
#: names the shard and item range) — distinct from 1 so scripts can tell
#: "a worker hit a bug on this data" apart from ordinary bad input.
EXIT_SHARD_FAILURE = 4


def _cmd_stream(args: argparse.Namespace) -> int:
    state_dir = Path(args.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    wal_path = state_dir / "wal.jsonl"
    checkpoint_log = CheckpointLog(state_dir / "checkpoints.jsonl")

    if args.resume:
        # Validate the resume state before the (expensive) dataset build so
        # a bad state directory fails in milliseconds with a clear message.
        if not checkpoint_log.path.exists():
            print(f"error: cannot resume: no checkpoint log at {checkpoint_log.path} "
                  "— run without --resume to start a fresh stream", file=sys.stderr)
            return EXIT_RESUME_STATE
        try:
            if checkpoint_log.latest() is None:
                print(f"error: cannot resume: checkpoint log {checkpoint_log.path} "
                      "holds no complete checkpoint (truncated write?) — run "
                      "without --resume to start a fresh stream", file=sys.stderr)
                return EXIT_RESUME_STATE
        except StorageError as exc:
            print(f"error: cannot resume: {exc} — run without --resume to start "
                  "a fresh stream", file=sys.stderr)
            return EXIT_RESUME_STATE

    dataset = _build_dataset(args)
    accumulator = IncrementalStudyAccumulator(
        dataset.gazetteer, dataset.users, cache_dir=args.cache_dir or None
    )
    if args.resume:
        try:
            consumer, offset = StreamConsumer.resume(
                accumulator, wal_path, checkpoint_log, args.checkpoint_every
            )
        except StorageError as exc:
            print(f"error: cannot resume: {exc} — run without --resume to start "
                  "a fresh stream", file=sys.stderr)
            return EXIT_RESUME_STATE
        print(f"resuming from checkpoint: offset {offset}, "
              f"{consumer.batches} batches already durable")
    else:
        # A fresh run owns the state directory: clear any previous journal
        # so stale records cannot mix into the new write-ahead log.
        wal_path.unlink(missing_ok=True)
        checkpoint_log.path.unlink(missing_ok=True)
        consumer = StreamConsumer(
            accumulator, wal_path, checkpoint_log, args.checkpoint_every
        )
        offset = 0

    config = StreamConfig(
        batch_size=args.batch_size,
        capacity=args.capacity,
        policy=BackpressurePolicy(args.policy),
        drain_every=args.drain_every,
        checkpoint_every=args.checkpoint_every,
    )
    source = FirehoseSource(
        dataset.tweets,
        dataset.users,
        track=tuple(args.track),
        disconnect_every=args.disconnect_every,
    )
    queue = BoundedTweetQueue(config.capacity, config.policy)
    context = RunContext(dataset_name=args.dataset, seed=args.seed)
    pump = StreamPump(source, queue, consumer, config, context)
    snapshot = pump.run(start_offset=offset, max_batches=args.max_batches)

    print(f"stream {'exhausted' if snapshot.exhausted else 'paused'} at "
          f"offset {snapshot.offset}/{len(source)} after {snapshot.batches} "
          f"batches ({queue.stats.dropped} dropped by backpressure)")
    if not snapshot.exhausted:
        print("resume with: repro stream --resume "
              f"--state-dir {args.state_dir} [same options]")
    print(f"state digest: {snapshot.digest[:16]}…")
    print()
    study = snapshot.result
    print(render_funnel(study.funnel))
    print()
    print(render_fig7(study.statistics))
    print()
    print(render_fig6(study.statistics))
    print()
    print(render_tweet_distribution(study.statistics))
    if args.metrics:
        print()
        print(render_trace(context))
    if args.save:
        save_study(study, args.save)
        print(f"study saved to {args.save}")
    return 0


def _cmd_geodata_prepare(args: argparse.Namespace) -> int:
    """Compile a district catalogue into an mmap gazetteer artifact."""
    try:
        summary = prepare_artifact(
            args.out,
            catalogue=args.catalogue or None,
            districts_path=args.districts or None,
            polygons_path=args.polygons or None,
            grid_deg=args.grid_deg,
        )
    except StorageError as exc:
        # Unusable input / artifact state: exit 3, one line, no traceback —
        # the same convention as serve/live boot over a bad snapshot.
        print(f"error: geodata prepare failed: {exc}", file=sys.stderr)
        return EXIT_RESUME_STATE
    print(
        f"wrote {summary['path']}: {summary['districts']} districts, "
        f"{summary['polygons']} polygons, grid {summary['grid_deg']}deg, "
        f"{summary['bytes']} bytes (source {summary['source']})"
    )
    return 0


def _cmd_geodata_info(args: argparse.Namespace) -> int:
    """Print version, counts, and sections of a gazetteer artifact."""
    try:
        info = gazetteer_artifact_info(args.artifact)
    except StorageError as exc:
        print(f"error: cannot read gazetteer artifact: {exc}", file=sys.stderr)
        return EXIT_RESUME_STATE
    print(f"{info['path']}: {info['format']} v{info['version']} "
          f"({info['bytes']} bytes, source {info['source']})")
    print(f"  districts: {info['districts']}  states: {info['states']}  "
          f"aliases: {info['aliases']}")
    print(f"  grid: {info['grid_deg']}deg ({info['grid_cells']} occupied cells, "
          f"{info['lon_cells']} lon columns)")
    print(f"  polygons: {info['polygons']} ({info['rings']} rings, "
          f"{info['vertices']} vertices)")
    print(f"  sections: {', '.join(info['sections'])}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a saved study over HTTP until interrupted."""
    gazetteer = dataset_gazetteer(args.gazetteer)
    # The "current" artifact path is mutable state: a fleet publisher may
    # retarget this replica at a new snapshot via /admin/reload?snapshot=,
    # after which a bare reload (SIGHUP) re-reads the *new* path.
    active = {"path": args.snapshot}

    def reloader():
        """Re-read the active study document from disk (SIGHUP / /admin/reload)."""
        return load_snapshot(active["path"], gazetteer)

    def snapshot_loader(path: str):
        """Load a publisher-named artifact; it becomes the active path."""
        snapshot = load_snapshot(path, gazetteer)
        active["path"] = path
        return snapshot

    try:
        boot = reloader()
    except StorageError as exc:
        # Same convention as `stream --resume` against a bad state dir:
        # unusable on-disk state is exit 3, one line, no traceback.
        print(f"error: cannot serve: {exc} — re-save the study with "
              "`repro study --save` / `repro stream --save`", file=sys.stderr)
        return EXIT_RESUME_STATE
    store = SnapshotStore(boot)
    geocoder = GeocodeService(DirectBackend(ReverseGeocoder(gazetteer)))
    bucket = TokenBucket(rate=args.rate if args.rate > 0 else None, burst=args.burst)
    app = ServingApp(
        store,
        geocoder,
        bucket=bucket,
        reloader=reloader,
        snapshot_loader=snapshot_loader,
    )
    hup = install_reload_signal(app)
    if args.server == "asyncio":
        return _serve_asyncio_forever(app, args.host, args.port, hup)
    server = StudyServer(app, host=args.host, port=args.port)
    print(render_serving_summary(app, args.host, server.port))
    print("  server: thread-per-connection")
    if hup:
        print("  reload: POST /admin/reload or SIGHUP")
    else:
        print("  reload: POST /admin/reload")
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _serve_asyncio_forever(app: ServingApp, host: str, port: int, hup: bool) -> int:
    """Foreground event-loop serving (`repro serve --server asyncio`)."""
    import asyncio

    async def run() -> None:
        server = AsyncStudyServer(app, host=host, port=port)
        await server.start()
        print(render_serving_summary(app, host, server.port))
        print("  server: asyncio (keep-alive + pipelining, single event loop)")
        print("  reload: POST /admin/reload" + (" or SIGHUP" if hup else ""))
        sys.stdout.flush()
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    """Boot N subprocess replicas behind one fleet front (`repro fleet run`)."""
    route = "hash" if args.hash else "round-robin"
    metrics = MetricsRegistry()
    targets = ReplicaSet()
    supervisor = ReplicaSupervisor(
        args.snapshot,
        args.replicas,
        targets,
        server=args.replica_server,
        gazetteer=args.gazetteer,
        metrics=metrics,
    )
    try:
        supervisor.start()
    except FleetError as exc:
        print(f"error: fleet boot failed: {exc}", file=sys.stderr)
        supervisor.stop()
        targets.close()
        return EXIT_RESUME_STATE
    bucket = TokenBucket(rate=args.rate if args.rate > 0 else None, burst=args.burst)
    front = FleetFront(targets, metrics=metrics, bucket=bucket, route=route)
    publisher = SnapshotPublisher(targets, metrics=metrics)
    controller = FleetController(
        front,
        publisher,
        current_path=args.snapshot,
        config=RolloutConfig(
            min_shadow_samples=args.min_shadow_samples,
            max_error_rate=args.max_error_rate,
            max_p95_latency_s=args.max_p95_latency,
            shadow_timeout_s=args.shadow_timeout,
        ),
        supervisor=supervisor,
        metrics=metrics,
    )
    server = start_background_server(front, args.server, args.host, args.port)
    print(f"fleet front on http://{args.host}:{server.port} "
          f"({args.server} transport, {route} routing)")
    for handle in supervisor.handles():
        print(f"  replica {handle.replica_id}: http://{handle.host}:{handle.port} "
              f"({handle.server}, pid {handle.pid})")
    print(f"  snapshot: {args.snapshot} "
          f"(version {controller.current_version or 'unknown'})")
    print("  endpoints: data endpoints proxied; "
          "/fleet/healthz /fleet/metrics /fleet/status /fleet/publish")
    print("  publish: repro fleet publish <snapshot> "
          f"--front-port {server.port}")
    sys.stdout.flush()
    try:
        server.join()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        controller.shutdown()
        supervisor.stop()
        targets.close()
    return 0


def _cmd_fleet_publish(args: argparse.Namespace) -> int:
    """Ask a running fleet front to roll out a snapshot (`repro fleet publish`)."""
    client = PooledReplicaClient(args.front_host, args.front_port)
    target = f"/fleet/publish?snapshot={quote(args.snapshot, safe='')}"
    if args.no_gate:
        target += "&gate=0"
    try:
        status, body = client.request("POST", target)
    except ReplicaUnreachableError as exc:
        print(f"error: fleet front unreachable: {exc}", file=sys.stderr)
        client.close()
        return 1
    parsed = json.loads(body)
    if status != 202:
        print(f"error: publish rejected ({status}): "
              f"{parsed.get('error', body.decode('utf-8', 'replace'))}",
              file=sys.stderr)
        client.close()
        return 1
    print(f"publish accepted: {args.snapshot} "
          f"({'ungated' if args.no_gate else 'health-gated'})")
    if args.no_wait:
        client.close()
        return 0
    deadline = time.monotonic() + args.wait_timeout
    outcome = None
    while time.monotonic() < deadline:
        time.sleep(0.2)
        try:
            status, body = client.request("GET", "/fleet/status")
        except ReplicaUnreachableError:
            continue
        state = json.loads(body)
        if state.get("state") == "idle":
            outcome = state.get("last_rollout")
            break
        print(f"  rollout {state.get('state')}…")
        sys.stdout.flush()
    client.close()
    if outcome is None:
        print(f"error: rollout still running after {args.wait_timeout:.0f}s",
              file=sys.stderr)
        return 1
    print(json.dumps(outcome, indent=2, sort_keys=True))
    return 0 if outcome.get("promoted") else 1


def _cmd_live(args: argparse.Namespace) -> int:
    """Run ingestion and serving in one process (`repro live`).

    Boots a :class:`~repro.serving.http.StudyServer` over the (initially
    empty or resumed) accumulator state, then pumps the synthetic
    firehose while a :class:`~repro.live.pipeline.LiveStudyPipeline`
    builds delta snapshots on cadence and hot-swaps them into the running
    server — queries observe each publish as a generation bump on
    ``/healthz``.
    """
    state_dir = Path(args.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    wal_path = state_dir / "wal.jsonl"
    checkpoint_log = CheckpointLog(state_dir / "checkpoints.jsonl")

    dataset = _build_dataset(args)
    accumulator = IncrementalStudyAccumulator(
        dataset.gazetteer, dataset.users, cache_dir=args.cache_dir or None
    )
    try:
        if args.resume:
            consumer, offset = StreamConsumer.resume(
                accumulator, wal_path, checkpoint_log, args.checkpoint_every
            )
        else:
            wal_path.unlink(missing_ok=True)
            checkpoint_log.path.unlink(missing_ok=True)
            consumer = StreamConsumer(
                accumulator, wal_path, checkpoint_log, args.checkpoint_every
            )
            offset = 0
    except StorageError as exc:
        print(f"error: cannot resume: {exc} — run without --resume to start "
              "a fresh stream", file=sys.stderr)
        return EXIT_RESUME_STATE

    config = StreamConfig(
        batch_size=args.batch_size,
        capacity=args.capacity,
        policy=BackpressurePolicy(args.policy),
        drain_every=args.drain_every,
        checkpoint_every=args.checkpoint_every,
    )
    source = FirehoseSource(dataset.tweets, dataset.users)
    queue = BoundedTweetQueue(config.capacity, config.policy)
    context = RunContext(dataset_name=args.dataset, seed=args.seed)
    pump = StreamPump(source, queue, consumer, config, context)

    builder = DeltaSnapshotBuilder(accumulator, dataset_name=args.dataset)
    store = SnapshotStore(builder.build())  # generation 1: the boot state
    geocoder = GeocodeService(DirectBackend(ReverseGeocoder(dataset.gazetteer)))
    bucket = TokenBucket(rate=args.rate if args.rate > 0 else None, burst=args.burst)
    # Share the pump's registry so /metrics surfaces stream.* and live.*
    # gauges beside the serving.* counters — one pane of glass.
    app = ServingApp(store, geocoder, metrics=context.metrics, bucket=bucket)
    pipeline = LiveStudyPipeline(
        pump,
        builder,
        store,
        LiveConfig(
            cadence_batches=args.cadence if args.cadence > 0 else None,
            cadence_seconds=(
                args.cadence_seconds if args.cadence_seconds > 0 else None
            ),
            pace_s=args.pace_ms / 1000.0,
        ),
    )
    server = start_background_server(app, args.server, args.host, args.port)
    print(render_serving_summary(app, args.host, server.port))
    print(f"  server: {args.server}")
    print(f"  live: cadence {args.cadence} batches"
          + (f" / {args.cadence_seconds}s" if args.cadence_seconds > 0 else "")
          + f", serving while streaming {len(source)} tweets")
    sys.stdout.flush()

    try:
        snapshot = pipeline.run(start_offset=offset, max_batches=args.max_batches)
    except KeyboardInterrupt:
        server.shutdown()
        return 0
    metrics = context.metrics.snapshot()
    print(f"stream {'exhausted' if snapshot.exhausted else 'paused'} at "
          f"offset {snapshot.offset}/{len(source)} after {snapshot.batches} "
          f"batches; {int(metrics['live.swaps'])} snapshot swaps "
          f"({int(metrics.get('live.swaps_skipped', 0))} content-equal skips), "
          f"serving generation {store.generation}")
    print(f"served version: {store.current().version} "
          f"(swap lag p95 {metrics.get('live.swap_lag.p95', 0.0):.3f}s)")
    sys.stdout.flush()
    if args.on_exhausted == "serve":
        try:
            server.join()
        except KeyboardInterrupt:
            pass
    server.shutdown()
    return 0


def _add_build_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--population", type=int, default=2_000,
                        help="accounts on the simulated platform")
    parser.add_argument("--users", type=int, default=1_600,
                        help="users the crawler collects (korean only)")
    parser.add_argument("--days", type=int, default=60,
                        help="collection-window length in days")
    parser.add_argument("--seed", type=int, default=7, help="master seed")


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=1,
                        help="shard count for the engine's hot-path stages; "
                        "with --backend process the worker pool is capped at "
                        "the machine's CPU count, so more shards than cores "
                        "queue on the same workers")
    parser.add_argument("--backend", choices=("serial", "process"),
                        default="serial", help="shard execution backend")
    parser.add_argument("--columnar", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="group over interned columnar batches "
                        "(byte-identical to the dict path; --no-columnar "
                        "falls back to per-user dict merging)")
    _add_cache_option(parser)


def _add_cache_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default="",
                        help="directory for the persistent geocode cell cache; "
                        "reuse it across runs to skip already-resolved cells")


class _OneLineArgumentParser(argparse.ArgumentParser):
    """An ``ArgumentParser`` whose failures are one actionable line.

    ``argparse`` normally prints a multi-line usage dump before the error;
    for scripted callers (CI smoke steps, shell pipelines) a single line
    naming the problem and pointing at ``--help`` is easier to surface.
    The exit code stays argparse's conventional 2, so an unknown
    subcommand is distinguishable from a study failure (1), a bad resume
    state (3), and a shard failure (4).
    """

    def error(self, message: str):
        """Exit 2 with a one-line diagnostic instead of a usage dump."""
        self.exit(2, f"{self.prog}: error: {message} — see `repro --help`\n")


def package_version() -> str:
    """The installed package version, from metadata or ``pyproject.toml``.

    An installed distribution answers from its metadata; a source
    checkout run via ``PYTHONPATH=src`` falls back to the repository's
    ``pyproject.toml``, and finally to the library's ``__version__`` —
    the three can only disagree during a version bump, where the
    checkout's files win over stale installed metadata anyway.
    """
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    if pyproject.is_file():
        try:
            import tomllib

            with pyproject.open("rb") as handle:
                return tomllib.load(handle)["project"]["version"]
        except Exception:  # malformed/pre-3.11 — fall through to metadata
            pass
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = _OneLineArgumentParser(
        prog="repro",
        description="Reproduction of Lee & Hwang (ICDE 2012): spatial "
        "attributes on Twitter",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    study = subparsers.add_parser("study", help="run the correlation study")
    study.add_argument("--dataset", choices=("korean", "ladygaga"), default="korean")
    study.add_argument("--save", default="", help="save the study result as JSON")
    study.add_argument("--metrics", action="store_true",
                       help="print the engine metrics snapshot and stage spans")
    _add_build_options(study)
    _add_engine_options(study)
    study.set_defaults(func=_cmd_study)

    engine = subparsers.add_parser(
        "engine", help="staged-engine introspection"
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)
    trace = engine_sub.add_parser(
        "trace", help="run a study and print its full execution trace"
    )
    trace.add_argument("--dataset", choices=("korean", "ladygaga"), default="korean")
    _add_build_options(trace)
    _add_engine_options(trace)
    trace.set_defaults(func=_cmd_engine_trace)

    report = subparsers.add_parser(
        "report", help="extension analyses over a saved study"
    )
    report.add_argument("--study", required=True, help="path from `study --save`")
    report.add_argument("--gazetteer", choices=("korean", "combined"), default="korean")
    report.add_argument("--seed", type=int, default=7)
    report.set_defaults(func=_cmd_report)

    experiment = subparsers.add_parser("experiment", help="render an E1-E10 artefact")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", choices=("small", "default"), default="small")
    experiment.set_defaults(func=_cmd_experiment)

    dataset = subparsers.add_parser("dataset", help="build and persist a dataset")
    dataset.add_argument("--dataset", choices=("korean", "ladygaga"), default="korean")
    dataset.add_argument("--out", default="./data", help="output directory")
    _add_build_options(dataset)
    dataset.set_defaults(func=_cmd_dataset)

    stream = subparsers.add_parser(
        "stream", help="ingest the firehose incrementally with checkpoints"
    )
    stream.add_argument("--dataset", choices=("korean", "ladygaga"), default="ladygaga")
    stream.add_argument("--policy", choices=[p.value for p in BackpressurePolicy],
                        default=BackpressurePolicy.BLOCK.value,
                        help="backpressure policy when the ingest queue fills")
    stream.add_argument("--batch-size", type=int, default=256,
                        help="tweets folded per micro-batch")
    stream.add_argument("--capacity", type=int, default=1024,
                        help="bounded ingest-queue capacity")
    stream.add_argument("--drain-every", type=int, default=1,
                        help="produced tweets between consumer drains "
                        "(larger = slower consumer)")
    stream.add_argument("--checkpoint-every", type=int, default=1,
                        help="micro-batches between durable checkpoints")
    stream.add_argument("--disconnect-every", type=int, default=0,
                        help="simulate a stream disconnect every N deliveries")
    stream.add_argument("--state-dir", default="./stream_state",
                        help="directory for the write-ahead log and checkpoints")
    stream.add_argument("--resume", action="store_true",
                        help="continue from the state directory's last checkpoint")
    stream.add_argument("--max-batches", type=int, default=None,
                        help="pause after this many micro-batches (crash drill)")
    stream.add_argument("--track", action="append", default=[],
                        help="extra track keyword(s) filtered at the source")
    stream.add_argument("--save", default="", help="save the snapshot study as JSON")
    stream.add_argument("--metrics", action="store_true",
                        help="print the stream metrics snapshot and batch spans")
    _add_build_options(stream)
    _add_cache_option(stream)
    stream.set_defaults(func=_cmd_stream)

    serve = subparsers.add_parser(
        "serve", help="serve a saved study over a JSON HTTP API"
    )
    serve.add_argument("--snapshot", required=True,
                       help="study JSON from `study --save` / `stream --save`")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--gazetteer", choices=("korean", "combined"),
                       default="korean",
                       help="district catalogue for /reverse and snapshot load")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="admitted data requests per second "
                       "(0 = unlimited; excess answered 429)")
    serve.add_argument("--server", choices=("thread", "asyncio"), default="thread",
                       help="front end: thread-per-connection stdlib server or "
                            "single event loop with keep-alive pipelining")
    serve.add_argument("--burst", type=int, default=32,
                       help="admission burst capacity above the sustained rate")
    serve.set_defaults(func=_cmd_serve)

    live = subparsers.add_parser(
        "live", help="stream the firehose and serve delta snapshots live"
    )
    live.add_argument("--dataset", choices=("korean", "ladygaga"), default="ladygaga")
    live.add_argument("--cadence", type=int, default=8,
                      help="micro-batches between snapshot builds "
                      "(0 disables the batch trigger)")
    live.add_argument("--cadence-seconds", type=float, default=0.0,
                      help="wall-clock seconds between snapshot builds "
                      "(0 disables the clock trigger)")
    live.add_argument("--pace-ms", type=float, default=0.0,
                      help="sleep this long after each folded batch — throttles "
                      "the synthetic firehose to an observable rate")
    live.add_argument("--host", default="127.0.0.1", help="bind address")
    live.add_argument("--port", type=int, default=8080,
                      help="TCP port (0 picks a free one)")
    live.add_argument("--rate", type=float, default=0.0,
                      help="admitted data requests per second "
                      "(0 = unlimited; excess answered 429)")
    live.add_argument("--server", choices=("thread", "asyncio"), default="thread",
                      help="serving front end (same choice as `repro serve`)")
    live.add_argument("--burst", type=int, default=32,
                      help="admission burst capacity above the sustained rate")
    live.add_argument("--policy", choices=[p.value for p in BackpressurePolicy],
                      default=BackpressurePolicy.BLOCK.value,
                      help="backpressure policy when the ingest queue fills")
    live.add_argument("--batch-size", type=int, default=256,
                      help="tweets folded per micro-batch")
    live.add_argument("--capacity", type=int, default=1024,
                      help="bounded ingest-queue capacity")
    live.add_argument("--drain-every", type=int, default=1,
                      help="produced tweets between consumer drains")
    live.add_argument("--checkpoint-every", type=int, default=1,
                      help="micro-batches between durable checkpoints")
    live.add_argument("--state-dir", default="./stream_state",
                      help="directory for the write-ahead log and checkpoints")
    live.add_argument("--resume", action="store_true",
                      help="continue from the state directory's last checkpoint")
    live.add_argument("--max-batches", type=int, default=None,
                      help="pause after this many micro-batches (crash drill)")
    live.add_argument("--on-exhausted", choices=("serve", "exit"),
                      default="serve",
                      help="after the stream ends: keep serving the final "
                      "snapshot, or shut down (scripted runs)")
    _add_build_options(live)
    _add_cache_option(live)
    live.set_defaults(func=_cmd_live)

    fleet = subparsers.add_parser(
        "fleet",
        help="multi-replica serving with health-gated snapshot rollout",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="boot N subprocess replicas behind one fleet front"
    )
    fleet_run.add_argument("--snapshot", required=True,
                           help="study JSON every replica boots with")
    fleet_run.add_argument("--replicas", type=int, default=3,
                           help="replica subprocess count (default 3)")
    fleet_run.add_argument("--host", default="127.0.0.1",
                           help="front bind address")
    fleet_run.add_argument("--port", type=int, default=8090,
                           help="front port (0 = ephemeral)")
    fleet_run.add_argument("--server", choices=("thread", "asyncio"),
                           default="thread",
                           help="front transport (default thread)")
    fleet_run.add_argument("--replica-server", choices=("thread", "asyncio"),
                           default="thread",
                           help="replica transport (default thread)")
    routing = fleet_run.add_mutually_exclusive_group()
    routing.add_argument("--hash", action="store_true",
                         help="consistent-hash routing (stable replica per key)")
    routing.add_argument("--round-robin", action="store_true",
                         help="round-robin routing (the default)")
    fleet_run.add_argument("--gazetteer", choices=("korean", "combined"),
                           default="korean",
                           help="gazetteer the replicas load")
    fleet_run.add_argument("--rate", type=float, default=0.0,
                           help="fleet-level admitted requests/second "
                                "(0 = unlimited)")
    fleet_run.add_argument("--burst", type=int, default=64,
                           help="fleet admission burst capacity")
    fleet_run.add_argument("--min-shadow-samples", type=int, default=50,
                           help="shadow samples a canary needs before the "
                                "gate may pass")
    fleet_run.add_argument("--max-error-rate", type=float, default=0.05,
                           help="canary error-rate budget")
    fleet_run.add_argument("--max-p95-latency", type=float, default=0.5,
                           help="canary p95 latency budget (seconds)")
    fleet_run.add_argument("--shadow-timeout", type=float, default=30.0,
                           help="seconds to collect shadow samples before "
                                "ruling the canary unproven")
    fleet_run.set_defaults(func=_cmd_fleet_run)
    fleet_publish = fleet_sub.add_parser(
        "publish", help="roll a snapshot out through a running fleet front"
    )
    fleet_publish.add_argument("snapshot",
                               help="study JSON to publish fleet-wide")
    fleet_publish.add_argument("--front-host", default="127.0.0.1",
                               help="fleet front host")
    fleet_publish.add_argument("--front-port", type=int, default=8090,
                               help="fleet front port")
    fleet_publish.add_argument("--no-gate", action="store_true",
                               help="skip the canary/shadow gate and publish "
                                    "fleet-wide immediately")
    fleet_publish.add_argument("--no-wait", action="store_true",
                               help="return once the rollout is accepted "
                                    "instead of waiting for its outcome")
    fleet_publish.add_argument("--wait-timeout", type=float, default=120.0,
                               help="seconds to wait for the rollout outcome")
    fleet_publish.set_defaults(func=_cmd_fleet_publish)

    geodata = subparsers.add_parser(
        "geodata", help="compile / inspect mmap gazetteer artifacts"
    )
    geodata_sub = geodata.add_subparsers(dest="geodata_command", required=True)
    prepare = geodata_sub.add_parser(
        "prepare", help="compile districts (+ polygons) into an RGAZ1 artifact"
    )
    prepare.add_argument("--out", required=True, help="artifact path to write")
    prepare.add_argument(
        "--catalogue", choices=("korean", "world", "combined"), default="",
        help="builtin catalogue to compile (alternative to --districts)",
    )
    prepare.add_argument(
        "--districts", default="",
        help="external districts JSONL (alternative to --catalogue)",
    )
    prepare.add_argument(
        "--polygons", default="",
        help="optional boundary polygons JSON layered on the catalogue",
    )
    prepare.add_argument(
        "--grid-deg", type=float, default=None,
        help="spatial grid cell size in degrees (default: catalogue's)",
    )
    prepare.set_defaults(func=_cmd_geodata_prepare)
    info = geodata_sub.add_parser(
        "info", help="print version, counts, and sections of an artifact"
    )
    info.add_argument("artifact", help="artifact path to inspect")
    info.set_defaults(func=_cmd_geodata_info)

    localize = subparsers.add_parser(
        "localize", help="reliability-weighted event localisation"
    )
    localize.add_argument("--gps-rate", type=float, default=0.2,
                          help="fraction of witness reports carrying GPS")
    _add_build_options(localize)
    localize.set_defaults(func=_cmd_localize)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ShardExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SHARD_FAILURE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
