"""Delta snapshot builds: serving snapshots at cost proportional to churn.

``ServingSnapshot.from_study(accumulator.snapshot())`` is O(full study)
twice over — the accumulator assembles every observation row and the
snapshot re-renders every user's response body, merged strings, interner
sweep, and regional table.  On a live stream where a cadence tick
typically touches a few percent of users, that cost caps the achievable
freshness.

:class:`DeltaSnapshotBuilder` keeps every per-user derived piece cached
— response body, matched key, JSON fragments for the content digest
(:mod:`repro.live.fragments`), interner occurrence positions, region
membership — and on each build re-derives them **only for users whose
tweets changed since the last build** (the accumulator's dirty set).
Global, order-sensitive aggregates that are cheap relative to per-user
work (group statistics, the reliability table, the funnel) are recomputed
each build from incremental counters, in the same sorted-uid order the
batch path uses, so float summation order — and therefore bytes — match.

The **full build is the degenerate all-dirty case**: a cold builder has
no caches, every study user misses, and the resulting snapshot is the
same object a batch ``from_study`` produces — one code path for both.
The equivalence is the subsystem's core invariant, property-tested in
``tests/live/test_swap_equivalence.py``: at every swap the served
snapshot is byte-identical to the batch-built snapshot at that
checkpoint.

Failure containment: the dirty set is *claimed into* the builder's
pending pool before any work and cleared only when a build succeeds, so
an exception mid-build loses nothing — the next build retries the same
users and the previously served snapshot stays live.
"""

from __future__ import annotations

from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.analysis.regional import regional_row
from repro.analysis.reliability import ReliabilityTable
from repro.columnar.interner import StringInterner
from repro.grouping.stats import compute_group_statistics, empty_group_statistics
from repro.live import fragments
from repro.serving.state import (
    VERSION_TAG_LENGTH,
    ServingSnapshot,
    group_weights,
    region_entry,
    user_entry,
)

#: Occurrence-position sections: observations sweep before districts in
#: the canonical interner order (:func:`~repro.columnar.interner
#: .study_interner`).
_OBS_SECTION = 0
_DISTRICT_SECTION = 1


class DeltaSnapshotBuilder:
    """Builds :class:`~repro.serving.state.ServingSnapshot` objects
    incrementally from live accumulator state.

    Args:
        accumulator: The streaming study state to snapshot.
        dataset_name: Label stamped into the composed study document
            (must match what batch comparisons use, or digests differ).
    """

    def __init__(
        self,
        accumulator: IncrementalStudyAccumulator,
        dataset_name: str = "stream",
    ):
        self._accumulator = accumulator
        self._dataset_name = dataset_name
        # Users claimed from the accumulator but not yet built into a
        # successful snapshot (survives build failures).
        self._pending: set[int] = set()
        # Per-user caches, keyed by uid.  Bodies are immutable by
        # convention: a rebuild *replaces* the dict, so snapshots handed
        # out earlier keep the objects they were built with.
        self._bodies: dict[int, dict[str, object]] = {}
        self._matched_key: dict[int, str | None] = {}
        self._matched_keys: dict[str, int] = {}
        self._obs_fragment: dict[int, str] = {}
        self._merged_entry: dict[int, str] = {}
        self._district_entry: dict[int, str] = {}
        # Region caches: which state each user's profile resolves to,
        # each state's member uids, and each state's response body.
        self._user_state: dict[int, str] = {}
        self._state_members: dict[str, set[int]] = {}
        self._region_bodies: dict[str, dict[str, object]] = {}
        # Interner reconstruction: each string's smallest occurrence
        # position under the canonical sweep.  Positions only decrease
        # (observation rows are never removed), so sorting strings by
        # their minimum position reproduces first-encounter order.
        self._str_min: dict[str, tuple[int, int, int, int]] = {}
        self._str_json: dict[str, str] = {}
        self._builds = 0

    # ------------------------------------------------------------------ state
    @property
    def builds(self) -> int:
        """Successful builds over the builder's lifetime."""
        return self._builds

    @property
    def pending_count(self) -> int:
        """Dirty users claimed but not yet built into a snapshot."""
        return len(self._pending)

    # ------------------------------------------------------------------ build
    def build(self) -> ServingSnapshot:
        """One snapshot of the accumulator's current state.

        Per-user work is proportional to the dirty set; study-wide work
        is limited to cheap aggregates (statistics arithmetic, fragment
        joins, one SHA-256 pass over the composed document).
        """
        acc = self._accumulator
        acc.ensure_directory_swept()
        self._pending |= acc.take_dirty()
        study_ids = acc.study_user_ids()
        # Cache misses are dirty too: on a cold builder that is *every*
        # user, which makes the first build the degenerate full build.
        dirty = [
            uid
            for uid in study_ids
            if uid in self._pending or uid not in self._bodies
        ]
        for uid in dirty:
            self._rebuild_user(uid)
        self._rebuild_regions(dirty)

        groupings = [acc.grouping_of(uid) for uid in study_ids]
        statistics = (
            compute_group_statistics(groupings)
            if groupings
            else empty_group_statistics()
        )
        table = ReliabilityTable.from_statistics(statistics)
        funnel = acc.build_funnel()

        interner_strings = sorted(self._str_min, key=self._str_min.get)
        digest = fragments.document_digest(
            fragments.compose_study_document(
                self._dataset_name,
                funnel.as_dict(),
                [self._obs_fragment[uid] for uid in study_ids],
                [self._merged_entry[uid] for uid in study_ids],
                [self._district_entry[uid] for uid in study_ids],
                acc.api_stats.snapshot(),
                [self._str_json[text] for text in interner_strings],
            )
        )
        interner = StringInterner()
        interner.intern_many(interner_strings)

        snapshot = ServingSnapshot(
            version=digest[:VERSION_TAG_LENGTH],
            digest=digest,
            dataset_name=self._dataset_name,
            users=dict(self._bodies),
            regions=dict(self._region_bodies),
            reliability=table.as_dict(),
            user_weights=group_weights(table),
            statistics=statistics.as_dict(),
            funnel=dict(funnel.as_dict()),
            total_users=statistics.total_users,
            total_tweets=statistics.total_tweets,
            interner=interner,
            matched_keys=dict(self._matched_keys),
        )
        self._pending.clear()
        self._builds += 1
        return snapshot

    # -------------------------------------------------------------- internals
    def _rebuild_user(self, uid: int) -> None:
        """Re-derive every cached piece for one dirty study user."""
        acc = self._accumulator
        pairs = acc.resolved_rows_with_ids(uid)
        rows = [row for _, row in pairs]
        grouping = acc.grouping_of(uid)
        district = acc.profile_district_of(uid)

        body, matched_key = user_entry(uid, grouping, district)
        self._bodies[uid] = body
        previous_key = self._matched_key.get(uid)
        if previous_key is not None and previous_key != matched_key:
            del self._matched_keys[previous_key]
        if matched_key is not None:
            self._matched_keys[matched_key] = uid
        self._matched_key[uid] = matched_key

        self._obs_fragment[uid] = fragments.observation_fragment(rows)
        self._merged_entry[uid] = fragments.merged_entry(
            uid, [row.render() for row in grouping.merged]
        )
        self._district_entry[uid] = fragments.district_entry(uid, district)
        self._user_state.setdefault(uid, district.state)
        self._state_members.setdefault(district.state, set()).add(uid)

        for tweet_id, row in pairs:
            for slot, text in enumerate(
                (
                    row.profile_state,
                    row.profile_county,
                    row.tweet_state,
                    row.tweet_county,
                )
            ):
                self._note_string(text, (_OBS_SECTION, uid, tweet_id, slot))
        for slot, text in enumerate((district.state, district.name)):
            self._note_string(text, (_DISTRICT_SECTION, uid, 0, slot))

    def _note_string(
        self, text: str, position: tuple[int, int, int, int]
    ) -> None:
        """Record one occurrence of ``text``; the minimum position wins.

        Positions are ``(section, uid, tweet_id, slot)`` — the canonical
        interner sweep is observations in ascending ``(uid, tweet_id)``
        order (four slots each), then kept districts in ascending uid
        order (two slots), so lexicographic position order *is* sweep
        order.  Rows are never removed, so a string's minimum is
        monotone: recording only the smaller value keeps every earlier
        build's knowledge valid.
        """
        known = self._str_min.get(text)
        if known is None or position < known:
            self._str_min[text] = position
        if text not in self._str_json:
            self._str_json[text] = fragments.render(text)

    def _rebuild_regions(self, dirty: list[int]) -> None:
        """Recompute the region bodies of states with dirty members.

        A regional row is order-independent (integer sums and counts —
        see :func:`~repro.analysis.regional.regional_row`), so only the
        affected states are touched; a user's profile state never
        changes, so membership is append-only.
        """
        acc = self._accumulator
        for state in {self._user_state[uid] for uid in dirty}:
            members = [
                acc.grouping_of(uid) for uid in sorted(self._state_members[state])
            ]
            self._region_bodies[state] = region_entry(
                regional_row(state, members)
            )
