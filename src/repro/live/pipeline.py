"""The live loop: firehose → accumulator → delta build → hot swap.

:class:`LiveStudyPipeline` is the one-process composition the ROADMAP's
"millions of users, heavy traffic" story needs: the existing
:class:`~repro.streaming.consumer.StreamPump` ingests micro-batches into
an :class:`~repro.analysis.incremental.IncrementalStudyAccumulator`, and
on a configurable cadence a :class:`~repro.live.builder
.DeltaSnapshotBuilder` turns the accumulator's state into a fresh
:class:`~repro.serving.state.ServingSnapshot` and publishes it through
:meth:`~repro.serving.state.SnapshotStore.swap` — the same atomic swap
``POST /admin/reload`` uses, with no signal and no file round-trip.
Query threads of a running :class:`~repro.serving.http.StudyServer`
observe each publish as a generation bump; in-flight requests keep the
reference they already grabbed.

Scheduling rides the pump's ``on_batch`` hook, which fires *between*
micro-batches on the pump's own thread — the accumulator is quiescent
during a build, so the builder needs no locks against the fold path.
Cadence is by folded batch count, wall-clock seconds (injectable clock),
or both — whichever fires first.

Failure containment is layered:

* a build that raises keeps the previously served snapshot live and
  loses no dirt (the builder re-claims the same users next tick);
* a build whose document digest equals the live snapshot's is not
  swapped at all (``live.swaps_skipped``) — content equality is the
  cheap no-op check, exactly as ``/admin/reload`` of an unchanged file;
* the stream ending forces one final build+swap, so the served state
  always converges to the end-of-stream study.

Observability (on the pump context's registry): gauges
``live.swap_lag_seconds`` (data-ready to swap-complete for the last
publish), ``live.snapshot_age_batches`` (batches folded past the served
snapshot), and ``live.dirty_users`` (rebuild backlog); counters
``live.builds``, ``live.build_failures``, ``live.swaps``,
``live.swaps_skipped``; and a ``live.swap_lag`` latency histogram whose
p95 is the freshness number ``BENCH_live.json`` reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.engine.metrics import MetricsRegistry
from repro.errors import ConfigurationError
from repro.live.builder import DeltaSnapshotBuilder
from repro.serving.state import SnapshotStore
from repro.streaming.consumer import StreamPump
from repro.streaming.snapshot import StreamSnapshot


@dataclass(frozen=True)
class LiveConfig:
    """Cadence tunables for one live pipeline.

    Attributes:
        cadence_batches: Build+swap every N folded micro-batches
            (``None`` disables the batch trigger).
        cadence_seconds: Build+swap when this much wall-clock time has
            passed since the last build (``None`` disables the clock
            trigger).  Checked between batches — a silent stream does
            not wake the builder, which is correct: no folds, no drift.
        pace_s: Optional sleep after every folded batch, throttling a
            synthetic firehose to a human (or CI-smoke) observable rate.
            ``0`` streams flat out.

    Raises:
        ConfigurationError: if both triggers are disabled or any value
            is non-positive.
    """

    cadence_batches: int | None = 8
    cadence_seconds: float | None = None
    pace_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cadence_batches is None and self.cadence_seconds is None:
            raise ConfigurationError(
                "live cadence needs cadence_batches or cadence_seconds"
            )
        if self.cadence_batches is not None and self.cadence_batches < 1:
            raise ConfigurationError(
                f"cadence_batches must be >= 1, got {self.cadence_batches}"
            )
        if self.cadence_seconds is not None and self.cadence_seconds <= 0:
            raise ConfigurationError(
                f"cadence_seconds must be > 0, got {self.cadence_seconds}"
            )
        if self.pace_s < 0:
            raise ConfigurationError(f"pace_s must be >= 0, got {self.pace_s}")


class LiveStudyPipeline:
    """Drives ingestion and snapshot publication in one loop.

    Args:
        pump: The stream scheduler to ride (its ``on_batch`` hook is
            claimed by this pipeline).
        builder: Delta builder over the pump's accumulator.
        store: The serving store swaps publish into (typically the one a
            running :class:`~repro.serving.http.StudyServer` reads).
        config: Cadence tunables.
        clock: Injectable monotonic clock (tests drive cadence and lag
            deterministically).
        sleep: Injectable sleep for ``pace_s`` throttling.
    """

    def __init__(
        self,
        pump: StreamPump,
        builder: DeltaSnapshotBuilder,
        store: SnapshotStore,
        config: LiveConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._pump = pump
        self._builder = builder
        self._store = store
        self._config = config if config is not None else LiveConfig()
        self._clock = clock
        self._sleep = sleep
        self._consumer = pump.consumer
        self._accumulator = self._consumer.accumulator
        self._last_build_at = clock()
        self._batches_at_build = self._consumer.batches
        self._batches_at_swap = self._consumer.batches
        self._builds = 0
        self._build_failures = 0
        self._swaps = 0
        self._swaps_skipped = 0
        pump.on_batch = self._on_batch
        self._metrics = pump.context.metrics
        self._metrics.register_source("live", self.stats_source)

    # ------------------------------------------------------------------ state
    @property
    def metrics(self) -> MetricsRegistry:
        """The registry live gauges/counters land on (the pump's)."""
        return self._metrics

    @property
    def store(self) -> SnapshotStore:
        """The serving store this pipeline publishes into."""
        return self._store

    def stats_source(self) -> dict[str, float]:
        """Live-loop counters for the metrics registry."""
        return {
            "builds": self._builds,
            "build_failures": self._build_failures,
            "swaps": self._swaps,
            "swaps_skipped": self._swaps_skipped,
        }

    # -------------------------------------------------------------------- run
    def run(
        self, start_offset: int = 0, max_batches: int | None = None
    ) -> StreamSnapshot:
        """Pump the stream to exhaustion (or ``max_batches``), publishing
        snapshots on cadence, then force one final build+swap.

        The final publish makes the served state converge to the
        end-of-stream study even when the tail of the stream never
        filled a cadence window; if the last cadenced build already
        covered everything, the digest short-circuit turns it into a
        no-op (``live.swaps_skipped``).
        """
        snapshot = self._pump.run(start_offset=start_offset, max_batches=max_batches)
        self._build_and_swap()
        return snapshot

    # ------------------------------------------------------------------ hooks
    def _on_batch(self) -> None:
        """Per-batch cadence check (runs on the pump's thread)."""
        self._update_gauges()
        if self._config.pace_s > 0:
            self._sleep(self._config.pace_s)
        if self._cadence_due():
            self._build_and_swap()

    def _cadence_due(self) -> bool:
        batches = self._config.cadence_batches
        if (
            batches is not None
            and self._consumer.batches - self._batches_at_build >= batches
        ):
            return True
        seconds = self._config.cadence_seconds
        return (
            seconds is not None
            and self._clock() - self._last_build_at >= seconds
        )

    # ------------------------------------------------------------ build/swap
    def _build_and_swap(self) -> None:
        """One cadence tick: build, maybe swap, never lose the old state.

        ``live.swap_lag_seconds`` measures data-ready → swap-complete:
        the clock starts when the tick begins (every folded batch is in
        the accumulator by then) and stops after the store swap, so it
        covers the full staleness window a freshly folded tweet waits
        before becoming servable.
        """
        started = self._clock()
        self._last_build_at = started
        self._batches_at_build = self._consumer.batches
        try:
            snapshot = self._builder.build()
        except Exception:
            # The previously served snapshot stays live; the builder kept
            # its pending pool, so the next tick retries the same users.
            self._build_failures += 1
            self._metrics.counter("live.build_failures")
            self._update_gauges()
            return
        self._builds += 1
        self._metrics.counter("live.builds")
        if snapshot.digest == self._store.current().digest:
            # Content-equal publish — observationally a no-op, so skip
            # the generation bump (mirrors /admin/reload of an unchanged
            # file reporting changed=false).
            self._swaps_skipped += 1
            self._metrics.counter("live.swaps_skipped")
        else:
            self._store.swap(snapshot)
            self._swaps += 1
            self._metrics.counter("live.swaps")
        self._batches_at_swap = self._consumer.batches
        lag = self._clock() - started
        self._metrics.gauge("live.swap_lag_seconds", lag)
        # Deliberately epoch-0: swap lag is a property of the *pipeline*
        # across publishes, so the window must span generations (unlike
        # per-request serving latency, which partitions on swap).
        self._metrics.histogram("live.swap_lag").observe(lag)
        self._update_gauges()

    def _update_gauges(self) -> None:
        self._metrics.gauge(
            "live.dirty_users",
            self._accumulator.dirty_count + self._builder.pending_count,
        )
        self._metrics.gauge(
            "live.snapshot_age_batches",
            self._consumer.batches - self._batches_at_swap,
        )
