"""Incremental composition of the canonical study JSON document.

The serving snapshot's version *is* the study's content digest —
SHA-256 over the exact text of :func:`~repro.analysis.serialization
.study_to_json` (``json.dumps(document, ensure_ascii=False, indent=1)``).
A delta build that re-serialised the whole study to recompute that
digest would be O(full study) no matter how few users changed, defeating
the point of building deltas at all.

This module exploits how ``json.dumps`` renders with ``indent=1``: a
sub-value nested ``depth`` levels deep is the *standalone* rendering of
that value with every newline followed by ``depth`` extra spaces.  So
the per-user pieces of the document — a user's observation rows, its
``merged`` entry, its ``profile_districts`` entry — can be rendered once
at their final absolute depth, cached, and on later builds merely joined
with ``",\\n"`` separators and hashed.  Unchanged users cost a C-speed
string join and a SHA-256 update; only dirty users pay Python-level
re-rendering.

The composition is exact, not approximate: ``tests/live/test_fragments
.py`` property-tests that the composed text equals ``study_to_json``
character-for-character on both datasets, which is what entitles the
delta builder to stamp ``digest[:16]`` as its version tag.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.geo.region import District
from repro.twitter.models import GeotaggedObservation


def embed(text: str, depth: int) -> str:
    """Re-indent a standalone ``indent=1`` rendering to nesting ``depth``.

    ``json.dumps`` adds one leading space per nesting level to every
    line after the first; embedding therefore only rewrites newlines —
    the first line needs no prefix because it continues the parent's
    ``"key": `` line.
    """
    return text.replace("\n", "\n" + " " * depth)


def render(value: object) -> str:
    """The standalone canonical rendering (``ensure_ascii=False, indent=1``)."""
    return json.dumps(value, ensure_ascii=False, indent=1)


def observation_fragment(rows: Sequence[GeotaggedObservation]) -> str:
    """One user's observation items, rendered at absolute document depth.

    The items live inside the top-level ``observations`` array (depth 2),
    already joined with ``",\\n"`` — so the whole array is just the
    per-user fragments joined with the same separator.
    """
    return ",\n".join(
        "  "
        + embed(
            render(
                {
                    "user_id": row.user_id,
                    "ps": row.profile_state,
                    "pc": row.profile_county,
                    "ts": row.tweet_state,
                    "tc": row.tweet_county,
                    "t": row.timestamp_ms,
                }
            ),
            2,
        )
        for row in rows
    )


def merged_entry(user_id: int, merged_texts: Sequence[str]) -> str:
    """One user's ``merged`` object entry at absolute document depth."""
    return f'  "{user_id}": ' + embed(render(list(merged_texts)), 2)


def district_entry(user_id: int, district: District) -> str:
    """One user's ``profile_districts`` object entry at absolute depth."""
    return f'  "{user_id}": ' + embed(render(list(district.key())), 2)


def _array_block(fragments: Sequence[str]) -> Iterator[str]:
    """A top-level array from depth-correct item fragments (``[]`` empty)."""
    if not fragments:
        yield "[]"
        return
    yield "[\n"
    for index, fragment in enumerate(fragments):
        if index:
            yield ",\n"
        yield fragment
    yield "\n ]"


def _object_block(entries: Sequence[str]) -> Iterator[str]:
    """A top-level object from depth-correct entry fragments (``{}`` empty)."""
    if not entries:
        yield "{}"
        return
    yield "{\n"
    for index, entry in enumerate(entries):
        if index:
            yield ",\n"
        yield entry
    yield "\n }"


def compose_study_document(
    dataset_name: str,
    funnel: Mapping[str, object],
    observation_fragments: Sequence[str],
    merged_entries: Sequence[str],
    district_entries: Sequence[str],
    api_stats: Mapping[str, object],
    interner_items: Sequence[str],
) -> Iterator[str]:
    """Stream the exact ``study_to_json`` text from cached fragments.

    Args:
        dataset_name: The study's dataset label.
        funnel: ``RefinementFunnel.as_dict()`` (small; rendered fresh).
        observation_fragments: Per-user :func:`observation_fragment`
            pieces in ascending-uid order.
        merged_entries: Per-user :func:`merged_entry` pieces, same order.
        district_entries: Per-user :func:`district_entry` pieces, same
            order.
        api_stats: ``ClientStats.snapshot()`` (small; rendered fresh).
        interner_items: Each interned string's ``json.dumps`` text in id
            order (the caller caches these per string).

    Yields text chunks whose concatenation is character-identical to
    :func:`~repro.analysis.serialization.study_to_json` of the study the
    fragments describe.
    """
    yield '{\n "format_version": 2,\n "dataset_name": '
    yield json.dumps(dataset_name, ensure_ascii=False)
    yield ',\n "funnel": '
    yield embed(render(dict(funnel)), 1)
    yield ',\n "observations": '
    yield from _array_block(observation_fragments)
    yield ',\n "merged": '
    yield from _object_block(merged_entries)
    yield ',\n "profile_districts": '
    yield from _object_block(district_entries)
    yield ',\n "api_stats": '
    yield embed(render(dict(api_stats)), 1)
    yield ',\n "interner": '
    yield from _array_block(["  " + item for item in interner_items])
    yield "\n}"


def document_digest(chunks: Iterable[str]) -> str:
    """SHA-256 hex digest of the streamed document text.

    Equivalent to :func:`~repro.analysis.serialization.study_digest` on
    the study the chunks describe, without ever materialising the full
    document string.
    """
    hasher = hashlib.sha256()
    for chunk in chunks:
        hasher.update(chunk.encode("utf-8"))
    return hasher.hexdigest()
