"""Live study pipeline (`repro live`): firehose to serving in one process.

The batch pipeline answers "what was the study at ingest time T0"; this
package keeps the answer *current*.  It closes the loop between three
subsystems that previously never touched:

* **streaming** (:mod:`repro.streaming`) folds firehose micro-batches
  into an :class:`~repro.analysis.incremental.IncrementalStudyAccumulator`
  with journal-first durability — and now tracks which users each batch
  dirtied;
* **live** (this package) turns accumulator state into serving snapshots
  at cost proportional to *churn*, not study size
  (:class:`DeltaSnapshotBuilder` + the exact-digest fragment cache of
  :mod:`repro.live.fragments`), on a batch-count or wall-clock cadence
  (:class:`LiveStudyPipeline`);
* **serving** (:mod:`repro.serving`) publishes each build through the
  atomic :meth:`~repro.serving.state.SnapshotStore.swap` a running
  :class:`~repro.serving.http.StudyServer` reads — no SIGHUP, no file
  round-trip, old snapshot retained on build failure.

The core invariant — property-tested in
``tests/live/test_swap_equivalence.py`` on both datasets — is that at
every swap the served snapshot is **byte-identical** to
``ServingSnapshot.from_study(accumulator.snapshot())`` at that
checkpoint: the full batch build is just the delta build's degenerate
all-dirty case, so there is one code path to trust.

Layer map:

* :mod:`repro.live.fragments` — exact incremental composition of the
  canonical study JSON document (the content digest without O(full
  study) re-serialisation).
* :mod:`repro.live.builder` — :class:`DeltaSnapshotBuilder`, per-user /
  per-region cached snapshot assembly.
* :mod:`repro.live.pipeline` — :class:`LiveConfig` /
  :class:`LiveStudyPipeline`, the cadence loop and swap publisher.
"""

from repro.live.builder import DeltaSnapshotBuilder
from repro.live.pipeline import LiveConfig, LiveStudyPipeline

__all__ = [
    "DeltaSnapshotBuilder",
    "LiveConfig",
    "LiveStudyPipeline",
]
