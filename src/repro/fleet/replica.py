"""Subprocess replicas: spawn, watch, restart.

A :class:`ReplicaHandle` wraps one ``repro serve`` subprocess: it spawns
the process with ``--port 0``, parses the bound port from the startup
banner, waits until ``/healthz`` answers, and can terminate it.  The
:class:`ReplicaSupervisor` owns N handles plus the shared
:class:`~repro.fleet.targets.ReplicaSet`: a monitor thread polls the
processes and restarts any that die, re-binding the front's target at
the new port so traffic resumes without reconfiguration.

The one subtle piece of state is ``desired_path`` — the snapshot a
*restarted* replica must boot with.  It starts as the seed snapshot and
is advanced by the rollout controller **only on promote**, so a replica
that crashes mid-rollout comes back on whichever version the fleet has
actually committed to: the old one if the canary has not been promoted
yet, the new one after promotion.  (A restarted replica boots from its
snapshot file, so it lands on the right version even though it missed
the in-place ``/admin/reload`` fan-out.)
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.errors import ReplicaBootError
from repro.fleet.targets import ReplicaSet, ReplicaTarget

#: Startup banner line the serve CLI prints once the socket is bound.
_BANNER_RE = re.compile(r"on http://[^\s:]+:(\d+)")

#: Seconds allowed for a fresh subprocess to print its banner and pass
#: its first health check.
DEFAULT_BOOT_TIMEOUT_S = 30.0

#: Seconds between supervisor liveness sweeps.
DEFAULT_POLL_INTERVAL_S = 0.25


def _repro_env() -> dict[str, str]:
    """Subprocess environment with this ``repro`` package importable."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class ReplicaHandle:
    """One ``repro serve`` subprocess and its lifecycle.

    Args:
        replica_id: Stable fleet name for this slot (``"r0"``, …).
        snapshot_path: Study artifact the replica boots from.
        server: Transport for the replica itself (``thread``/``asyncio``).
        gazetteer: Gazetteer name passed through to ``repro serve``.
        host: Bind address (loopback for single-machine fleets).
        boot_timeout_s: Deadline for banner + first health check.
    """

    def __init__(
        self,
        replica_id: str,
        snapshot_path: str,
        server: str = "thread",
        gazetteer: str = "korean",
        host: str = "127.0.0.1",
        boot_timeout_s: float = DEFAULT_BOOT_TIMEOUT_S,
    ):
        self.replica_id = replica_id
        self.snapshot_path = snapshot_path
        self.server = server
        self.gazetteer = gazetteer
        self.host = host
        self.boot_timeout_s = boot_timeout_s
        self.port: int | None = None
        self._process: subprocess.Popen | None = None
        self._banner_event = threading.Event()
        self._tail: list[str] = []
        self._reader: threading.Thread | None = None

    # ----------------------------------------------------------------- spawn
    def _command(self) -> list[str]:
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--snapshot",
            self.snapshot_path,
            "--host",
            self.host,
            "--port",
            "0",
            "--server",
            self.server,
            "--gazetteer",
            self.gazetteer,
        ]

    def _drain_stdout(self, stream) -> None:
        """Reader thread: find the banner, then keep the pipe from filling."""
        for raw in stream:
            line = raw.rstrip("\n")
            self._tail.append(line)
            del self._tail[:-20]
            if not self._banner_event.is_set():
                match = _BANNER_RE.search(line)
                if match:
                    self.port = int(match.group(1))
                    self._banner_event.set()
        stream.close()

    def start(self) -> None:
        """Spawn the subprocess and wait until it serves ``/healthz``.

        Raises:
            ReplicaBootError: if the process exits, never prints a
                banner, or never passes a health check within the boot
                timeout.
        """
        self.port = None
        self._banner_event.clear()
        self._tail = []
        self._process = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_repro_env(),
        )
        self._reader = threading.Thread(
            target=self._drain_stdout,
            args=(self._process.stdout,),
            name=f"replica-{self.replica_id}-stdout",
            daemon=True,
        )
        self._reader.start()
        deadline = time.monotonic() + self.boot_timeout_s
        while not self._banner_event.wait(timeout=0.05):
            if self._process.poll() is not None:
                raise ReplicaBootError(
                    f"replica {self.replica_id} exited with code "
                    f"{self._process.returncode} before binding; last output: "
                    f"{' | '.join(self._tail[-5:])}"
                )
            if time.monotonic() >= deadline:
                self.terminate()
                raise ReplicaBootError(
                    f"replica {self.replica_id} printed no banner within "
                    f"{self.boot_timeout_s:.0f}s"
                )
        self._wait_healthy(deadline)

    def _wait_healthy(self, deadline: float) -> None:
        probe = ReplicaTarget(self.replica_id, self.host, int(self.port or 0))
        try:
            while time.monotonic() < deadline:
                if self._process is not None and self._process.poll() is not None:
                    raise ReplicaBootError(
                        f"replica {self.replica_id} exited with code "
                        f"{self._process.returncode} before its first health "
                        f"check; last output: {' | '.join(self._tail[-5:])}"
                    )
                if probe.probe() is not None:
                    return
                time.sleep(0.05)
        finally:
            probe.close()
        raise ReplicaBootError(
            f"replica {self.replica_id} bound port {self.port} but never "
            f"answered /healthz within {self.boot_timeout_s:.0f}s"
        )

    # ------------------------------------------------------------- lifecycle
    @property
    def alive(self) -> bool:
        """Whether the subprocess is currently running."""
        return self._process is not None and self._process.poll() is None

    @property
    def pid(self) -> int | None:
        """The subprocess pid (``None`` before the first start)."""
        return self._process.pid if self._process is not None else None

    def kill(self) -> None:
        """Hard-kill the subprocess (fault injection in tests)."""
        if self._process is not None and self._process.poll() is None:
            self._process.kill()
            self._process.wait()

    def terminate(self, timeout_s: float = 5.0) -> None:
        """Politely stop the subprocess, escalating to kill on timeout."""
        process = self._process
        if process is None:
            return
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if self._reader is not None:
            self._reader.join(timeout=1.0)


class ReplicaSupervisor:
    """Owns N subprocess replicas and keeps them running.

    Args:
        snapshot_path: Seed snapshot every replica boots with (becomes
            each handle's initial ``desired`` version).
        replicas: Fleet size.
        server: Replica transport (``thread``/``asyncio``).
        gazetteer: Gazetteer name for the replicas.
        targets: Shared registry the front routes from; the supervisor
            registers one target per replica and rebinds it on restart.
        metrics: Optional registry for ``fleet.restarts``.
        poll_interval_s: Seconds between liveness sweeps.
        boot_timeout_s: Per-replica boot deadline.
    """

    def __init__(
        self,
        snapshot_path: str,
        replicas: int,
        targets: ReplicaSet,
        server: str = "thread",
        gazetteer: str = "korean",
        metrics=None,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        boot_timeout_s: float = DEFAULT_BOOT_TIMEOUT_S,
    ):
        if replicas < 1:
            raise ValueError(f"fleet needs at least one replica, got {replicas}")
        self.targets = targets
        self.metrics = metrics
        self._poll_interval_s = poll_interval_s
        self._handles: dict[str, ReplicaHandle] = {}
        self._desired: dict[str, str] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self.restarts = 0
        for index in range(replicas):
            replica_id = f"r{index}"
            self._handles[replica_id] = ReplicaHandle(
                replica_id,
                snapshot_path,
                server=server,
                gazetteer=gazetteer,
                boot_timeout_s=boot_timeout_s,
            )
            self._desired[replica_id] = snapshot_path

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Boot every replica, register its target, start the monitor."""
        try:
            for handle in self._handles.values():
                handle.start()
                self.targets.add(
                    ReplicaTarget(handle.replica_id, handle.host, int(handle.port))
                )
        except Exception:
            self.stop()
            raise
        self._stop.clear()
        self._monitor = threading.Thread(
            target=self._watch, name="fleet-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self) -> None:
        """Stop the monitor and terminate every replica."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for handle in self._handles.values():
            handle.terminate()

    # --------------------------------------------------------------- desired
    def set_desired_path(self, snapshot_path: str) -> None:
        """Advance the fleet-wide restart version (called on promote)."""
        with self._lock:
            for replica_id in self._desired:
                self._desired[replica_id] = snapshot_path

    def desired_path(self, replica_id: str) -> str | None:
        """The snapshot a restart of ``replica_id`` would boot with."""
        with self._lock:
            return self._desired.get(replica_id)

    # --------------------------------------------------------------- monitor
    def handles(self) -> list[ReplicaHandle]:
        """The supervised handles, fleet order."""
        return list(self._handles.values())

    def handle(self, replica_id: str) -> ReplicaHandle | None:
        """The handle for ``replica_id``, if supervised."""
        return self._handles.get(replica_id)

    def _watch(self) -> None:
        while not self._stop.wait(self._poll_interval_s):
            for handle in self._handles.values():
                if handle.alive or self._stop.is_set():
                    continue
                self._restart(handle)

    def _restart(self, handle: ReplicaHandle) -> None:
        """Respawn a dead replica on its desired version and rebind routing."""
        target = self.targets.get(handle.replica_id)
        if target is not None:
            target.mark_down()
        with self._lock:
            handle.snapshot_path = self._desired[handle.replica_id]
        try:
            handle.start()
        except Exception:
            # Leave the slot down; the next sweep tries again.  A boot
            # loop (bad snapshot) therefore retries at the poll cadence
            # rather than spinning.
            return
        self.restarts += 1
        if self.metrics is not None:
            self.metrics.counter("fleet.restarts")
        if target is not None:
            target.rebind(int(handle.port))
        else:
            self.targets.add(
                ReplicaTarget(handle.replica_id, handle.host, int(handle.port))
            )
