"""Replica addressing and liveness state shared by front and supervisor.

A :class:`ReplicaTarget` is the fleet's view of one replica: where it
listens, whether the front should route to it, and the keep-alive client
pool used to reach it.  The :class:`ReplicaSet` is the shared registry —
the front reads it on every request, the supervisor rebinds targets when
it restarts a crashed subprocess, and the rollout controller excludes
the canary from routing while it serves shadow traffic.

Liveness is *passive with half-open retry*: the front marks a target
down when a request to it fails at the connection level and retries it
after ``cooldown_s`` (one probe request gets through; success marks it
up, failure re-arms the cooldown).  The supervisor's periodic
:meth:`ReplicaTarget.probe` additionally confirms health out-of-band and
reads the replica's served digest for convergence checks.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable

from repro.errors import ReplicaUnreachableError
from repro.fleet.client import PooledReplicaClient

#: Seconds a down replica is skipped before the next half-open attempt.
DEFAULT_COOLDOWN_S = 1.0


class ReplicaTarget:
    """One replica's address, routing state, and client pool.

    Args:
        replica_id: Stable name (``"r0"``, ``"r1"``, …) — survives
            restarts even though the port may not.
        host: Replica host.
        port: Replica TCP port (rebindable; see :meth:`rebind`).
        clock: Monotonic-seconds source, injectable for tests.
        cooldown_s: Half-open retry delay after a connection failure.
        timeout_s: Socket timeout for requests to this replica.
    """

    def __init__(
        self,
        replica_id: str,
        host: str,
        port: int,
        clock: Callable[[], float] = time.monotonic,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        timeout_s: float = 10.0,
    ):
        self.replica_id = replica_id
        self.host = host
        self._clock = clock
        self._cooldown_s = cooldown_s
        self._timeout_s = timeout_s
        self._lock = threading.Lock()
        self._up = True
        self._retry_at = 0.0
        self._excluded = False
        self._client = PooledReplicaClient(host, port, timeout_s=timeout_s)

    # ------------------------------------------------------------ addressing
    @property
    def port(self) -> int:
        """The current TCP port (changes across supervisor restarts)."""
        return self._client.port

    def rebind(self, port: int) -> None:
        """Point this target at a new port (replica restarted) and mark up."""
        with self._lock:
            old = self._client
            self._client = PooledReplicaClient(
                self.host, port, timeout_s=self._timeout_s
            )
            self._up = True
            self._retry_at = 0.0
        old.close()

    # --------------------------------------------------------------- traffic
    def request(self, method: str, target: str) -> tuple[int, bytes]:
        """One round trip to this replica (no state bookkeeping here —
        the front owns mark_up/mark_down so probes don't fight traffic).

        Raises:
            ReplicaUnreachableError: on a connection-level failure.
        """
        with self._lock:
            client = self._client
        return client.request(method, target)

    # -------------------------------------------------------------- liveness
    def mark_down(self) -> None:
        """Record a connection-level failure; skipped until the cooldown."""
        with self._lock:
            self._up = False
            self._retry_at = self._clock() + self._cooldown_s

    def mark_up(self) -> None:
        """Record a successful round trip."""
        with self._lock:
            self._up = True

    @property
    def up(self) -> bool:
        """Whether the last interaction succeeded."""
        with self._lock:
            return self._up

    @property
    def excluded(self) -> bool:
        """Whether routing is administratively suspended (canary duty)."""
        with self._lock:
            return self._excluded

    def set_excluded(self, flag: bool) -> None:
        """Suspend/resume routing to this replica without touching liveness."""
        with self._lock:
            self._excluded = flag

    def routable(self) -> bool:
        """Whether the front may send this replica traffic right now.

        Down targets become routable again once their cooldown expires —
        the next request through is the half-open probe.
        """
        with self._lock:
            if self._excluded:
                return False
            return self._up or self._clock() >= self._retry_at

    # ----------------------------------------------------------------- probe
    def probe(self) -> dict | None:
        """``GET /healthz`` parsed, updating liveness; ``None`` if down.

        The parsed body gives the supervisor and publisher the replica's
        served ``digest``/``generation`` and ``draining`` state.
        """
        try:
            status, body = self.request("GET", "/healthz")
            parsed = json.loads(body)
        except (ReplicaUnreachableError, ValueError):
            self.mark_down()
            return None
        if status != 200 or not isinstance(parsed, dict):
            self.mark_down()
            return None
        self.mark_up()
        return parsed

    def describe(self) -> dict[str, object]:
        """One row of ``/fleet/healthz``: address and routing state."""
        with self._lock:
            state = "excluded" if self._excluded else ("up" if self._up else "down")
        return {
            "id": self.replica_id,
            "host": self.host,
            "port": self.port,
            "state": state,
        }

    def close(self) -> None:
        """Release the client pool."""
        self._client.close()


class ReplicaSet:
    """The shared, ordered registry of replica targets (thread-safe).

    Iteration order is insertion order, which is what makes round-robin
    and the consistent-hash ring deterministic across components.  The
    ``revision`` counter bumps on membership changes so the front knows
    when to rebuild its ring.
    """

    def __init__(self) -> None:
        self._targets: dict[str, ReplicaTarget] = {}
        self._lock = threading.Lock()
        self._revision = 0

    def add(self, target: ReplicaTarget) -> None:
        """Register (or replace) a target under its replica id."""
        with self._lock:
            previous = self._targets.get(target.replica_id)
            self._targets[target.replica_id] = target
            self._revision += 1
        if previous is not None and previous is not target:
            previous.close()

    def remove(self, replica_id: str) -> None:
        """Deregister and close a target (no-op if unknown)."""
        with self._lock:
            target = self._targets.pop(replica_id, None)
            self._revision += 1
        if target is not None:
            target.close()

    def get(self, replica_id: str) -> ReplicaTarget | None:
        """The target registered under ``replica_id``, if any."""
        with self._lock:
            return self._targets.get(replica_id)

    def targets(self) -> list[ReplicaTarget]:
        """All targets, insertion-ordered."""
        with self._lock:
            return list(self._targets.values())

    def routable(self) -> list[ReplicaTarget]:
        """Targets the front may route to right now."""
        return [target for target in self.targets() if target.routable()]

    def ids(self) -> list[str]:
        """All replica ids, insertion-ordered."""
        with self._lock:
            return list(self._targets)

    @property
    def revision(self) -> int:
        """Membership-change counter (ring rebuild key)."""
        with self._lock:
            return self._revision

    def set_excluded(self, replica_id: str, flag: bool) -> None:
        """Suspend/resume routing to one replica (canary duty)."""
        target = self.get(replica_id)
        if target is not None:
            target.set_excluded(flag)

    def health_source(self) -> dict[str, object]:
        """Metrics-registry source: fleet size and healthy/routable counts."""
        targets = self.targets()
        return {
            "replicas": len(targets),
            "replicas_healthy": sum(1 for t in targets if t.up),
            "replicas_routable": sum(1 for t in targets if t.routable()),
        }

    def close(self) -> None:
        """Close every target's client pool."""
        for target in self.targets():
            target.close()
