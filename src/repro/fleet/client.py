"""Blocking keep-alive HTTP client pool for replica traffic.

Every fleet component that talks *to* a replica — the front proxying
data requests, the publisher shipping reloads, the supervisor probing
health — goes through one of these.  A :class:`PooledReplicaClient`
holds a small pool of persistent ``http.client`` connections to one
``host:port``, so steady-state traffic pays no connection setup and the
pool's size bounds the sockets a front keeps open per replica.

Failure taxonomy, matching the front's retry rules:

* A request that cannot complete at the connection level — refused,
  reset, timed out, or a malformed response — raises
  :class:`~repro.errors.ReplicaUnreachableError`.  The front treats that
  as "this replica is down": mark it, retry the request elsewhere.
* A *reused* keep-alive connection that fails before a response is
  retried once on a fresh socket first: the server may simply have
  closed an idle connection between our requests, which says nothing
  about its health.
* Any response the replica actually produced — including 4xx/5xx — is
  returned as ``(status, body)``; interpreting it is the caller's job.
"""

from __future__ import annotations

import http.client
import threading

from repro.errors import ReplicaUnreachableError

#: Idle connections kept per replica; more concurrent callers open extra
#: connections that are simply closed instead of pooled on check-in.
DEFAULT_POOL_SIZE = 8

#: Socket timeout (connect and read) for replica round trips.
DEFAULT_TIMEOUT_S = 10.0


class PooledReplicaClient:
    """A thread-safe keep-alive connection pool to one replica address.

    Args:
        host: Replica host.
        port: Replica TCP port.
        timeout_s: Socket timeout per round trip.
        pool_size: Idle connections retained between requests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        pool_size: int = DEFAULT_POOL_SIZE,
    ):
        self.host = host
        self.port = port
        self._timeout_s = timeout_s
        self._pool_size = max(1, int(pool_size))
        self._idle: list[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self._closed = False

    # -------------------------------------------------------------- plumbing
    def _fresh(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self._timeout_s
        )

    def _checkout(self) -> tuple[http.client.HTTPConnection, bool]:
        """An idle pooled connection (reused=True) or a fresh one."""
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        return self._fresh(), False

    def _checkin(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self._pool_size:
                self._idle.append(conn)
                return
        conn.close()

    @staticmethod
    def _roundtrip(
        conn: http.client.HTTPConnection, method: str, target: str
    ) -> tuple[int, bytes, bool]:
        """One request/response on ``conn``; returns (status, body, will_close)."""
        conn.request(method, target)
        response = conn.getresponse()
        body = response.read()
        return response.status, body, response.will_close

    # --------------------------------------------------------------- request
    def request(self, method: str, target: str) -> tuple[int, bytes]:
        """One round trip to the replica; returns ``(status, body bytes)``.

        A failure on a reused keep-alive connection retries once on a
        fresh socket (the server closing an idle connection is not an
        outage); a fresh connection that fails means the replica is
        genuinely unreachable.

        Raises:
            ReplicaUnreachableError: when no response can be obtained at
                the connection level.
        """
        conn, reused = self._checkout()
        try:
            status, body, will_close = self._roundtrip(conn, method, target)
        except (http.client.HTTPException, OSError) as exc:
            conn.close()
            if not reused:
                raise ReplicaUnreachableError(
                    f"{self.host}:{self.port}: {type(exc).__name__}: {exc}"
                ) from exc
            conn = self._fresh()
            try:
                status, body, will_close = self._roundtrip(conn, method, target)
            except (http.client.HTTPException, OSError) as retry_exc:
                conn.close()
                raise ReplicaUnreachableError(
                    f"{self.host}:{self.port}: "
                    f"{type(retry_exc).__name__}: {retry_exc}"
                ) from retry_exc
        if will_close:
            conn.close()
        else:
            self._checkin(conn)
        return status, body

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        """Close every idle connection; in-flight ones close on check-in."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()
