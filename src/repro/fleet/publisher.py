"""Snapshot distribution: ship one artifact to many replicas, verify by content.

The publisher's contract is *convergence by digest*, not by name: after
a fan-out it reads back each replica's ``/healthz`` and requires the
served ``study_digest`` — which hashes the snapshot's full response
surface — to be identical everywhere.  Two replicas with equal digests
return byte-identical bodies for every endpoint, so digest convergence
is exactly the property the fleet's rolling-publish test asserts.
Generation counters are useless here (each process counts its own
reloads from zero); the digest is the only cross-process identity.

Replicas load the artifact themselves via
``POST /admin/reload?snapshot=<path>`` — the publisher never ships
bytes, only the path, which on a single machine (this repo's test rig)
is shared disk.  A failed reload leaves that replica on its old
snapshot (the serving layer's keep-old-on-failure guarantee), which is
what makes publish failures safe: the fleet is never left in a state
no snapshot version can explain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import quote

from repro.errors import ReplicaUnreachableError
from repro.fleet.targets import ReplicaSet, ReplicaTarget


@dataclass
class PublishReport:
    """Outcome of one publish fan-out.

    Attributes:
        snapshot_path: The artifact that was published.
        digest: The digest every successful replica now serves (``None``
            until at least one succeeds).
        reloaded: Replica ids that accepted the reload, with the digest
            each reported.
        failed: Replica ids that could not be updated, with the reason.
        converged: True when every *targeted* replica reported the same
            digest (and matched ``expected_digest`` when one was given).
    """

    snapshot_path: str
    digest: str | None = None
    reloaded: dict[str, str] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)
    converged: bool = False

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form for CLI output and ``/fleet/status``."""
        return {
            "snapshot": self.snapshot_path,
            "digest": self.digest,
            "reloaded": dict(self.reloaded),
            "failed": dict(self.failed),
            "converged": self.converged,
        }


class SnapshotPublisher:
    """Fans snapshot reloads out to replicas and verifies convergence.

    Args:
        targets: The fleet's replica registry.
        metrics: Optional registry for publish counters.
    """

    def __init__(self, targets: ReplicaSet, metrics=None):
        self.targets = targets
        self.metrics = metrics

    # ------------------------------------------------------------ one replica
    def publish_to(
        self, target: ReplicaTarget, snapshot_path: str
    ) -> tuple[str | None, str | None]:
        """Reload one replica onto ``snapshot_path``.

        Returns:
            ``(digest, None)`` on success, ``(None, reason)`` on failure.
            Failure leaves the replica serving its previous snapshot.
        """
        reload_target = f"/admin/reload?snapshot={quote(snapshot_path, safe='')}"
        try:
            status, body = target.request("POST", reload_target)
        except ReplicaUnreachableError as exc:
            target.mark_down()
            return None, f"unreachable: {exc}"
        target.mark_up()
        try:
            parsed = json.loads(body)
        except ValueError:
            parsed = {}
        if not isinstance(parsed, dict):
            parsed = {}
        if status != 200:
            reason = parsed.get("error", f"status {status}")
            return None, f"reload rejected: {reason}"
        digest = parsed.get("digest")
        if not isinstance(digest, str) or not digest:
            return None, "reload response carried no digest"
        return digest, None

    # -------------------------------------------------------------- fan out
    def publish(
        self,
        snapshot_path: str,
        replica_ids: list[str] | None = None,
        expected_digest: str | None = None,
    ) -> PublishReport:
        """Reload every targeted replica and check digest convergence.

        Args:
            snapshot_path: Artifact path the replicas should load.
            replica_ids: Subset to target (default: the whole fleet).
            expected_digest: When given, every reloaded replica must
                report exactly this digest for the report to converge —
                the caller's guard against a replica reading a *different*
                file at the same path (e.g. a stale NFS view).

        Returns:
            A :class:`PublishReport`; ``converged`` is the one flag
            callers should gate on.
        """
        report = PublishReport(snapshot_path=snapshot_path)
        targeted = self.targets.targets()
        if replica_ids is not None:
            wanted = set(replica_ids)
            targeted = [t for t in targeted if t.replica_id in wanted]
        for target in targeted:
            digest, reason = self.publish_to(target, snapshot_path)
            if digest is None:
                report.failed[target.replica_id] = reason or "unknown failure"
                if self.metrics is not None:
                    self.metrics.counter("fleet.publish_failures")
                continue
            report.reloaded[target.replica_id] = digest
            if self.metrics is not None:
                self.metrics.counter("fleet.publishes")
        digests = set(report.reloaded.values())
        report.digest = digests.pop() if len(digests) == 1 else None
        report.converged = bool(
            targeted
            and not report.failed
            and report.digest is not None
            and (expected_digest is None or report.digest == expected_digest)
        )
        return report

    # ---------------------------------------------------------- convergence
    def served_digests(self) -> dict[str, str | None]:
        """Each replica's currently served digest (``None`` if unreachable).

        Reads ``/healthz`` rather than trusting the last reload response,
        so it also catches replicas that restarted onto a different
        snapshot after the fan-out.
        """
        digests: dict[str, str | None] = {}
        for target in self.targets.targets():
            health = target.probe()
            digest = health.get("digest") if health else None
            digests[target.replica_id] = digest if isinstance(digest, str) else None
        return digests

    def converged(self, expected_digest: str) -> bool:
        """Whether every replica currently serves ``expected_digest``."""
        served = self.served_digests()
        return bool(served) and all(
            digest == expected_digest for digest in served.values()
        )
