"""The fleet front: one address, many replicas, same wire protocol.

:class:`FleetFront` implements the exact app protocol the serving
transports mount — ``dispatch(method, target) -> (status, bytes)``,
``dispatch_blocks``, ``metrics`` — so the PR 9 framing code serves it
unchanged: ``start_background_server(front, "thread" | "asyncio")``
gives the fleet a thread-per-connection or event-loop front door with
keep-alive, pipelining, and the full error taxonomy, none of it
reimplemented here.  (Under the asyncio transport every proxied request
blocks on a replica socket, so ``dispatch_blocks`` answers ``True`` for
them and the transport runs the proxy hop on its executor.)

Request path, in order:

1. **Fleet endpoints** (``/fleet/healthz``, ``/fleet/metrics``,
   ``/fleet/status``, ``/fleet/publish``) are answered locally — they
   must work even when every replica is down.
2. **Admission**: a fleet-level token bucket layered over the replicas'
   own buckets — the fleet's total budget is enforced here in one place,
   while each replica keeps its local bucket as self-protection against
   fronts bypassing this one.
3. **Shadow mirror**: when a health-gated rollout is shadowing, admitted
   data requests are tapped (fire-and-forget) to the canary.
4. **Routing**: round-robin or consistent-hash over the routable
   replicas, with the ring's clockwise walk as the failover order.
5. **Retry**: a replica that fails at the connection level is marked
   down and the request retried on the next candidate (``fleet.retries``)
   — safe because the front only proxies idempotent GETs.  A ``503``
   from a draining replica also moves to the next candidate.

Proxied responses pass through byte-for-byte: the front adds no
envelope, so the fleet-wide property test can compare wire bytes against
the per-version reference dispatch directly.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING, Callable
from urllib.parse import parse_qsl, urlsplit

from repro.engine.metrics import MetricsRegistry
from repro.errors import ReplicaUnreachableError, RolloutInProgressError
from repro.fleet.ring import HashRing
from repro.fleet.targets import ReplicaSet, ReplicaTarget
from repro.serving.http import DATA_ENDPOINTS, encode_body
from repro.serving.ratelimit import TokenBucket

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (controller ↔ front)
    from repro.fleet.controller import FleetController

#: Routing policies the front understands (the CLI's --hash/--round-robin).
ROUTE_POLICIES = ("round-robin", "hash")

#: Path prefix answered locally instead of proxied.
FLEET_PREFIX = "/fleet"


class FleetFront:
    """Routing core for a replica fleet; mounts on either transport.

    Args:
        replicas: The shared replica registry (also updated by the
            supervisor and rollout controller).
        metrics: Registry for fleet counters/histograms (fresh if omitted).
        bucket: Fleet-level admission bucket (unlimited if omitted).
        route: ``"round-robin"`` or ``"hash"``.
        clock: Monotonic-seconds source (latency measurements).

    Raises:
        ValueError: on an unknown routing policy.
    """

    def __init__(
        self,
        replicas: ReplicaSet,
        metrics: MetricsRegistry | None = None,
        bucket: TokenBucket | None = None,
        route: str = "round-robin",
        clock: Callable[[], float] = time.perf_counter,
    ):
        if route not in ROUTE_POLICIES:
            raise ValueError(
                f"unknown route policy: {route!r} (expected one of {ROUTE_POLICIES})"
            )
        self.replicas = replicas
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bucket = bucket if bucket is not None else TokenBucket(rate=None)
        self.route = route
        self._clock = clock
        self._rr = itertools.count()
        self._ring: HashRing | None = None
        self._ring_revision = -1
        self._controller: "FleetController | None" = None
        self._mirror: Callable[[str, str], None] | None = None
        self.metrics.register_source("fleet", replicas.health_source)
        self.metrics.register_source("fleet.admission", self.bucket.snapshot_source)

    # ------------------------------------------------------------ controller
    def attach_controller(self, controller: "FleetController") -> None:
        """Wire the rollout controller behind ``/fleet/publish``/``status``."""
        self._controller = controller

    def set_mirror(self, mirror: Callable[[str, str], None] | None) -> None:
        """Install (or clear) the shadow-traffic tap.

        The tap receives every admitted data-endpoint ``(method,
        target)`` and must never block — the rollout's mirror enqueues
        onto a bounded queue and drops on overflow.
        """
        self._mirror = mirror

    # -------------------------------------------------------------- dispatch
    def dispatch(self, method: str, target: str) -> tuple[int, bytes]:
        """Serve one request: fleet endpoint locally, data by proxy."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        self.metrics.counter("fleet.requests")

        if path.startswith(FLEET_PREFIX):
            status, body = self._local(method, path, dict(parse_qsl(split.query)))
            return status, encode_body(body)

        if method != "GET":
            # The front proxies only idempotent reads; admin writes go to
            # the replicas (publisher) or to /fleet/publish (rollout).
            return 405, encode_body(
                {"error": f"method not allowed through the front: {method}"}
            )

        if path in DATA_ENDPOINTS:
            if not self.bucket.try_acquire():
                self.metrics.counter("fleet.shed")
                return 429, encode_body({"error": "rate limited; retry later"})
            mirror = self._mirror
            if mirror is not None:
                mirror(method, target)

        return self._proxy(method, target, path)

    def dispatch_blocks(self, method: str, target: str) -> bool:
        """Every proxied request blocks on a replica socket; only the
        locally answered ``/fleet/*`` endpoints stay on the event loop."""
        path = urlsplit(target).path.rstrip("/") or "/"
        return not path.startswith(FLEET_PREFIX)

    # ----------------------------------------------------------------- proxy
    def _candidates(self, target: str) -> list[ReplicaTarget]:
        """Routable replicas in try-order for ``target``."""
        routable = self.replicas.routable()
        if not routable:
            return []
        if self.route == "hash":
            revision = self.replicas.revision
            if self._ring is None or self._ring_revision != revision:
                # Ring membership is *all* replicas, not just routable
                # ones: a briefly-down replica keeps its key ownership,
                # so recovery restores affinity instead of reshuffling.
                self._ring = HashRing(self.replicas.ids())
                self._ring_revision = revision
            by_id = {replica.replica_id: replica for replica in routable}
            ordered = [
                by_id[owner] for owner in self._ring.order(target) if owner in by_id
            ]
            return ordered or routable
        start = next(self._rr) % len(routable)
        return routable[start:] + routable[:start]

    def _proxy(self, method: str, target: str, path: str) -> tuple[int, bytes]:
        """Forward to the first candidate that answers; retry across the
        rest on connection failure (and on 503 from draining replicas)."""
        candidates = self._candidates(target)
        if not candidates:
            self.metrics.counter("fleet.unroutable")
            return 503, encode_body({"error": "no replica available"})
        drained: tuple[int, bytes] | None = None
        for attempt, replica in enumerate(candidates):
            if attempt:
                self.metrics.counter("fleet.retries")
            start = self._clock()
            try:
                status, payload = replica.request(method, target)
            except ReplicaUnreachableError:
                replica.mark_down()
                self.metrics.counter("fleet.replica_errors")
                continue
            replica.mark_up()
            elapsed = self._clock() - start
            self.metrics.histogram(
                f"fleet.replica.{replica.replica_id}.latency"
            ).observe(elapsed)
            self.metrics.histogram("fleet.latency").observe(elapsed)
            if status == 503 and path in DATA_ENDPOINTS:
                # A draining replica is alive but refusing new work; the
                # request belongs on the next candidate.  Keep the 503 in
                # hand in case the whole fleet is draining.
                drained = (status, payload)
                continue
            return status, payload
        if drained is not None:
            return drained
        self.metrics.counter("fleet.unroutable")
        return 502, encode_body({"error": "all replicas unreachable"})

    # --------------------------------------------------------------- locals
    def _local(
        self, method: str, path: str, params: dict[str, str]
    ) -> tuple[int, dict]:
        """Answer one ``/fleet/*`` endpoint from front-local state."""
        if path == "/fleet/healthz":
            if method != "GET":
                return 405, {"error": "healthz requires GET"}
            return 200, self._healthz_body()
        if path == "/fleet/metrics":
            if method != "GET":
                return 405, {"error": "metrics requires GET"}
            return 200, {"metrics": self.metrics.snapshot()}
        if path == "/fleet/status":
            if method != "GET":
                return 405, {"error": "status requires GET"}
            if self._controller is None:
                return 400, {"error": "no rollout controller attached"}
            return 200, self._controller.status()
        if path == "/fleet/publish":
            if method != "POST":
                return 405, {"error": "publish requires POST"}
            if self._controller is None:
                return 400, {"error": "no rollout controller attached"}
            snapshot = params.get("snapshot")
            if not snapshot:
                return 400, {"error": "missing required parameter: snapshot"}
            gated = params.get("gate", "1") not in ("0", "false", "no")
            try:
                self._controller.start_publish(snapshot, gated=gated)
            except RolloutInProgressError as exc:
                return 409, {"error": str(exc)}
            return 202, {"accepted": True, "snapshot": snapshot, "gated": gated}
        return 404, {"error": f"unknown fleet endpoint: {path}"}

    def _healthz_body(self) -> dict[str, object]:
        """Fleet-level health: per-replica rows plus aggregate status."""
        rows = [target.describe() for target in self.replicas.targets()]
        routable = sum(1 for row in rows if row["state"] == "up")
        if not rows or routable == 0:
            status = "down"
        elif routable < len(rows):
            status = "degraded"
        else:
            status = "ok"
        body: dict[str, object] = {
            "status": status,
            "route": self.route,
            "replicas": rows,
            "routable": routable,
        }
        if self._controller is not None:
            body["version"] = self._controller.current_version
            body["rollout"] = self._controller.state_name
        return body
