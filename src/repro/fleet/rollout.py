"""Health-gated rollout primitives: budgets, shadow sampling, the mirror.

A gated publish never exposes users to an unvetted snapshot.  The new
version goes to one **canary** replica first, which is excluded from
routing; the front *mirrors* live data traffic at it (fire-and-forget
copies of admitted GETs), and a :class:`ShadowWindow` accumulates the
canary's error/latency samples.  Only if the window holds the
:class:`RolloutConfig` budget over enough samples does the controller
promote the snapshot fleet-wide; any breach — error spike, latency
regression, or simply not enough evidence before the timeout — rolls
the canary back and the fleet never changes version.

The mirror is deliberately lossy: it enqueues onto a bounded queue and
drops on overflow, because shadow traffic must never add backpressure
to the live path.  Dropped mirrors are counted, not retried — the gate
needs a *sample* of production traffic, not a replay of all of it.
"""

from __future__ import annotations

import enum
import queue
import threading
import time
from dataclasses import dataclass

from repro.errors import ReplicaUnreachableError
from repro.fleet.targets import ReplicaTarget


class RolloutState(enum.Enum):
    """Where a rollout currently stands (``/fleet/status``)."""

    IDLE = "idle"
    CANARY = "canary"
    SHADOWING = "shadowing"
    PROMOTING = "promoting"
    ROLLING_BACK = "rolling-back"


@dataclass(frozen=True)
class RolloutConfig:
    """Budgets a canary must hold before promotion.

    Attributes:
        min_shadow_samples: Samples the window needs before the gate may
            pass — fewer by the timeout means rollback (no evidence is
            treated as bad evidence).
        max_error_rate: Highest tolerable fraction of failed shadow
            requests (connection failures or 5xx responses).
        max_p95_latency_s: Highest tolerable p95 of shadow latencies.
        shadow_timeout_s: Wall-clock budget for collecting samples.
        mirror_queue_size: Bound on queued-but-unsent shadow requests;
            overflow drops (counted) rather than blocking live traffic.
    """

    min_shadow_samples: int = 50
    max_error_rate: float = 0.05
    max_p95_latency_s: float = 0.5
    shadow_timeout_s: float = 30.0
    mirror_queue_size: int = 256

    def __post_init__(self):
        if self.min_shadow_samples < 1:
            raise ValueError("min_shadow_samples must be >= 1")
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ValueError("max_error_rate must be within [0, 1]")
        if self.max_p95_latency_s <= 0:
            raise ValueError("max_p95_latency_s must be positive")
        if self.shadow_timeout_s <= 0:
            raise ValueError("shadow_timeout_s must be positive")


#: Gate verdicts a shadow window can return.
VERDICT_PASS = "pass"
VERDICT_ERROR_RATE = "fail-error-rate"
VERDICT_LATENCY = "fail-latency"
VERDICT_INSUFFICIENT = "fail-insufficient-samples"


class ShadowWindow:
    """Thread-safe accumulator for one canary's shadow results."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._errors = 0

    def record(self, ok: bool, latency_s: float) -> None:
        """Add one shadow result (``ok`` False on 5xx or unreachable)."""
        with self._lock:
            self._latencies.append(latency_s)
            if not ok:
                self._errors += 1

    @property
    def samples(self) -> int:
        """Shadow requests completed so far."""
        with self._lock:
            return len(self._latencies)

    @property
    def errors(self) -> int:
        """Failed shadow requests so far."""
        with self._lock:
            return self._errors

    def error_rate(self) -> float:
        """Failures as a fraction of samples (0 with no samples)."""
        with self._lock:
            return self._errors / len(self._latencies) if self._latencies else 0.0

    def p95_latency_s(self) -> float:
        """p95 of shadow latencies (0 with no samples)."""
        with self._lock:
            if not self._latencies:
                return 0.0
            ordered = sorted(self._latencies)
            index = min(len(ordered) - 1, int(0.95 * len(ordered)))
            return ordered[index]

    def verdict(self, config: RolloutConfig) -> str:
        """Judge the window against the budget (one of the VERDICT_*)."""
        if self.samples < config.min_shadow_samples:
            return VERDICT_INSUFFICIENT
        if self.error_rate() > config.max_error_rate:
            return VERDICT_ERROR_RATE
        if self.p95_latency_s() > config.max_p95_latency_s:
            return VERDICT_LATENCY
        return VERDICT_PASS

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly summary for status output."""
        return {
            "samples": self.samples,
            "errors": self.errors,
            "error_rate": round(self.error_rate(), 4),
            "p95_latency_s": round(self.p95_latency_s(), 6),
        }


class ShadowMirror:
    """Replays admitted data GETs against the canary off the hot path.

    The front calls :meth:`tap` inline per request; a single worker
    thread drains the queue and records each round trip's outcome in the
    shared :class:`ShadowWindow`.  One worker is enough — the gate wants
    an unbiased latency sample, and a single serial prober measures the
    canary the way one client would see it.
    """

    def __init__(
        self,
        canary: ReplicaTarget,
        window: ShadowWindow,
        queue_size: int = 256,
        clock=time.perf_counter,
    ):
        self._canary = canary
        self._window = window
        self._clock = clock
        self._queue: "queue.Queue[tuple[str, str] | None]" = queue.Queue(
            maxsize=max(1, queue_size)
        )
        self.dropped = 0
        self._worker = threading.Thread(
            target=self._drain, name="fleet-shadow-mirror", daemon=True
        )
        self._worker.start()

    def tap(self, method: str, target: str) -> None:
        """Enqueue one live request for shadow replay (never blocks)."""
        try:
            self._queue.put_nowait((method, target))
        except queue.Full:
            self.dropped += 1

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            method, target = item
            start = self._clock()
            try:
                status, _ = self._canary.request(method, target)
                ok = status < 500
            except ReplicaUnreachableError:
                ok = False
            self._window.record(ok, self._clock() - start)

    def close(self, timeout_s: float = 2.0) -> None:
        """Stop the worker after the queue drains."""
        self._queue.put(None)
        self._worker.join(timeout=timeout_s)
