"""Multi-replica serving: supervision, snapshot distribution, gated rollout.

The fleet layer scales the single-process serving stack horizontally on
one machine: a :class:`~repro.fleet.replica.ReplicaSupervisor` keeps N
``repro serve`` subprocesses alive, a
:class:`~repro.fleet.front.FleetFront` (itself an app-protocol object,
mountable on either serving transport) routes and retries requests
across them, a :class:`~repro.fleet.publisher.SnapshotPublisher` fans
snapshot reloads out and verifies convergence by content digest, and a
:class:`~repro.fleet.controller.FleetController` runs health-gated
rollouts — canary, shadow traffic, promote-or-rollback.

Everything is stdlib-only and testable on one machine; the process
boundary (HTTP over loopback) is the same one a real multi-host fleet
would cross.
"""

from repro.fleet.client import PooledReplicaClient
from repro.fleet.controller import FleetController
from repro.fleet.front import ROUTE_POLICIES, FleetFront
from repro.fleet.publisher import PublishReport, SnapshotPublisher
from repro.fleet.replica import ReplicaHandle, ReplicaSupervisor
from repro.fleet.ring import HashRing
from repro.fleet.rollout import (
    VERDICT_ERROR_RATE,
    VERDICT_INSUFFICIENT,
    VERDICT_LATENCY,
    VERDICT_PASS,
    RolloutConfig,
    RolloutState,
    ShadowMirror,
    ShadowWindow,
)
from repro.fleet.targets import ReplicaSet, ReplicaTarget

__all__ = [
    "PooledReplicaClient",
    "FleetController",
    "FleetFront",
    "ROUTE_POLICIES",
    "PublishReport",
    "SnapshotPublisher",
    "ReplicaHandle",
    "ReplicaSupervisor",
    "HashRing",
    "RolloutConfig",
    "RolloutState",
    "ShadowMirror",
    "ShadowWindow",
    "VERDICT_ERROR_RATE",
    "VERDICT_INSUFFICIENT",
    "VERDICT_LATENCY",
    "VERDICT_PASS",
    "ReplicaSet",
    "ReplicaTarget",
]
