"""The rollout controller: canary → shadow → promote, or roll back.

:class:`FleetController` owns the fleet's *version* state — which
snapshot path and digest the fleet is committed to — and runs each
publish as a background state machine:

1. **CANARY** — pick one replica, exclude it from routing, reload it
   onto the candidate snapshot.  A failed canary reload ends the rollout
   immediately (the serving layer kept the old snapshot, so nothing
   changed anywhere).
2. **SHADOWING** (gated publishes) — install the mirror on the front so
   admitted data traffic is replayed at the canary, and wait until the
   :class:`~repro.fleet.rollout.ShadowWindow` holds enough samples or
   the window times out.
3. **PROMOTING** — if the budget held, fan the snapshot out to the rest
   of the fleet with the canary's digest as the expected value, advance
   the supervisor's restart version, and re-admit the canary.
4. **ROLLING_BACK** — on any breach (error spike, latency regression,
   too few samples, non-converged fan-out) reload the canary back onto
   the committed snapshot and leave the fleet's version untouched.

The invariant the property test pins: at every instant, every replica
the front routes to serves either the committed snapshot or the
promoted one — never a third state — because the canary is unroutable
for exactly the interval during which it serves anything else.
"""

from __future__ import annotations

import threading
import time

from repro.errors import RolloutInProgressError
from repro.fleet.publisher import SnapshotPublisher
from repro.fleet.rollout import (
    VERDICT_PASS,
    RolloutConfig,
    RolloutState,
    ShadowMirror,
    ShadowWindow,
)

#: Seconds between sample-count polls while shadowing.
_SHADOW_POLL_S = 0.02


class FleetController:
    """Runs health-gated snapshot rollouts over a replica fleet.

    Args:
        front: The :class:`~repro.fleet.front.FleetFront` (mirror tap and
            routing exclusion go through it); the controller attaches
            itself so ``/fleet/publish`` and ``/fleet/status`` work.
        publisher: Snapshot fan-out and convergence checks.
        current_path: The snapshot path the fleet currently serves.
        current_digest: Its digest, if known; otherwise discovered from
            the replicas' health endpoints on first need.
        config: Canary budgets.
        supervisor: Optional :class:`~repro.fleet.replica.ReplicaSupervisor`
            whose restart version advances on promote.
        metrics: Optional registry for rollout counters.
    """

    def __init__(
        self,
        front,
        publisher: SnapshotPublisher,
        current_path: str,
        current_digest: str | None = None,
        config: RolloutConfig | None = None,
        supervisor=None,
        metrics=None,
    ):
        self.front = front
        self.publisher = publisher
        self.config = config or RolloutConfig()
        self.supervisor = supervisor
        self.metrics = metrics if metrics is not None else front.metrics
        self._lock = threading.Lock()
        self._state = RolloutState.IDLE
        self._current_path = current_path
        self._current_digest = current_digest
        self._last: dict[str, object] | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        front.attach_controller(self)

    # ------------------------------------------------------------- identity
    @property
    def state_name(self) -> str:
        """The state machine's position, as its wire string."""
        with self._lock:
            return self._state.value

    @property
    def current_path(self) -> str:
        """The snapshot path the fleet is committed to."""
        with self._lock:
            return self._current_path

    @property
    def current_digest(self) -> str | None:
        """The committed snapshot's digest (discovered lazily)."""
        with self._lock:
            if self._current_digest is not None:
                return self._current_digest
        served = self.publisher.served_digests()
        discovered = next((d for d in served.values() if d), None)
        with self._lock:
            if self._current_digest is None and discovered is not None:
                self._current_digest = discovered
            return self._current_digest

    @property
    def current_version(self) -> str | None:
        """Short content version (first 16 digest hex), or ``None``."""
        digest = self.current_digest
        return digest[:16] if digest else None

    def status(self) -> dict[str, object]:
        """``/fleet/status`` body: version state plus the last rollout."""
        with self._lock:
            body: dict[str, object] = {
                "state": self._state.value,
                "snapshot": self._current_path,
                "digest": self._current_digest,
                "last_rollout": dict(self._last) if self._last else None,
            }
        return body

    # --------------------------------------------------------------- publish
    def start_publish(self, snapshot_path: str, gated: bool = True) -> None:
        """Begin a rollout in the background.

        Raises:
            RolloutInProgressError: if a rollout is already running.
        """
        with self._lock:
            if self._state is not RolloutState.IDLE:
                raise RolloutInProgressError(
                    f"rollout already {self._state.value} "
                    f"(snapshot {self._current_path})"
                )
            self._state = RolloutState.CANARY
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run,
            args=(snapshot_path, gated),
            name="fleet-rollout",
            daemon=True,
        )
        self._thread.start()

    def publish_and_wait(
        self, snapshot_path: str, gated: bool = True, timeout_s: float | None = None
    ) -> dict[str, object] | None:
        """Convenience for the CLI and tests: publish, block, report."""
        self.start_publish(snapshot_path, gated=gated)
        self.wait(timeout_s)
        with self._lock:
            return dict(self._last) if self._last else None

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until the running rollout (if any) finishes."""
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout_s)
        return not thread.is_alive()

    def shutdown(self) -> None:
        """Abort any running rollout and wait for its thread."""
        self._stop.set()
        self.wait(timeout_s=10.0)

    # ---------------------------------------------------------- state machine
    def _set_state(self, state: RolloutState) -> None:
        with self._lock:
            self._state = state

    def _finish(self, outcome: dict[str, object]) -> None:
        with self._lock:
            self._last = outcome
            self._state = RolloutState.IDLE

    def _commit(self, snapshot_path: str, digest: str) -> None:
        with self._lock:
            self._current_path = snapshot_path
            self._current_digest = digest
        if self.supervisor is not None:
            self.supervisor.set_desired_path(snapshot_path)

    def _run(self, snapshot_path: str, gated: bool) -> None:
        outcome: dict[str, object] = {
            "snapshot": snapshot_path,
            "gated": gated,
            "promoted": False,
        }
        try:
            if gated:
                self._run_gated(snapshot_path, outcome)
            else:
                self._run_ungated(snapshot_path, outcome)
        except Exception as exc:  # noqa: BLE001 — a rollout must never
            # leave the controller wedged in a non-IDLE state.
            outcome["error"] = f"{type(exc).__name__}: {exc}"
        self._finish(outcome)

    def _run_ungated(self, snapshot_path: str, outcome: dict[str, object]) -> None:
        """Direct fleet-wide publish: converge or roll everything back."""
        self._set_state(RolloutState.PROMOTING)
        old_path = self.current_path
        report = self.publisher.publish(snapshot_path)
        outcome["publish"] = report.as_dict()
        if report.converged and report.digest:
            self._commit(snapshot_path, report.digest)
            outcome["promoted"] = True
            self.metrics.counter("fleet.promotes")
            return
        self._set_state(RolloutState.ROLLING_BACK)
        rollback = self.publisher.publish(old_path)
        outcome["rollback"] = rollback.as_dict()
        outcome["verdict"] = "fail-not-converged"
        self.metrics.counter("fleet.rollbacks")

    def _run_gated(self, snapshot_path: str, outcome: dict[str, object]) -> None:
        """Canary → shadow → promote/rollback."""
        canary = self._pick_canary()
        if canary is None:
            outcome["error"] = "no replica available for canary duty"
            return
        outcome["canary"] = canary.replica_id
        old_path = self.current_path
        old_digest = self.current_digest
        self.front.replicas.set_excluded(canary.replica_id, True)
        try:
            digest, reason = self.publisher.publish_to(canary, snapshot_path)
            if digest is None:
                outcome["error"] = f"canary reload failed: {reason}"
                # The canary kept its old snapshot; nothing to undo.
                return
            outcome["candidate_digest"] = digest
            if digest == old_digest:
                # Publishing the committed version is a no-op, not a
                # rollout — common when an operator re-runs a publish.
                self._commit(snapshot_path, digest)
                outcome["promoted"] = True
                outcome["verdict"] = "no-op (digest unchanged)"
                return

            window = ShadowWindow()
            mirror = ShadowMirror(
                canary, window, queue_size=self.config.mirror_queue_size
            )
            self._set_state(RolloutState.SHADOWING)
            self.front.set_mirror(mirror.tap)
            try:
                self._await_samples(window)
            finally:
                self.front.set_mirror(None)
                mirror.close()
            outcome["shadow"] = window.as_dict()
            outcome["shadow_dropped"] = mirror.dropped
            verdict = window.verdict(self.config)
            outcome["verdict"] = verdict

            if verdict == VERDICT_PASS:
                self._set_state(RolloutState.PROMOTING)
                others = [
                    t.replica_id
                    for t in self.front.replicas.targets()
                    if t.replica_id != canary.replica_id
                ]
                report = self.publisher.publish(
                    snapshot_path, replica_ids=others, expected_digest=digest
                )
                outcome["publish"] = report.as_dict()
                if report.converged or not others:
                    self._commit(snapshot_path, digest)
                    outcome["promoted"] = True
                    self.metrics.counter("fleet.promotes")
                    return
                outcome["verdict"] = "fail-not-converged"
                # Some non-canary replicas may already hold the new
                # version; they roll back alongside the canary below.
                touched = list(report.reloaded)
            else:
                touched = []

            # Any non-pass verdict lands here: restore everything that
            # was moved off the committed snapshot.
            self._set_state(RolloutState.ROLLING_BACK)
            rollback = self.publisher.publish(
                old_path,
                replica_ids=[canary.replica_id, *touched],
                expected_digest=old_digest,
            )
            outcome["rollback"] = rollback.as_dict()
            self.metrics.counter("fleet.rollbacks")
        finally:
            self.front.replicas.set_excluded(canary.replica_id, False)

    def _pick_canary(self):
        """First live replica takes canary duty (deterministic, simple)."""
        routable = self.front.replicas.routable()
        if routable:
            return routable[0]
        targets = self.front.replicas.targets()
        return targets[0] if targets else None

    def _await_samples(self, window: ShadowWindow) -> None:
        deadline = time.monotonic() + self.config.shadow_timeout_s
        while time.monotonic() < deadline and not self._stop.is_set():
            if window.samples >= self.config.min_shadow_samples:
                return
            time.sleep(_SHADOW_POLL_S)
