"""Consistent-hash ring for replica routing.

Round-robin spreads load evenly but gives a query no home: the same
``/lookup?user=17`` lands on a different replica every time, so every
replica ends up warming the same cache lines.  The ring gives each
request key a stable owner — and, just as importantly for the front's
retry path, a stable *failover order*: walking the ring clockwise from
the key's position visits every replica exactly once, so "try the next
replica" is deterministic and each key's spillover spreads across the
fleet instead of dog-piling one neighbour.

Virtual nodes smooth the key distribution: each replica id is hashed
``vnodes`` times onto a 64-bit circle, so removing one replica remaps
only the keys it owned (~1/N of the space) and leaves every other
key's owner untouched — the classic minimal-disruption property, pinned
by the ring's property tests.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

#: Virtual nodes per replica id — enough to keep ownership within a few
#: percent of uniform at single-digit fleet sizes.
DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    """Stable 64-bit position on the ring (first 8 bytes of SHA-1)."""
    return int.from_bytes(hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over replica ids.

    Args:
        ids: Replica ids to place on the ring.
        vnodes: Virtual nodes per id (>= 1).
    """

    def __init__(self, ids: Iterable[str], vnodes: int = DEFAULT_VNODES):
        self._vnodes = max(1, int(vnodes))
        self._ids = list(dict.fromkeys(ids))
        points: list[tuple[int, str]] = []
        for replica_id in self._ids:
            for vnode in range(self._vnodes):
                points.append((_hash64(f"{replica_id}#{vnode}"), replica_id))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [owner for _, owner in points]

    @property
    def ids(self) -> list[str]:
        """The distinct ids on the ring, in insertion order."""
        return list(self._ids)

    def owner(self, key: str) -> str | None:
        """The id owning ``key`` (``None`` on an empty ring)."""
        order = self.order(key)
        return order[0] if order else None

    def order(self, key: str) -> list[str]:
        """Every id, ordered by ring distance clockwise from ``key``.

        The first entry is the key's owner; the rest are its failover
        sequence.  Walking clockwise and keeping first occurrences makes
        the sequence a permutation of the ids — stable for a fixed ring,
        different per key.
        """
        if not self._positions:
            return []
        start = bisect.bisect_right(self._positions, _hash64(key))
        seen: dict[str, None] = {}
        count = len(self._owners)
        for offset in range(count):
            owner = self._owners[(start + offset) % count]
            if owner not in seen:
                seen[owner] = None
                if len(seen) == len(self._ids):
                    break
        return list(seen)
