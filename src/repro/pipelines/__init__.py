"""End-to-end pipelines and the experiment registry.

Public surface of :mod:`repro.pipelines`:

* :func:`run_korean_study` / :func:`run_ladygaga_study` — one-call studies
* :data:`EXPERIMENTS` / :func:`run_experiment` — the E1-E10 registry
* :func:`get_context` — shared, memoised experiment inputs
"""

from repro.pipelines.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    get_context,
    run_experiment,
)
from repro.pipelines.study import (
    KoreanStudyOutput,
    LadyGagaStudyOutput,
    run_korean_study,
    run_ladygaga_study,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "KoreanStudyOutput",
    "LadyGagaStudyOutput",
    "get_context",
    "run_experiment",
    "run_korean_study",
    "run_ladygaga_study",
]
