"""One-call pipelines: build a dataset and run the study on it.

These are the library's front doors.  ``run_korean_study()`` is the whole
paper in one call: build the crawled corpus, refine it, group users, and
return the :class:`~repro.analysis.correlation.StudyResult` whose
statistics are Figs. 6-7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.correlation import StudyResult, run_study
from repro.datasets.korean import KoreanDataset, KoreanDatasetConfig, build_korean_dataset
from repro.datasets.ladygaga import (
    LadyGagaDataset,
    LadyGagaDatasetConfig,
    build_ladygaga_dataset,
)


@dataclass
class KoreanStudyOutput:
    """A built Korean dataset together with its study result."""

    dataset: KoreanDataset
    study: StudyResult


@dataclass
class LadyGagaStudyOutput:
    """A built streaming dataset together with its study result."""

    dataset: LadyGagaDataset
    study: StudyResult


def run_korean_study(
    config: KoreanDatasetConfig | None = None,
    min_gps_tweets: int = 1,
) -> KoreanStudyOutput:
    """Build the Korean dataset and run the full correlation study."""
    dataset = build_korean_dataset(config)
    study = run_study(
        dataset.users,
        dataset.tweets,
        dataset.gazetteer,
        dataset_name="Korean",
        min_gps_tweets=min_gps_tweets,
    )
    return KoreanStudyOutput(dataset=dataset, study=study)


def run_ladygaga_study(
    config: LadyGagaDatasetConfig | None = None,
    min_gps_tweets: int = 1,
) -> LadyGagaStudyOutput:
    """Build the streaming dataset and run the full correlation study."""
    dataset = build_ladygaga_dataset(config)
    study = run_study(
        dataset.users,
        dataset.tweets,
        dataset.gazetteer,
        dataset_name="Lady Gaga",
        min_gps_tweets=min_gps_tweets,
    )
    return LadyGagaStudyOutput(dataset=dataset, study=study)
