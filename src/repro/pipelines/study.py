"""One-call pipelines: build a dataset and run the study on it.

These are the library's front doors.  ``run_korean_study()`` is the whole
paper in one call: build the crawled corpus, refine it, group users, and
return the :class:`~repro.analysis.correlation.StudyResult` whose
statistics are Figs. 6-7.

Both pipelines are thin wrappers over the staged
:class:`~repro.engine.engine.StudyEngine`: collection accounting (the
Korean crawler's counters, the streaming connection's delivery stats) is
registered into the run's metrics registry under the ``crawl`` prefix, so
one ``output.context.metrics.snapshot()`` describes the entire run — from
crawl through geocoding to grouping — and ``output.context.spans`` holds
the per-stage wall-time records.

Reverse geocoding runs through the tiered
:class:`~repro.geocode.service.GeocodeService`; pass an
``EngineConfig(cache_dir=...)`` to persist its cell cache and a repeat
run resolves every cell from the warm disk tier — zero backend lookups,
byte-identical result (cell outcomes are pure functions of the cell
key, see DESIGN.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.correlation import StudyResult
from repro.datasets.korean import KoreanDataset, KoreanDatasetConfig, build_korean_dataset
from repro.datasets.ladygaga import (
    LadyGagaDataset,
    LadyGagaDatasetConfig,
    build_ladygaga_dataset,
)
from repro.engine.context import RunContext
from repro.engine.engine import EngineConfig, StudyEngine, default_engine_config


@dataclass
class KoreanStudyOutput:
    """A built Korean dataset together with its study result.

    Attributes:
        dataset: The built corpus with collection provenance.
        study: The study result.
        context: The engine run context (metrics snapshot, stage spans).
    """

    dataset: KoreanDataset
    study: StudyResult
    context: RunContext | None = None


@dataclass
class LadyGagaStudyOutput:
    """A built streaming dataset together with its study result.

    Attributes:
        dataset: The captured stream with provenance.
        study: The study result.
        context: The engine run context (metrics snapshot, stage spans).
    """

    dataset: LadyGagaDataset
    study: StudyResult
    context: RunContext | None = None


def run_korean_study(
    config: KoreanDatasetConfig | None = None,
    min_gps_tweets: int = 1,
    engine_config: EngineConfig | None = None,
) -> KoreanStudyOutput:
    """Build the Korean dataset and run the full correlation study.

    Args:
        config: Dataset build configuration (default scale otherwise).
        min_gps_tweets: Study-entry threshold; overrides the matching
            ``engine_config`` field.
        engine_config: Execution configuration (sharding, backend, geocode cache_dir).
    """
    config = config or KoreanDatasetConfig()
    dataset = build_korean_dataset(config)
    context = RunContext(dataset_name="Korean", seed=config.seed)
    context.metrics.register_source("crawl", dataset.crawl.snapshot)
    engine = StudyEngine(
        dataset.gazetteer,
        config=replace(engine_config or default_engine_config(), min_gps_tweets=min_gps_tweets),
    )
    study = engine.run(
        dataset.users, dataset.tweets, dataset_name="Korean", context=context
    )
    return KoreanStudyOutput(dataset=dataset, study=study, context=context)


def run_ladygaga_study(
    config: LadyGagaDatasetConfig | None = None,
    min_gps_tweets: int = 1,
    engine_config: EngineConfig | None = None,
) -> LadyGagaStudyOutput:
    """Build the streaming dataset and run the full correlation study.

    Args:
        config: Dataset build configuration (default scale otherwise).
        min_gps_tweets: Study-entry threshold; overrides the matching
            ``engine_config`` field.
        engine_config: Execution configuration (sharding, backend, geocode cache_dir).
    """
    config = config or LadyGagaDatasetConfig()
    dataset = build_ladygaga_dataset(config)
    context = RunContext(dataset_name="Lady Gaga", seed=config.seed)
    context.metrics.register_source("crawl", dataset.stream_stats.snapshot)
    engine = StudyEngine(
        dataset.gazetteer,
        config=replace(engine_config or default_engine_config(), min_gps_tweets=min_gps_tweets),
    )
    study = engine.run(
        dataset.users, dataset.tweets, dataset_name="Lady Gaga", context=context
    )
    return LadyGagaStudyOutput(dataset=dataset, study=study, context=context)
