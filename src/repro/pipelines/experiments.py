"""Experiment registry: one callable per paper artefact (E1-E10).

Each experiment id from DESIGN.md maps to a function that renders the
artefact as text from a shared :class:`ExperimentContext`.  The benchmark
harness times the underlying computations and prints these renderings, so
``pytest benchmarks/`` regenerates every figure and table.

Context construction is expensive (it builds both datasets and runs both
studies), so :func:`get_context` memoises per scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.correlation import StudyResult
from repro.analysis.reliability import ReliabilityTable
from repro.analysis.report import (
    render_comparison,
    render_dataset_summary,
    render_fig6,
    render_fig7,
    render_funnel,
    render_merged_strings,
    render_tweet_distribution,
)
from repro.datasets.korean import KoreanDataset, KoreanDatasetConfig
from repro.datasets.ladygaga import LadyGagaDataset, LadyGagaDatasetConfig
from repro.errors import ConfigurationError
from repro.events.evaluation import (
    LocalizationExperiment,
    make_korean_scenarios,
    render_localization_table,
)
from repro.pipelines.study import run_korean_study, run_ladygaga_study
from repro.twitter.tweetgen import CollectionWindow


@dataclass
class ExperimentContext:
    """Shared inputs for all experiments at one scale."""

    scale: str
    korean_dataset: KoreanDataset
    korean_study: StudyResult
    ladygaga_dataset: LadyGagaDataset
    ladygaga_study: StudyResult


_SCALES: dict[str, tuple[KoreanDatasetConfig, LadyGagaDatasetConfig]] = {
    # Small: for the test suite — a couple of seconds end to end.
    "small": (
        KoreanDatasetConfig(
            population_size=700,
            crawl_limit=600,
            window=CollectionWindow(start_ms=1_314_835_200_000, days=30),
            use_api_timelines=False,
        ),
        LadyGagaDatasetConfig(
            population_size=700,
            window=CollectionWindow(start_ms=1_314_835_200_000, days=30),
        ),
    ),
    # Default: the benchmark scale — study populations in the hundreds of
    # users, mirroring the paper's 1.4k final users within laptop seconds.
    "default": (
        KoreanDatasetConfig(population_size=4_000, crawl_limit=3_000, use_api_timelines=False),
        LadyGagaDatasetConfig(population_size=4_000),
    ),
}

_CACHE: dict[str, ExperimentContext] = {}


def get_context(scale: str = "default") -> ExperimentContext:
    """Build (or reuse) the shared experiment context for ``scale``.

    Raises:
        ConfigurationError: for an unknown scale name.
    """
    if scale not in _SCALES:
        raise ConfigurationError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    if scale not in _CACHE:
        korean_config, ladygaga_config = _SCALES[scale]
        korean = run_korean_study(korean_config)
        ladygaga = run_ladygaga_study(ladygaga_config)
        _CACHE[scale] = ExperimentContext(
            scale=scale,
            korean_dataset=korean.dataset,
            korean_study=korean.study,
            ladygaga_dataset=ladygaga.dataset,
            ladygaga_study=ladygaga.study,
        )
    return _CACHE[scale]


# ------------------------------------------------------------------ E1-E10
def experiment_e1_fig6(ctx: ExperimentContext) -> str:
    """E1 / Fig. 6 — average tweet locations per group (Korean)."""
    return render_fig6(ctx.korean_study.statistics)


def experiment_e2_fig7(ctx: ExperimentContext) -> str:
    """E2 / Fig. 7 — users per group (Korean)."""
    return render_fig7(ctx.korean_study.statistics)


def experiment_e3_tweets(ctx: ExperimentContext) -> str:
    """E3 / slide 3 — tweets per group (Korean)."""
    return render_tweet_distribution(ctx.korean_study.statistics)


def experiment_e4_user_comparison(ctx: ExperimentContext) -> str:
    """E4 / slide 4 — users per group, Korean vs Lady Gaga."""
    return render_comparison(
        ctx.korean_study.statistics, ctx.ladygaga_study.statistics, metric="user_share"
    )


def experiment_e5_location_comparison(ctx: ExperimentContext) -> str:
    """E5 / slide 5 — avg tweet locations, Korean vs Lady Gaga."""
    return render_comparison(
        ctx.korean_study.statistics,
        ctx.ladygaga_study.statistics,
        metric="avg_tweet_locations",
    )


def experiment_e6_e7_tables(ctx: ExperimentContext) -> str:
    """E6+E7 / Tables I-II — the grouping method's working example.

    Renders the merged, ordered strings (with the matched string marked)
    of the busiest Top-1 and the busiest None user, mirroring the paper's
    user 40932 / user 7471 walk-through.
    """
    from repro.grouping.topk import TopKGroup

    groupings = ctx.korean_study.groupings
    sections = []
    for group, label in ((TopKGroup.TOP_1, "Top-1 user"), (TopKGroup.NONE, "None user")):
        members = [g for g in groupings.values() if g.group is group]
        if not members:
            continue
        busiest = max(members, key=lambda g: g.total_tweets)
        sections.append(
            render_merged_strings(
                list(busiest.merged),
                title=f"Table II example — {label} {busiest.user_id} "
                f"({busiest.total_tweets} geotagged tweets)",
            )
        )
    return "\n\n".join(sections)


def experiment_e8_dataset_summary(ctx: ExperimentContext) -> str:
    """E8 / slide 1 — dataset summary table."""
    return render_dataset_summary(
        ctx.korean_dataset.summary, ctx.ladygaga_dataset.summary
    )


def experiment_e9_funnel(ctx: ExperimentContext) -> str:
    """E9 / §III-B — the refinement funnel (Korean)."""
    return render_funnel(ctx.korean_study.funnel)


def experiment_e10_localization(ctx: ExperimentContext) -> str:
    """E10 / §V — reliability-weighted event localisation."""
    experiment = LocalizationExperiment(
        ctx.korean_study,
        ctx.korean_dataset.gazetteer,
        ctx.korean_study.profile_districts,
    )
    scenarios = make_korean_scenarios(ctx.korean_dataset.gazetteer)
    outcomes = experiment.run_localization(scenarios)
    table = ReliabilityTable.from_statistics(ctx.korean_study.statistics)
    weights = ", ".join(f"{k}={v}" for k, v in table.as_dict().items())
    return (
        render_localization_table(outcomes)
        + f"\n\nlearned weight factors: {weights}"
    )


#: The registry the benchmark harness iterates.
EXPERIMENTS = {
    "E1": experiment_e1_fig6,
    "E2": experiment_e2_fig7,
    "E3": experiment_e3_tweets,
    "E4": experiment_e4_user_comparison,
    "E5": experiment_e5_location_comparison,
    "E6+E7": experiment_e6_e7_tables,
    "E8": experiment_e8_dataset_summary,
    "E9": experiment_e9_funnel,
    "E10": experiment_e10_localization,
}


def run_experiment(experiment_id: str, scale: str = "default") -> str:
    """Render one experiment's artefact.

    Raises:
        ConfigurationError: for an unknown experiment id.
    """
    if experiment_id not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](get_context(scale))
