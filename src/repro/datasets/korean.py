"""Korean dataset builder — the paper's primary corpus.

Reproduces the collection of slide 1 / §III-B: a synthetic Korean
population with a follower graph is crawled breadth-first from a seed
user through the simulated REST API, and every collected user's timeline
is fetched.  The paper's real numbers (52 200 crawled users, 11.1 M
tweets) are scaled down by default so the whole study runs in seconds;
:meth:`KoreanDatasetConfig.paper_scale` documents the full-size settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geo.gazetteer import GazetteerBackend
from repro.geodata.registry import dataset_gazetteer
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.twitter.api import RestApi
from repro.twitter.crawler import CrawlConfig, CrawlResult, FollowerCrawler
from repro.twitter.models import DatasetSummary
from repro.twitter.population import PopulationConfig, PopulationGenerator
from repro.twitter.social_graph import FollowerGraph, GraphConfig
from repro.twitter.tweetgen import CollectionWindow, TweetGenerator


@dataclass(frozen=True, slots=True)
class KoreanDatasetConfig:
    """Configuration of the Korean dataset build.

    Attributes:
        population_size: Accounts existing on the platform.
        crawl_limit: Users the crawler collects (<= population_size).
        window: Tweet-collection period.
        seed: Master seed for population, graph, and tweets.
        use_api_timelines: Fetch timelines through the simulated REST API
            (exercises pagination + rate limits; what the real collection
            did).  The default bulk-loads the generator output directly —
            byte-identical data (property-tested), much faster.
    """

    population_size: int = 4_000
    crawl_limit: int = 3_000
    window: CollectionWindow = field(default_factory=CollectionWindow.default)
    seed: int = 7
    use_api_timelines: bool = False

    def __post_init__(self) -> None:
        if self.crawl_limit > self.population_size:
            raise ConfigurationError(
                f"crawl_limit {self.crawl_limit} exceeds population "
                f"{self.population_size}"
            )

    @classmethod
    def paper_scale(cls) -> "KoreanDatasetConfig":
        """The study's actual scale: ~52 k crawled users, ~11 M tweets.

        Runs in minutes, not seconds; benchmarks use the default scale and
        EXPERIMENTS.md reports both.
        """
        return cls(
            population_size=60_000,
            crawl_limit=52_200,
            window=CollectionWindow(start_ms=1_304_208_000_000, days=180),
            use_api_timelines=False,
        )


@dataclass
class KoreanDataset:
    """The built corpus plus collection provenance.

    Attributes:
        users: Crawled accounts.
        tweets: Their collected tweets.
        gazetteer: District catalogue the population lives on.
        summary: Slide-1-style dataset summary.
        crawl: The crawler's run record.
    """

    users: UserStore
    tweets: TweetStore
    gazetteer: GazetteerBackend
    summary: DatasetSummary
    crawl: CrawlResult


def build_korean_dataset(config: KoreanDatasetConfig | None = None) -> KoreanDataset:
    """Build the Korean dataset deterministically from its config."""
    config = config or KoreanDatasetConfig()
    gazetteer = dataset_gazetteer("korean")

    population = PopulationGenerator(
        gazetteer, PopulationConfig(size=config.population_size, seed=config.seed)
    ).generate()
    by_id = {s.user.user_id: s for s in population}

    graph = FollowerGraph.generate(
        [s.user.user_id for s in population], GraphConfig(seed=config.seed)
    )

    generator = TweetGenerator(config.window, seed=config.seed)
    tweets_by_user = {
        uid: generator.tweets_for(synthetic) for uid, synthetic in by_id.items()
    }

    api = RestApi(
        users={uid: s.user for uid, s in by_id.items()},
        graph=graph,
        tweets_by_user=tweets_by_user,
    )
    crawler = FollowerCrawler(api, CrawlConfig(max_users=config.crawl_limit))
    crawl = crawler.crawl(graph.seed_user_id)

    users = UserStore()
    users.insert_many(crawl.users)

    tweets = TweetStore()
    for user in crawl.users:
        if config.use_api_timelines:
            timeline = api.fetch_full_timeline(user.user_id)
        else:
            timeline = tweets_by_user[user.user_id]
        tweets.insert_many(timeline)

    summary = DatasetSummary(
        name="Korean",
        collection_api="Search API (follower crawler + user timelines)",
        user_count=len(users),
        tweet_count=len(tweets),
        geotagged_tweet_count=tweets.gps_count(),
        extra={
            "population_size": config.population_size,
            "crawl_api_calls": crawl.api_calls,
            "crawl_rate_limit_waits": crawl.rate_limit_waits,
            "crawl_simulated_hours": round(crawl.simulated_duration_s / 3600.0, 1),
        },
    )
    return KoreanDataset(
        users=users, tweets=tweets, gazetteer=gazetteer, summary=summary, crawl=crawl
    )
