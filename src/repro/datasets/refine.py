"""The §III-B refinement funnel: crawled users -> study population.

The paper's selection steps, with their attrition accounting:

1. start from every crawled user;
2. keep users whose profile location is *well defined* (drops vague,
   country-only, bare-metro, multi-location, and unresolvable fields —
   "we had to remove many users from our data collection");
3. keep users with at least one GPS-tagged tweet ("most of our users were
   eliminated" here — GPS tweets are scarce);
4. reverse-geocode every remaining GPS tweet through the PlaceFinder
   client into per-tweet observations.

The funnel's per-step counts are an experiment artefact themselves (E9).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.geo.forward import TextGeocoder
from repro.geo.region import District
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.twitter.models import GeotaggedObservation, TwitterUser
from repro.yahooapi.client import PlaceFinderClient


@dataclass
class RefinementFunnel:
    """Per-step attrition counts of the refinement.

    Attributes:
        crawled_users: Users entering the funnel.
        profile_status_counts: Forward-geocoding outcome tally (by
            :class:`GeocodeStatus` value) over all crawled users.
        well_defined_users: Users surviving step 2.
        users_with_gps: Well-defined users with >= ``min_gps_tweets``.
        total_tweets: Tweets of crawled users in the store.
        gps_tweets: GPS-tagged tweets among them.
        resolved_observations: Per-tweet observations produced.
        unresolvable_gps_tweets: GPS tweets the reverse geocoder refused.
        study_users: Final user count (non-empty observation sets).
    """

    crawled_users: int = 0
    profile_status_counts: Counter = field(default_factory=Counter)
    well_defined_users: int = 0
    users_with_gps: int = 0
    total_tweets: int = 0
    gps_tweets: int = 0
    resolved_observations: int = 0
    unresolvable_gps_tweets: int = 0
    study_users: int = 0

    def as_dict(self) -> dict[str, int | dict[str, int]]:
        """JSON-friendly view for reports."""
        return {
            "crawled_users": self.crawled_users,
            "profile_status_counts": dict(self.profile_status_counts),
            "well_defined_users": self.well_defined_users,
            "users_with_gps": self.users_with_gps,
            "total_tweets": self.total_tweets,
            "gps_tweets": self.gps_tweets,
            "resolved_observations": self.resolved_observations,
            "unresolvable_gps_tweets": self.unresolvable_gps_tweets,
            "study_users": self.study_users,
        }


@dataclass
class RefinementResult:
    """Output of the refinement pipeline.

    Attributes:
        funnel: Attrition accounting.
        observations: Per-tweet (profile district, tweet district) rows —
            the input of the grouping method.
        profile_districts: Each study user's resolved profile district.
        study_users: The surviving users, by id.
    """

    funnel: RefinementFunnel
    observations: list[GeotaggedObservation]
    profile_districts: dict[int, District]
    study_users: dict[int, TwitterUser]


class RefinementPipeline:
    """Runs the §III-B refinement over stored users and tweets.

    Args:
        text_geocoder: Resolves profile-location fields.
        placefinder: Reverse-geocodes tweet GPS points (the simulated
            Yahoo API, complete with cache and quota accounting).
        min_gps_tweets: Minimum GPS-tagged tweets a user needs to enter
            the study (the paper requires at least one; raising it is an
            ablation knob).
    """

    def __init__(
        self,
        text_geocoder: TextGeocoder,
        placefinder: PlaceFinderClient,
        min_gps_tweets: int = 1,
    ):
        self._text_geocoder = text_geocoder
        self._placefinder = placefinder
        self._min_gps_tweets = min_gps_tweets

    def run(self, users: UserStore, tweets: TweetStore) -> RefinementResult:
        """Execute the funnel and produce grouping-ready observations.

        Delegates to the engine's refinement stages (RefineStage →
        ProfileGeocodeStage → ReverseGeocodeStage) so the funnel has one
        implementation; the injected client keeps reverse geocoding on
        the serial path, preserving quota and failure-injection
        semantics exactly.
        """
        # Imported here: the engine package imports this module for the
        # funnel dataclasses, so a top-level import would be circular.
        from repro.engine.context import RunContext
        from repro.engine.stages import (
            ProfileGeocodeStage,
            RefineStage,
            ReverseGeocodeStage,
            StudyState,
        )

        state = StudyState(
            users=users,
            tweets=tweets,
            text_geocoder=self._text_geocoder,
            placefinder=self._placefinder,
            min_gps_tweets=self._min_gps_tweets,
        )
        context = RunContext()
        for stage in (RefineStage(), ProfileGeocodeStage(), ReverseGeocodeStage()):
            stage.run(context, state)
        return RefinementResult(
            funnel=state.funnel,
            observations=state.observations,
            profile_districts=state.kept_profile_districts,
            study_users=state.study_users,
        )
