"""Lady Gaga dataset builder — the worldwide streaming corpus.

The slide deck's second dataset was collected through the Streaming API's
``track`` filter on a celebrity keyword, yielding a worldwide, fan-skewed
sample.  The build mirrors that: a world-city population (plus Korean
users) generates tweets; a configurable share of each fan's tweets mention
the tracked phrase; the simulated Streaming API delivers only matching
tweets; and the dataset is whatever came down the stream — including
users represented by a handful of tweets, exactly the bias the slides'
comparison figures show.

Compared to the Korean population, the streaming sample skews mobile
(more wanderers and relocated users) and has messier profiles, which is
what drives the flatter Top-k distribution on slides 4-5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.geo.gazetteer import GazetteerBackend
from repro.geodata.registry import dataset_gazetteer
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.twitter.api import StreamingApi, StreamStats
from repro.twitter.models import DatasetSummary, MobilityClass, ProfileStyle, Tweet
from repro.twitter.population import PopulationConfig, PopulationGenerator
from repro.twitter.tweetgen import CollectionWindow, TweetGenerator

#: Streaming-population mobility mix: fans travel (concerts!), and a
#: worldwide sample holds fewer home-anchored profiles than a local crawl.
STREAMING_MOBILITY_MIX: dict[MobilityClass, float] = {
    MobilityClass.HOME_ANCHORED: 0.26,
    MobilityClass.COMMUTER: 0.16,
    MobilityClass.WANDERER: 0.22,
    MobilityClass.RELOCATED: 0.22,
    MobilityClass.FIXED_ELSEWHERE: 0.14,
}

#: Streaming-population profile mix: noisier than the curated Korean crawl.
STREAMING_PROFILE_MIX: dict[ProfileStyle, float] = {
    ProfileStyle.DISTRICT: 0.30,
    ProfileStyle.CITY_ONLY: 0.14,
    ProfileStyle.COUNTRY_ONLY: 0.10,
    ProfileStyle.VAGUE: 0.16,
    ProfileStyle.COORDINATES: 0.02,
    ProfileStyle.MULTI: 0.06,
    ProfileStyle.GARBAGE: 0.12,
    ProfileStyle.EMPTY: 0.10,
}

_FAN_TEMPLATES = (
    "omg new lady gaga single is everything",
    "lady gaga tickets secured!!!",
    "listening to lady gaga on repeat",
    "that lady gaga performance last night...",
    "lady gaga really is the queen",
    "counting days to the lady gaga show",
    "this lady gaga album never gets old",
)


@dataclass(frozen=True, slots=True)
class LadyGagaDatasetConfig:
    """Configuration of the streaming dataset build.

    Attributes:
        population_size: Accounts on the simulated platform.
        track: Streaming filter phrase.
        fan_rate_range: (low, high) per-user probability that a tweet
            mentions the tracked phrase.
        window: Streaming capture period.
        seed: Master seed.
        stream_limit: Optional cap on delivered tweets.
    """

    population_size: int = 4_000
    track: str = "lady gaga"
    fan_rate_range: tuple[float, float] = (0.05, 0.5)
    window: CollectionWindow = field(default_factory=CollectionWindow.default)
    seed: int = 11
    stream_limit: int | None = None


@dataclass
class LadyGagaDataset:
    """The captured stream plus provenance.

    Attributes:
        users: Accounts seen in the stream (profile metadata attached).
        tweets: Tweets delivered by the ``track`` filter.
        gazetteer: Combined Korean + world catalogue.
        summary: Slide-1-style dataset summary.
        stream_stats: Delivery accounting from the streaming connection.
    """

    users: UserStore
    tweets: TweetStore
    gazetteer: GazetteerBackend
    summary: DatasetSummary
    stream_stats: StreamStats


def build_ladygaga_dataset(
    config: LadyGagaDatasetConfig | None = None,
) -> LadyGagaDataset:
    """Build the streaming dataset deterministically from its config."""
    config = config or LadyGagaDatasetConfig()
    gazetteer = dataset_gazetteer("combined")

    population = PopulationGenerator(
        gazetteer,
        PopulationConfig(
            size=config.population_size,
            seed=config.seed,
            mobility_mix=dict(STREAMING_MOBILITY_MIX),
            profile_style_mix=dict(STREAMING_PROFILE_MIX),
            id_offset=10_000_000,  # disjoint from the Korean dataset's ids
        ),
    ).generate()

    generator = TweetGenerator(config.window, seed=config.seed)
    rng = random.Random(config.seed)
    firehose: list[Tweet] = []
    for synthetic in population:
        fan_rate = rng.uniform(*config.fan_rate_range)
        for tweet in generator.tweets_for(synthetic):
            if rng.random() < fan_rate:
                tweet = Tweet(
                    tweet_id=tweet.tweet_id,
                    user_id=tweet.user_id,
                    created_at_ms=tweet.created_at_ms,
                    text=rng.choice(_FAN_TEMPLATES),
                    coordinates=tweet.coordinates,
                    true_state=tweet.true_state,
                    true_county=tweet.true_county,
                )
            firehose.append(tweet)

    streaming = StreamingApi(firehose)
    stats = StreamStats()
    tweets = TweetStore()
    seen_user_ids: set[int] = set()
    for tweet in streaming.filter(
        track=(config.track,), limit=config.stream_limit, stats=stats
    ):
        tweets.insert(tweet)
        seen_user_ids.add(tweet.user_id)

    users = UserStore()
    users.insert_many(s.user for s in population if s.user.user_id in seen_user_ids)

    summary = DatasetSummary(
        name="Lady Gaga",
        collection_api="Streaming API (statuses/filter, track)",
        user_count=len(users),
        tweet_count=len(tweets),
        geotagged_tweet_count=tweets.gps_count(),
        extra={
            "population_size": config.population_size,
            "track": config.track,
            "stream_delivered": stats.delivered,
            "stream_filtered_out": stats.filtered_out,
        },
    )
    return LadyGagaDataset(
        users=users,
        tweets=tweets,
        gazetteer=gazetteer,
        summary=summary,
        stream_stats=stats,
    )
