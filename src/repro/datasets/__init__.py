"""Dataset builders and the §III-B refinement funnel.

Public surface of :mod:`repro.datasets`:

* :func:`build_korean_dataset` — the crawled Korean corpus (paper slide 1)
* :func:`build_ladygaga_dataset` — the worldwide streaming corpus
* :class:`RefinementPipeline` — crawled users -> grouping-ready rows
"""

from repro.datasets.korean import (
    KoreanDataset,
    KoreanDatasetConfig,
    build_korean_dataset,
)
from repro.datasets.ladygaga import (
    STREAMING_MOBILITY_MIX,
    STREAMING_PROFILE_MIX,
    LadyGagaDataset,
    LadyGagaDatasetConfig,
    build_ladygaga_dataset,
)
from repro.datasets.refine import (
    RefinementFunnel,
    RefinementPipeline,
    RefinementResult,
)

__all__ = [
    "STREAMING_MOBILITY_MIX",
    "STREAMING_PROFILE_MIX",
    "KoreanDataset",
    "KoreanDatasetConfig",
    "LadyGagaDataset",
    "LadyGagaDatasetConfig",
    "RefinementFunnel",
    "RefinementPipeline",
    "RefinementResult",
    "build_korean_dataset",
    "build_ladygaga_dataset",
]
