"""TwitterMonitor-style trend detection over the tweet stream.

Mathioudakis & Koudas's TwitterMonitor (paper ref. [5]) detects *bursty
keywords* in the live stream and groups co-occurring ones into trends.
This module reproduces that pipeline in the same single-pass style as the
rest of the events package:

1. per-keyword arrival counting in a sliding window, against a trailing
   per-keyword baseline;
2. a keyword becomes *bursty* when its window count clears a Poisson-
   aware threshold over its baseline expectation (ratio + sigma terms,
   with an absolute floor, and only after a global warm-up so cold-start
   windows cannot alarm off an empty baseline);
3. bursty keywords that co-occur in the same tweets are grouped into one
   :class:`Trend`.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.text.tokenize import tokenize
from repro.twitter.models import Tweet


@dataclass(frozen=True, slots=True)
class Trend:
    """A detected trend.

    Attributes:
        keywords: The bursty keywords forming the trend, most-bursty first.
        detected_at_ms: Stream time of detection.
        tweet_count: Window tweets containing any trend keyword.
        sample_text: One example tweet text.
    """

    keywords: tuple[str, ...]
    detected_at_ms: int
    tweet_count: int
    sample_text: str


class TrendDetector:
    """Single-pass bursty-keyword trend detector.

    Args:
        window_ms: Sliding detection window.
        baseline_windows: Trailing windows forming each keyword's
            baseline.  The default spans a full day so the diurnal cycle
            (evening peaks 10-15x the overnight trough) averages out —
            a short trailing baseline would "detect" every morning.
        burst_ratio: Window count must exceed ``burst_ratio x`` the
            baseline per-window mean.
        min_count: Absolute floor on the window count.
        min_token_length: Ignore very short tokens.
        cooldown_ms: Re-detection suppression per keyword.
    """

    def __init__(
        self,
        window_ms: int = 1_800_000,
        baseline_windows: int = 48,
        burst_ratio: float = 4.0,
        min_count: int = 5,
        min_token_length: int = 3,
        cooldown_ms: int = 3_600_000,
    ):
        if window_ms <= 0 or baseline_windows <= 0:
            raise ConfigurationError("window and baseline must be positive")
        if burst_ratio <= 1.0:
            raise ConfigurationError("burst_ratio must exceed 1")
        self._window_ms = window_ms
        self._baseline_windows = baseline_windows
        self._burst_ratio = burst_ratio
        self._min_count = min_count
        self._min_token_length = min_token_length
        self._cooldown_ms = cooldown_ms

        #: (timestamp, tokens, text) tuples currently inside the window.
        self._window: deque[tuple[int, tuple[str, ...], str]] = deque()
        self._window_counts: Counter[str] = Counter()
        #: Finished-window history per keyword (deque of counts).
        self._history: dict[str, deque[int]] = defaultdict(
            lambda: deque(maxlen=self._baseline_windows)
        )
        self._current_bucket: Counter[str] = Counter()
        self._bucket_start_ms: int | None = None
        self._windows_closed = 0
        self._last_trend_ms: dict[str, int] = {}
        self.trends: list[Trend] = []

    # ------------------------------------------------------------------ api
    def process(self, tweet: Tweet) -> Trend | None:
        """Feed one tweet (stream order); returns a trend if one emerged."""
        now = tweet.created_at_ms
        tokens = tuple(
            t for t in tokenize(tweet.text) if len(t) >= self._min_token_length
        )
        self._roll_buckets(now)
        self._expire(now)

        self._window.append((now, tokens, tweet.text))
        unique = set(tokens)
        for token in unique:
            self._window_counts[token] += 1
            self._current_bucket[token] += 1

        bursty = self._bursty_keywords(now, unique)
        if not bursty:
            return None
        trend = self._form_trend(now, bursty)
        for keyword in trend.keywords:
            self._last_trend_ms[keyword] = now
        self.trends.append(trend)
        return trend

    def run(self, tweets: list[Tweet]) -> list[Trend]:
        """Feed a whole stream; returns all detected trends."""
        for tweet in tweets:
            self.process(tweet)
        return self.trends

    # ------------------------------------------------------------- internals
    def _roll_buckets(self, now_ms: int) -> None:
        """Close finished baseline buckets (one per window length)."""
        if self._bucket_start_ms is None:
            self._bucket_start_ms = now_ms
            return
        while now_ms - self._bucket_start_ms >= self._window_ms:
            for token, count in self._current_bucket.items():
                self._history[token].append(count)
            # Tokens absent from the bucket still saw a zero-count window.
            for token in list(self._history):
                if token not in self._current_bucket:
                    self._history[token].append(0)
            self._current_bucket = Counter()
            self._bucket_start_ms += self._window_ms
            self._windows_closed += 1

    def _expire(self, now_ms: int) -> None:
        horizon = now_ms - self._window_ms
        while self._window and self._window[0][0] < horizon:
            _, tokens, _ = self._window.popleft()
            for token in set(tokens):
                self._window_counts[token] -= 1
                if self._window_counts[token] <= 0:
                    del self._window_counts[token]

    def _bursty_keywords(self, now_ms: int, candidates: set[str]) -> list[str]:
        # Global warm-up: no keyword may trend before a full baseline's
        # worth of windows has been observed.
        if self._windows_closed < self._baseline_windows:
            return []
        bursty = []
        for token in candidates:
            count = self._window_counts.get(token, 0)
            if count < self._min_count:
                continue
            last = self._last_trend_ms.get(token)
            if last is not None and now_ms - last < self._cooldown_ms:
                continue
            history = self._history.get(token)
            # A token with a short (or no) history was absent from the
            # missing windows: average over the full warm-up span.
            baseline = (sum(history) / self._baseline_windows) if history else 0.0
            # Poisson-aware threshold: ratio term for large baselines, a
            # six-sigma term so small baselines' natural fluctuations do
            # not fire, and the absolute floor.
            threshold = max(
                float(self._min_count),
                self._burst_ratio * baseline,
                baseline + 6.0 * (baseline + 1.0) ** 0.5,
            )
            if count >= threshold:
                bursty.append(token)
        bursty.sort(key=lambda t: -self._window_counts[t])
        return bursty

    def _form_trend(self, now_ms: int, bursty: list[str]) -> Trend:
        """Group co-occurring bursty keywords and pick a sample tweet."""
        head = bursty[0]
        grouped = [head]
        head_tweets = [
            (tokens, text) for _, tokens, text in self._window if head in tokens
        ]
        for keyword in bursty[1:]:
            co_occurrence = sum(1 for tokens, _ in head_tweets if keyword in tokens)
            if head_tweets and co_occurrence / len(head_tweets) >= 0.3:
                grouped.append(keyword)
        sample = head_tweets[-1][1] if head_tweets else ""
        matching = sum(
            1
            for _, tokens, _ in self._window
            if any(k in tokens for k in grouped)
        )
        return Trend(
            keywords=tuple(grouped),
            detected_at_ms=now_ms,
            tweet_count=matching,
            sample_text=sample,
        )
