"""Temporal burst detection (Toretter's alarm stage).

Sakaki et al. observe that event tweets arrive with an exponentially
decaying rate after the event and raise an alarm when the number of
positively classified tweets in a window makes the no-event hypothesis
untenable.  We implement both pieces: a Poisson-surprise burst detector
over a sliding window with a trailing baseline, and the exponential decay
model fitted to post-alarm arrivals (useful for estimating event time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, InsufficientDataError


@dataclass(frozen=True, slots=True)
class BurstAlarm:
    """A raised alarm.

    Attributes:
        window_start_ms / window_end_ms: The triggering window.
        observed: Positive tweets in the window.
        expected: Baseline expectation for the window.
        surprise: ``-log10 P(X >= observed)`` under Poisson(expected).
    """

    window_start_ms: int
    window_end_ms: int
    observed: int
    expected: float
    surprise: float


class BurstDetector:
    """Sliding-window Poisson-surprise detector.

    Args:
        window_ms: Detection window length (Toretter used 10 minutes).
        baseline_windows: Trailing windows forming the baseline rate.
        surprise_threshold: Alarm when the Poisson surprise exceeds this
            (3.0 ~= p < 0.001).
        min_count: Never alarm on fewer than this many tweets, however
            quiet the baseline.
    """

    def __init__(
        self,
        window_ms: int = 600_000,
        baseline_windows: int = 12,
        surprise_threshold: float = 3.0,
        min_count: int = 3,
    ):
        if window_ms <= 0:
            raise ConfigurationError("window_ms must be positive")
        if baseline_windows <= 0:
            raise ConfigurationError("baseline_windows must be positive")
        self._window_ms = window_ms
        self._baseline_windows = baseline_windows
        self._surprise_threshold = surprise_threshold
        self._min_count = min_count

    def detect(self, timestamps_ms: list[int]) -> list[BurstAlarm]:
        """Scan a stream of positive-tweet timestamps for bursts.

        Args:
            timestamps_ms: Posting times of positively classified tweets
                (any order).

        Returns:
            Alarms in time order; consecutive alarming windows are merged
            into one alarm anchored at the first window.
        """
        if not timestamps_ms:
            return []
        ordered = sorted(timestamps_ms)
        start = ordered[0] - self._window_ms * self._baseline_windows
        end = ordered[-1] + self._window_ms
        counts: list[int] = []
        edges: list[int] = []
        cursor = start
        index = 0
        while cursor < end:
            upper = cursor + self._window_ms
            count = 0
            while index < len(ordered) and ordered[index] < upper:
                count += 1
                index += 1
            counts.append(count)
            edges.append(cursor)
            cursor = upper

        alarms: list[BurstAlarm] = []
        in_burst = False
        for i, count in enumerate(counts):
            baseline = counts[max(0, i - self._baseline_windows) : i]
            expected = (sum(baseline) / len(baseline)) if baseline else 0.0
            surprise = self._poisson_surprise(count, max(expected, 0.1))
            alarming = count >= self._min_count and surprise >= self._surprise_threshold
            if alarming and not in_burst:
                alarms.append(
                    BurstAlarm(
                        window_start_ms=edges[i],
                        window_end_ms=edges[i] + self._window_ms,
                        observed=count,
                        expected=expected,
                        surprise=surprise,
                    )
                )
            in_burst = alarming
        return alarms

    @staticmethod
    def _poisson_surprise(observed: int, expected: float) -> float:
        """``-log10 P(X >= observed)`` for X ~ Poisson(expected)."""
        if observed == 0:
            return 0.0
        # log of the upper tail via the complement of the lower CDF,
        # computed in log space for stability.
        log_terms = []
        log_fact = 0.0
        for k in range(observed):
            if k > 0:
                log_fact += math.log(k)
            log_terms.append(-expected + k * math.log(expected) - log_fact)
        if not log_terms:
            return 0.0
        peak = max(log_terms)
        lower = math.exp(peak) * sum(math.exp(t - peak) for t in log_terms)
        tail = max(1e-300, 1.0 - lower)
        return -math.log10(tail)


@dataclass(frozen=True, slots=True)
class ExponentialDecayFit:
    """Fit of Toretter's post-event arrival model ``rate(t) ~ exp(-t/tau)``.

    Attributes:
        tau_ms: Fitted decay constant.
        onset_ms: Assumed event onset (first tweet time).
    """

    tau_ms: float
    onset_ms: int

    def expected_fraction_within(self, horizon_ms: float) -> float:
        """Fraction of all event tweets expected within ``horizon_ms``."""
        if horizon_ms <= 0:
            return 0.0
        return 1.0 - math.exp(-horizon_ms / self.tau_ms)


def fit_exponential_decay(timestamps_ms: list[int]) -> ExponentialDecayFit:
    """Fit the decay constant from event-tweet timestamps by MLE.

    For inter-event times of an exponential distribution the MLE of the
    mean is the sample mean of offsets from onset.

    Raises:
        InsufficientDataError: with fewer than 3 tweets.
    """
    if len(timestamps_ms) < 3:
        raise InsufficientDataError("need >= 3 timestamps to fit decay")
    ordered = sorted(timestamps_ms)
    onset = ordered[0]
    offsets = [t - onset for t in ordered[1:]]
    mean_offset = sum(offsets) / len(offsets)
    return ExponentialDecayFit(tau_ms=max(1.0, mean_offset), onset_ms=onset)
