"""The online event-detection system — Toretter, end to end.

Consumes a time-ordered tweet stream and does, per tweet, what Sakaki et
al.'s deployed system did: keyword pre-filter, classifier, sliding-window
burst detection; on alarm, estimate the event location from the window's
positive tweets.  The paper under reproduction contributes the final
step's weighting: a positive tweet without GPS is localised at its
author's *profile district*, weighted by the reliability the correlation
study assigned that author.

The detector is deliberately single-pass and incremental (O(1) amortised
per tweet): real deployments sit on the Streaming API.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.reliability import ReliabilityTable, WeightingScheme
from repro.errors import ConfigurationError
from repro.events.classifier import EventTweetClassifier, default_training_set
from repro.events.kalman import Measurement
from repro.events.particle import ParticleLocalizer
from repro.events.weighted import MIN_PROFILE_WEIGHT
from repro.geo.point import GeoPoint
from repro.geo.region import District
from repro.grouping.topk import UserGrouping
from repro.twitter.models import Tweet


@dataclass(frozen=True, slots=True)
class OnlineAlarm:
    """An alarm raised by the online detector.

    Attributes:
        triggered_at_ms: Stream time when the alarm fired.
        window_positive_count: Positive tweets in the window at that time.
        estimate: Estimated event location (None if nothing localisable).
        gps_measurements: Window measurements that came from GPS.
        profile_measurements: Window measurements from weighted profiles.
    """

    triggered_at_ms: int
    window_positive_count: int
    estimate: GeoPoint | None
    gps_measurements: int
    profile_measurements: int


@dataclass
class OnlineStats:
    """Per-run counters for the online detector."""

    tweets_seen: int = 0
    keyword_hits: int = 0
    classified_positive: int = 0
    alarms: list[OnlineAlarm] = field(default_factory=list)


class OnlineEventDetector:
    """Streaming Toretter pipeline with reliability-weighted localisation.

    Args:
        query_words: Tracked event terms.
        reliability: Weight factors from a completed correlation study.
        profile_districts: Study users' resolved profile districts.
        groupings: Study users' Top-k outcomes.
        window_ms: Sliding detection window.
        alarm_threshold: Positive tweets within the window that trigger an
            alarm (Toretter's "number of tweets exceeds a threshold").
        cooldown_ms: Minimum stream time between alarms.
        scheme: Weighting scheme for profile-based measurements.
        classifier: Optional pre-trained classifier (a default one is
            trained on the built-in corpus otherwise).
    """

    def __init__(
        self,
        reliability: ReliabilityTable,
        profile_districts: dict[int, District],
        groupings: dict[int, UserGrouping],
        query_words: tuple[str, ...] = ("earthquake", "shaking"),
        window_ms: int = 600_000,
        alarm_threshold: int = 5,
        cooldown_ms: int = 1_800_000,
        scheme: WeightingScheme = WeightingScheme.GROUP_MATCHED_SHARE,
        classifier: EventTweetClassifier | None = None,
    ):
        if alarm_threshold < 1:
            raise ConfigurationError("alarm_threshold must be >= 1")
        if window_ms <= 0:
            raise ConfigurationError("window_ms must be positive")
        self._query_words = tuple(w.lower() for w in query_words)
        self._reliability = reliability
        self._profile_districts = profile_districts
        self._groupings = groupings
        self._window_ms = window_ms
        self._alarm_threshold = alarm_threshold
        self._cooldown_ms = cooldown_ms
        self._scheme = scheme
        if classifier is None:
            classifier = EventTweetClassifier(query_words=query_words)
            classifier.fit(default_training_set())
        self._classifier = classifier

        self._window: deque[tuple[int, Measurement | None]] = deque()
        self._last_alarm_ms: int | None = None
        self.stats = OnlineStats()

    # ------------------------------------------------------------------ api
    def process(self, tweet: Tweet) -> OnlineAlarm | None:
        """Feed one tweet; returns an alarm if this tweet triggered one.

        Tweets must arrive in non-decreasing time order (stream order).
        """
        self.stats.tweets_seen += 1
        now = tweet.created_at_ms
        self._expire(now)

        text = tweet.text.lower()
        if not any(word in text for word in self._query_words):
            return None
        self.stats.keyword_hits += 1
        if not self._classifier.predict(tweet.text):
            return None
        self.stats.classified_positive += 1

        self._window.append((now, self._measurement_for(tweet)))

        if len(self._window) < self._alarm_threshold:
            return None
        if (
            self._last_alarm_ms is not None
            and now - self._last_alarm_ms < self._cooldown_ms
        ):
            return None

        alarm = self._raise_alarm(now)
        self._last_alarm_ms = now
        self.stats.alarms.append(alarm)
        return alarm

    def run(self, tweets: list[Tweet]) -> OnlineStats:
        """Feed a whole stream; returns the accumulated stats."""
        for tweet in tweets:
            self.process(tweet)
        return self.stats

    # ------------------------------------------------------------- internals
    def _expire(self, now_ms: int) -> None:
        horizon = now_ms - self._window_ms
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def _measurement_for(self, tweet: Tweet) -> Measurement | None:
        if tweet.coordinates is not None:
            return Measurement(
                point=tweet.coordinates, weight=1.0, timestamp_ms=tweet.created_at_ms
            )
        district = self._profile_districts.get(tweet.user_id)
        if district is None:
            return None
        weight = self._reliability.weight_for_user(
            self._groupings.get(tweet.user_id), self._scheme
        )
        return Measurement(
            point=district.center,
            weight=min(1.0, max(MIN_PROFILE_WEIGHT, weight)),
            timestamp_ms=tweet.created_at_ms,
        )

    def _raise_alarm(self, now_ms: int) -> OnlineAlarm:
        measurements = [m for _, m in self._window if m is not None]
        gps_count = sum(1 for m in measurements if m.weight == 1.0)
        estimate = None
        if measurements:
            estimate = ParticleLocalizer(seed=7).estimate(measurements)
        return OnlineAlarm(
            triggered_at_ms=now_ms,
            window_positive_count=len(self._window),
            estimate=estimate,
            gps_measurements=gps_count,
            profile_measurements=len(measurements) - gps_count,
        )
