"""Evaluation harness for reliability-weighted event localisation (E10).

Runs the full future-work experiment the paper sketches in §V: given a
completed correlation study, generate ground-truth event scenarios, draw
witness reports from the study population, localise each event under
every (estimator x weighting scheme) combination, and score the error
against the true epicentre.  Also measures detection latency through the
classifier + burst-detector pipeline (Toretter's alarm path).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.correlation import StudyResult
from repro.analysis.reliability import ReliabilityTable, WeightingScheme
from repro.errors import InsufficientDataError
from repro.events.burst import BurstDetector, fit_exponential_decay
from repro.events.classifier import EventTweetClassifier, default_training_set
from repro.events.kalman import KalmanLocalizer, Measurement
from repro.events.particle import ParticleLocalizer
from repro.events.scenario import EventScenario, WitnessGenerator, WitnessReport
from repro.events.weighted import (
    MedianLocalizer,
    WeightedCentroidLocalizer,
    build_measurements,
)
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.point import GeoPoint
from repro.geo.region import District


@dataclass(frozen=True, slots=True)
class LocalizationOutcome:
    """One (scenario, estimator, scheme) result row.

    Attributes:
        scenario_name: The event.
        estimator: Estimator label ("kalman", "particle", ...).
        scheme: Weighting scheme used.
        witness_count: Reports available.
        gps_count: Reports that carried GPS.
        error_km: Distance from estimate to the true epicentre.
        estimate: The estimated epicentre.
    """

    scenario_name: str
    estimator: str
    scheme: WeightingScheme
    witness_count: int
    gps_count: int
    error_km: float
    estimate: GeoPoint


@dataclass(frozen=True, slots=True)
class DetectionOutcome:
    """Detection-latency result for one scenario.

    Attributes:
        scenario_name: The event.
        detected: Whether any alarm fired.
        latency_ms: First-alarm window end minus onset (None if missed).
        positive_reports: Reports the classifier accepted.
        onset_error_ms: Estimated event onset (first positive report,
            per Toretter's exponential arrival model) minus the true
            onset; None when too few positives to fit.
        decay_tau_ms: Fitted arrival-decay constant; None when unfit.
    """

    scenario_name: str
    detected: bool
    latency_ms: int | None
    positive_reports: int
    onset_error_ms: int | None = None
    decay_tau_ms: float | None = None


def default_estimators() -> dict[str, object]:
    """The estimator suite compared in the E10 bench."""
    return {
        "centroid": WeightedCentroidLocalizer(),
        "median": MedianLocalizer(),
        "kalman": KalmanLocalizer(),
        "particle": ParticleLocalizer(),
    }


def make_korean_scenarios(gazetteer: GazetteerBackend, onset_ms: int = 1_320_000_000_000) -> list[EventScenario]:
    """Three earthquake scenarios near population centres.

    Epicentres sit near (but not on) major districts so witnesses exist
    and the localisation problem is non-trivial.
    """
    seoul = gazetteer.get("Seoul", "Gangnam-gu").center
    busan = gazetteer.get("Busan", "Haeundae-gu").center
    daejeon = gazetteer.get("Daejeon", "Seo-gu").center
    return [
        EventScenario(
            name="quake-seoul",
            epicenter=seoul.destination(bearing_deg=140.0, distance_km=12.0),
            onset_ms=onset_ms,
            felt_radius_km=45.0,
        ),
        EventScenario(
            name="quake-busan",
            epicenter=busan.destination(bearing_deg=70.0, distance_km=15.0),
            onset_ms=onset_ms + 86_400_000,
            felt_radius_km=55.0,
        ),
        EventScenario(
            name="quake-daejeon",
            epicenter=daejeon.destination(bearing_deg=200.0, distance_km=10.0),
            onset_ms=onset_ms + 2 * 86_400_000,
            felt_radius_km=60.0,
        ),
    ]


class LocalizationExperiment:
    """The E10 experiment runner.

    Args:
        study: A completed correlation study (weights come from it).
        gazetteer: The study's district catalogue.
        profile_districts: Study users' resolved profile districts.
        gps_rate: Fraction of witness reports carrying GPS.
        seed: Witness-generation seed.
    """

    def __init__(
        self,
        study: StudyResult,
        gazetteer: GazetteerBackend,
        profile_districts: dict[int, District],
        gps_rate: float = 0.2,
        seed: int = 7,
    ):
        self._study = study
        self._gazetteer = gazetteer
        self._profile_districts = profile_districts
        self._table = ReliabilityTable.from_statistics(study.statistics)
        self._witnesses = WitnessGenerator(gazetteer, gps_rate=gps_rate, seed=seed)

    @property
    def reliability_table(self) -> ReliabilityTable:
        """The weight factors learned from the study."""
        return self._table

    def witness_reports(self, scenario: EventScenario) -> list[WitnessReport]:
        """Witness reports for one scenario."""
        return self._witnesses.generate(scenario, self._study.groupings)

    def run_localization(
        self,
        scenarios: list[EventScenario],
        schemes: tuple[WeightingScheme, ...] = (
            WeightingScheme.UNIFORM,
            WeightingScheme.RANK_RECIPROCAL,
            WeightingScheme.GROUP_MATCHED_SHARE,
        ),
        estimators: dict[str, object] | None = None,
    ) -> list[LocalizationOutcome]:
        """Localise every scenario under every estimator x scheme.

        Scenarios that draw no witnesses are skipped (reported nowhere —
        callers should pick scenarios near population).
        """
        estimators = estimators or default_estimators()
        outcomes: list[LocalizationOutcome] = []
        for scenario in scenarios:
            reports = self.witness_reports(scenario)
            if not reports:
                continue
            gps_count = sum(1 for r in reports if r.gps is not None)
            for scheme in schemes:
                measurements = build_measurements(
                    reports,
                    self._profile_districts,
                    self._study.groupings,
                    self._table,
                    scheme,
                )
                if not measurements:
                    continue
                for name, estimator in estimators.items():
                    estimate = estimator.estimate(measurements)  # type: ignore[attr-defined]
                    outcomes.append(
                        LocalizationOutcome(
                            scenario_name=scenario.name,
                            estimator=name,
                            scheme=scheme,
                            witness_count=len(reports),
                            gps_count=gps_count,
                            error_km=estimate.distance_km(scenario.epicenter),
                            estimate=estimate,
                        )
                    )
        if not outcomes:
            raise InsufficientDataError("no scenario produced witnesses")
        return outcomes

    def run_detection(
        self,
        scenarios: list[EventScenario],
        classifier: EventTweetClassifier | None = None,
        detector: BurstDetector | None = None,
    ) -> list[DetectionOutcome]:
        """Measure detection latency through classifier + burst detector."""
        if classifier is None:
            classifier = EventTweetClassifier()
            classifier.fit(default_training_set())
        detector = detector or BurstDetector()
        outcomes = []
        for scenario in scenarios:
            reports = self.witness_reports(scenario)
            positives = [
                r.timestamp_ms for r in reports if classifier.predict(r.text)
            ]
            onset_error_ms: int | None = None
            decay_tau_ms: float | None = None
            if len(positives) >= 3:
                fit = fit_exponential_decay(positives)
                onset_error_ms = fit.onset_ms - scenario.onset_ms
                decay_tau_ms = fit.tau_ms
            alarms = detector.detect(positives)
            if alarms:
                latency = alarms[0].window_end_ms - scenario.onset_ms
                outcomes.append(
                    DetectionOutcome(
                        scenario_name=scenario.name,
                        detected=True,
                        latency_ms=max(0, latency),
                        positive_reports=len(positives),
                        onset_error_ms=onset_error_ms,
                        decay_tau_ms=decay_tau_ms,
                    )
                )
            else:
                outcomes.append(
                    DetectionOutcome(
                        scenario_name=scenario.name,
                        detected=False,
                        latency_ms=None,
                        positive_reports=len(positives),
                        onset_error_ms=onset_error_ms,
                        decay_tau_ms=decay_tau_ms,
                    )
                )
        return outcomes


def mean_error_by_scheme(
    outcomes: list[LocalizationOutcome],
) -> dict[tuple[str, WeightingScheme], float]:
    """Mean error (km) per (estimator, scheme) across scenarios."""
    sums: dict[tuple[str, WeightingScheme], list[float]] = {}
    for outcome in outcomes:
        sums.setdefault((outcome.estimator, outcome.scheme), []).append(outcome.error_km)
    return {key: sum(values) / len(values) for key, values in sums.items()}


def render_localization_table(outcomes: list[LocalizationOutcome]) -> str:
    """Text table of mean errors: estimators x schemes (E10 artefact)."""
    means = mean_error_by_scheme(outcomes)
    estimators = sorted({e for e, _ in means})
    schemes = [
        WeightingScheme.UNIFORM,
        WeightingScheme.RANK_RECIPROCAL,
        WeightingScheme.GROUP_MATCHED_SHARE,
    ]
    heading = "Event localisation mean error (km): estimator x weighting scheme"
    lines = [heading, "-" * len(heading)]
    header = f"{'estimator':<10}" + "".join(f"{s.value:>22}" for s in schemes)
    lines.append(header)
    for estimator in estimators:
        cells = []
        for scheme in schemes:
            value = means.get((estimator, scheme))
            cells.append(f"{value:22.2f}" if value is not None else f"{'-':>22}")
        lines.append(f"{estimator:<10}" + "".join(cells))
    return "\n".join(lines)
