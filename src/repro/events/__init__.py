"""Event detection and localisation — the paper's downstream consumers.

Implements the two systems the paper positions itself as a preliminary
study for (§II), plus its proposed improvement (§V):

* Toretter path — :class:`EventTweetClassifier`, :class:`BurstDetector`,
  :class:`KalmanLocalizer`, :class:`ParticleLocalizer`
* Twitris path — :class:`TwitrisSummarizer`
* the paper's contribution applied — :func:`build_measurements` with
  :class:`~repro.analysis.reliability.ReliabilityTable` weights, and the
  :class:`LocalizationExperiment` harness (experiment E10)
"""

from repro.events.burst import (
    BurstAlarm,
    BurstDetector,
    ExponentialDecayFit,
    fit_exponential_decay,
)
from repro.events.classifier import (
    EventTweetClassifier,
    LabeledTweet,
    default_training_set,
    extract_features,
)
from repro.events.evaluation import (
    DetectionOutcome,
    LocalizationExperiment,
    LocalizationOutcome,
    default_estimators,
    make_korean_scenarios,
    mean_error_by_scheme,
    render_localization_table,
)
from repro.events.injector import EventTweetInjector
from repro.events.kalman import KalmanLocalizer, Measurement
from repro.events.online import OnlineAlarm, OnlineEventDetector, OnlineStats
from repro.events.particle import ParticleLocalizer
from repro.events.scenario import EventScenario, WitnessGenerator, WitnessReport
from repro.events.trends import Trend, TrendDetector
from repro.events.twitris import SliceKey, SliceSummary, TwitrisSummarizer
from repro.events.weighted import (
    MIN_PROFILE_WEIGHT,
    MedianLocalizer,
    WeightedCentroidLocalizer,
    build_measurements,
)

__all__ = [
    "MIN_PROFILE_WEIGHT",
    "BurstAlarm",
    "BurstDetector",
    "DetectionOutcome",
    "EventScenario",
    "EventTweetClassifier",
    "EventTweetInjector",
    "ExponentialDecayFit",
    "KalmanLocalizer",
    "LabeledTweet",
    "OnlineAlarm",
    "OnlineEventDetector",
    "OnlineStats",
    "LocalizationExperiment",
    "LocalizationOutcome",
    "Measurement",
    "MedianLocalizer",
    "ParticleLocalizer",
    "SliceKey",
    "SliceSummary",
    "Trend",
    "TrendDetector",
    "TwitrisSummarizer",
    "WeightedCentroidLocalizer",
    "WitnessGenerator",
    "WitnessReport",
    "build_measurements",
    "default_estimators",
    "default_training_set",
    "extract_features",
    "fit_exponential_decay",
    "make_korean_scenarios",
    "mean_error_by_scheme",
    "render_localization_table",
]
