"""Reliability-weighted localisation — the paper's proposed improvement.

Turns witness reports into estimator measurements: a GPS report is a
weight-1.0 measurement at its coordinates; a non-GPS report contributes
the witness's *profile-district centroid* weighted by the reliability the
study assigned that user (§V: "determine the weight factor for the
location information").  Simple estimators (weighted centroid, geographic
median) live here; the Kalman and particle filters consume the same
measurement lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reliability import ReliabilityTable, WeightingScheme
from repro.errors import InsufficientDataError
from repro.events.kalman import Measurement
from repro.events.scenario import WitnessReport
from repro.geo.point import GeoPoint, geographic_median
from repro.geo.region import District
from repro.grouping.topk import UserGrouping

#: Floor for profile-based weights so estimators never divide by zero; a
#: None-group profile still carries (almost) no influence.
MIN_PROFILE_WEIGHT = 0.02


def build_measurements(
    reports: list[WitnessReport],
    profile_districts: dict[int, District],
    groupings: dict[int, UserGrouping],
    table: ReliabilityTable,
    scheme: WeightingScheme = WeightingScheme.GROUP_MATCHED_SHARE,
) -> list[Measurement]:
    """Convert witness reports to estimator measurements.

    Reports without GPS *and* without a known profile district are
    dropped — there is nothing to localise them with.
    """
    measurements: list[Measurement] = []
    for report in reports:
        if report.gps is not None:
            measurements.append(
                Measurement(point=report.gps, weight=1.0, timestamp_ms=report.timestamp_ms)
            )
            continue
        district = profile_districts.get(report.user_id)
        if district is None:
            continue
        weight = table.weight_for_user(groupings.get(report.user_id), scheme)
        measurements.append(
            Measurement(
                point=district.center,
                weight=min(1.0, max(MIN_PROFILE_WEIGHT, weight)),
                timestamp_ms=report.timestamp_ms,
            )
        )
    return measurements


@dataclass(frozen=True, slots=True)
class WeightedCentroidLocalizer:
    """Weighted mean of measurement positions — the simplest estimator."""

    def estimate(self, measurements: list[Measurement]) -> GeoPoint:
        """Weighted arithmetic mean of lat/lon.

        Raises:
            InsufficientDataError: with no measurements.
        """
        if not measurements:
            raise InsufficientDataError("no measurements to localise from")
        total = sum(m.weight for m in measurements)
        lat = sum(m.point.lat * m.weight for m in measurements) / total
        lon = sum(m.point.lon * m.weight for m in measurements) / total
        return GeoPoint(lat, lon)


@dataclass(frozen=True, slots=True)
class MedianLocalizer:
    """Geographic median of measurement positions (Toretter's robust
    "estimated median"); ignores weights by design."""

    def estimate(self, measurements: list[Measurement]) -> GeoPoint:
        """Weiszfeld geometric median of the positions.

        Raises:
            InsufficientDataError: with no measurements.
        """
        if not measurements:
            raise InsufficientDataError("no measurements to localise from")
        return geographic_median([m.point for m in measurements])
