"""Injection of event tweets into a platform stream.

Produces the tweets an earthquake would cause: study users whose sampled
current district lies inside the felt radius post keyword tweets shortly
after onset, carrying GPS with the usual scarcity.  The output is plain
:class:`~repro.twitter.models.Tweet` objects, so an injected stream is
indistinguishable in type from the background firehose — exactly what the
online detector must cope with.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.events.scenario import EventScenario, WitnessGenerator
from repro.geo.gazetteer import GazetteerBackend
from repro.grouping.topk import UserGrouping
from repro.twitter.idgen import SnowflakeGenerator
from repro.twitter.models import Tweet


class EventTweetInjector:
    """Turns a scenario + study population into injectable event tweets.

    Args:
        gazetteer: District catalogue.
        gps_rate: Fraction of event tweets carrying GPS.
        seed: Witness-draw seed.
    """

    def __init__(self, gazetteer: GazetteerBackend, gps_rate: float = 0.2, seed: int = 7):
        if not 0.0 <= gps_rate <= 1.0:
            raise ConfigurationError("gps_rate must be in [0, 1]")
        self._witnesses = WitnessGenerator(gazetteer, gps_rate=gps_rate, seed=seed)
        self._idgen = SnowflakeGenerator(worker_id=31)
        self._seed = seed

    def inject(
        self,
        scenario: EventScenario,
        groupings: dict[int, UserGrouping],
        background: list[Tweet],
    ) -> list[Tweet]:
        """Merge the scenario's event tweets into ``background``.

        Returns a new list in global id (time) order; the background list
        is not modified.
        """
        event_tweets = self.event_tweets(scenario, groupings)
        merged = list(background) + event_tweets
        merged.sort(key=lambda t: t.tweet_id)
        return merged

    def event_tweets(
        self,
        scenario: EventScenario,
        groupings: dict[int, UserGrouping],
    ) -> list[Tweet]:
        """Just the event tweets, as platform-level Tweet objects."""
        tweets = []
        for report in self._witnesses.generate(scenario, groupings):
            tweets.append(
                Tweet(
                    tweet_id=self._idgen.next_id(report.timestamp_ms),
                    user_id=report.user_id,
                    created_at_ms=report.timestamp_ms,
                    text=report.text,
                    coordinates=report.gps,
                    true_state=report.true_district.state,
                    true_county=report.true_district.name,
                )
            )
        return tweets
