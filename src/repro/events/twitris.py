"""Twitris-style spatio-temporal-thematic summarisation.

Nagarajan et al.'s Twitris browses "citizen sensor observations" along
three dimensions — when, where, what — by extracting the TF-IDF-strongest
terms from the tweets of a (location, day) slice (paper §II).  This module
reproduces that pipeline on our corpus: GPS tweets are bucketed by
(district, day) via reverse geocoding, a background corpus supplies
document frequencies, and each slice yields its top themes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import InsufficientDataError
from repro.geo.reverse import ReverseGeocoder
from repro.text.tfidf import ScoredTerm, TfIdfCorpus
from repro.text.tokenize import tokenize
from repro.twitter.models import Tweet

_DAY_MS = 86_400_000


@dataclass(frozen=True, slots=True)
class SliceKey:
    """A (where, when) slice: district key plus day index."""

    state: str
    county: str
    day: int  # unix day number (created_at_ms // _DAY_MS)


@dataclass(frozen=True, slots=True)
class SliceSummary:
    """The thematic summary of one slice.

    Attributes:
        key: The slice.
        tweet_count: Tweets in the slice.
        top_terms: TF-IDF-ranked themes.
    """

    key: SliceKey
    tweet_count: int
    top_terms: tuple[ScoredTerm, ...]


class TwitrisSummarizer:
    """Builds spatio-temporal-thematic summaries over GPS tweets.

    Args:
        reverse_geocoder: Maps tweet GPS to districts (the "where" axis).
    """

    def __init__(self, reverse_geocoder: ReverseGeocoder):
        self._reverse = reverse_geocoder
        self._corpus = TfIdfCorpus()
        self._slices: dict[SliceKey, list[list[str]]] = defaultdict(list)

    @property
    def corpus(self) -> TfIdfCorpus:
        """The background TF-IDF corpus (all ingested tweets)."""
        return self._corpus

    def ingest(self, tweets: list[Tweet]) -> int:
        """Fold tweets into the corpus and slice index.

        Every tweet feeds the background corpus; only GPS tweets land in a
        (district, day) slice.  Returns the number of sliced tweets.
        """
        sliced = 0
        for tweet in tweets:
            tokens = tokenize(tweet.text)
            self._corpus.add_document(tokens)
            if tweet.coordinates is None:
                continue
            result = self._reverse.try_resolve(tweet.coordinates)
            if result is None:
                continue
            key = SliceKey(
                state=result.path.state,
                county=result.path.county,
                day=tweet.created_at_ms // _DAY_MS,
            )
            self._slices[key].append(tokens)
            sliced += 1
        return sliced

    def slice_keys(self) -> list[SliceKey]:
        """All populated slices, sorted by (day, state, county)."""
        return sorted(self._slices, key=lambda k: (k.day, k.state, k.county))

    def summarize(self, key: SliceKey, top_k: int = 5) -> SliceSummary:
        """Top themes of one slice.

        Raises:
            InsufficientDataError: for an unpopulated slice.
        """
        documents = self._slices.get(key)
        if not documents:
            raise InsufficientDataError(f"no tweets in slice {key}")
        terms = self._corpus.score_slice(documents, top_k=top_k)
        return SliceSummary(key=key, tweet_count=len(documents), top_terms=tuple(terms))

    def summarize_all(self, top_k: int = 5, min_tweets: int = 3) -> list[SliceSummary]:
        """Summaries for every slice with at least ``min_tweets`` tweets."""
        return [
            self.summarize(key, top_k=top_k)
            for key in self.slice_keys()
            if len(self._slices[key]) >= min_tweets
        ]
