"""Kalman-filter event localisation (Toretter's first estimator).

Sakaki et al. apply a Kalman filter to witness coordinates to estimate an
event's epicentre (paper Fig. 2).  The event does not move, so the state
is a static 2-vector ``[lat, lon]`` with a small process noise to keep the
filter responsive; each witness report is a direct measurement of the
state with per-measurement noise.

Reliability weighting enters through the measurement covariance: a report
whose position came from a profile location with weight ``w`` gets its
noise scaled by ``1/w`` — an unreliable profile barely moves the estimate,
which is precisely the paper's proposed use of the study's weight factors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InsufficientDataError
from repro.geo.point import GeoPoint


@dataclass(frozen=True, slots=True)
class Measurement:
    """One witness report.

    Attributes:
        point: Reported position (GPS fix, or profile-district centroid).
        weight: Reliability in (0, 1]; 1.0 for a GPS fix.
        timestamp_ms: Report time (used for ordering).
    """

    point: GeoPoint
    weight: float
    timestamp_ms: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise InsufficientDataError(
                f"measurement weight must be in (0, 1], got {self.weight}"
            )


class KalmanLocalizer:
    """Static-state Kalman filter over witness measurements.

    Args:
        base_noise_deg: Measurement standard deviation (degrees) for a
            fully reliable (weight 1.0) report.
        process_noise_deg: Per-step process noise; small but non-zero so
            late measurements still matter.
        prior_spread_deg: Prior standard deviation around the first
            measurement.
    """

    def __init__(
        self,
        base_noise_deg: float = 0.05,
        process_noise_deg: float = 1e-4,
        prior_spread_deg: float = 2.0,
    ):
        self._base_var = base_noise_deg**2
        self._process_var = process_noise_deg**2
        self._prior_var = prior_spread_deg**2

    def estimate(self, measurements: list[Measurement]) -> GeoPoint:
        """Run the filter over time-ordered measurements.

        Raises:
            InsufficientDataError: with no measurements.
        """
        if not measurements:
            raise InsufficientDataError("no measurements to localise from")
        ordered = sorted(measurements, key=lambda m: m.timestamp_ms)

        state = np.array([ordered[0].point.lat, ordered[0].point.lon])
        covariance = np.eye(2) * self._prior_var
        identity = np.eye(2)
        for measurement in ordered:
            # Predict: static state, inflate uncertainty slightly.
            covariance = covariance + identity * self._process_var
            # Update: direct observation with weight-scaled noise.
            noise = identity * (self._base_var / measurement.weight)
            observed = np.array([measurement.point.lat, measurement.point.lon])
            innovation = observed - state
            gain = covariance @ np.linalg.inv(covariance + noise)
            state = state + gain @ innovation
            covariance = (identity - gain) @ covariance
        return GeoPoint(float(state[0]), float(state[1]))
