"""Particle-filter event localisation (Toretter's second estimator).

Sakaki et al. found the particle filter the better of their two location
estimators.  Particles are candidate epicentres; each witness report
reweights them by a Gaussian likelihood around the reported position
(tempered by the report's reliability weight), followed by systematic
resampling and a little roughening noise to fight sample impoverishment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InsufficientDataError
from repro.events.kalman import Measurement
from repro.geo.point import GeoPoint


class ParticleLocalizer:
    """Bootstrap particle filter over witness measurements.

    Args:
        particle_count: Number of particles.
        init_spread_deg: Initial particle cloud radius (std dev, degrees)
            around the first measurement.
        base_noise_deg: Likelihood standard deviation for a weight-1.0
            report (scaled up by ``1/sqrt(weight)`` for weaker reports).
        roughening_deg: Post-resampling jitter std dev.
        seed: RNG seed (filter is deterministic given it).
    """

    def __init__(
        self,
        particle_count: int = 500,
        init_spread_deg: float = 1.0,
        base_noise_deg: float = 0.05,
        roughening_deg: float = 0.005,
        seed: int = 7,
    ):
        if particle_count < 10:
            raise InsufficientDataError("need at least 10 particles")
        self._particle_count = particle_count
        self._init_spread_deg = init_spread_deg
        self._base_noise_deg = base_noise_deg
        self._roughening_deg = roughening_deg
        self._seed = seed

    def estimate(self, measurements: list[Measurement]) -> GeoPoint:
        """Run the filter over time-ordered measurements.

        Raises:
            InsufficientDataError: with no measurements.
        """
        if not measurements:
            raise InsufficientDataError("no measurements to localise from")
        ordered = sorted(measurements, key=lambda m: m.timestamp_ms)
        rng = np.random.default_rng(self._seed)

        # Initialise around the reliability-weighted centroid of all
        # measurements: a single unreliable first report must not decide
        # where the particle cloud lives.
        total_weight = sum(m.weight for m in ordered)
        center = np.array(
            [
                sum(m.point.lat * m.weight for m in ordered) / total_weight,
                sum(m.point.lon * m.weight for m in ordered) / total_weight,
            ]
        )
        particles = rng.normal(
            loc=center,
            scale=self._init_spread_deg,
            size=(self._particle_count, 2),
        )
        weights = np.full(self._particle_count, 1.0 / self._particle_count)

        for measurement in ordered:
            observed = np.array([measurement.point.lat, measurement.point.lon])
            sigma = self._base_noise_deg / np.sqrt(measurement.weight)
            distances_sq = np.sum((particles - observed) ** 2, axis=1)
            # Temper the update by the reliability weight: an unreliable
            # report reshapes the posterior weakly even where it peaks.
            likelihood = (
                np.exp(-0.5 * distances_sq / sigma**2) + 1e-12
            ) ** measurement.weight
            weights = weights * likelihood
            total = weights.sum()
            if total <= 0 or not np.isfinite(total):
                # Degenerate update (all particles far away): reset around
                # the measurement instead of dividing by zero.
                particles = rng.normal(
                    loc=observed, scale=self._init_spread_deg, size=particles.shape
                )
                weights = np.full(self._particle_count, 1.0 / self._particle_count)
                continue
            weights = weights / total

            effective = 1.0 / np.sum(weights**2)
            if effective < self._particle_count / 2:
                particles = self._systematic_resample(particles, weights, rng)
                weights = np.full(self._particle_count, 1.0 / self._particle_count)
                particles = particles + rng.normal(
                    scale=self._roughening_deg, size=particles.shape
                )

        mean = np.average(particles, axis=0, weights=weights)
        return GeoPoint(float(np.clip(mean[0], -90, 90)), float(np.clip(mean[1], -180, 180)))

    @staticmethod
    def _systematic_resample(
        particles: np.ndarray, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        count = len(weights)
        positions = (rng.random() + np.arange(count)) / count
        cumulative = np.cumsum(weights)
        cumulative[-1] = 1.0  # guard against floating-point shortfall
        indexes = np.searchsorted(cumulative, positions)
        return particles[indexes].copy()
