"""Event-tweet classifier (Toretter's first stage).

Sakaki et al. classify tweets containing a query word ("earthquake",
"shaking") as referring to an actual, current event or not, using an SVM
over three feature groups: statistical (tweet length, position of the
query word), keyword (the words themselves), and context (words around
the query word).  We implement the same feature groups over a from-scratch
logistic-regression model trained by gradient descent — linear decision
surface, like the linear-kernel SVM the paper found best.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import InsufficientDataError
from repro.text.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class LabeledTweet:
    """A training example: tweet text and whether it reports a live event."""

    text: str
    is_event: bool


#: Words that signal a *report of a current event* near the query word.
_POSITIVE_CONTEXT = frozenset(
    "now just right happening felt feel strong big huge omg wow here".split()
)
#: Words that signal historical / hypothetical mentions.
_NEGATIVE_CONTEXT = frozenset(
    "if movie drill about remember anniversary insurance game song news".split()
)


def extract_features(text: str, query_words: Sequence[str]) -> list[float]:
    """Toretter's three feature groups as a fixed-length vector.

    Features (in order): token count, query-word presence, relative
    position of the first query word, exclamation density, positive- and
    negative-context counts, first-person marker, and a bias term.
    """
    tokens = tokenize(text, drop_stopwords=False)
    lowered_query = {w.lower() for w in query_words}
    count = len(tokens)
    query_positions = [i for i, t in enumerate(tokens) if t in lowered_query]
    has_query = 1.0 if query_positions else 0.0
    rel_position = (query_positions[0] / max(1, count - 1)) if query_positions else 0.5
    exclaim = min(3, text.count("!")) / 3.0
    positive = sum(1 for t in tokens if t in _POSITIVE_CONTEXT)
    negative = sum(1 for t in tokens if t in _NEGATIVE_CONTEXT)
    first_person = 1.0 if any(t in ("i", "we", "my") for t in tokens) else 0.0
    return [
        min(count, 30) / 30.0,
        has_query,
        rel_position,
        exclaim,
        min(positive, 3) / 3.0,
        min(negative, 3) / 3.0,
        first_person,
        1.0,  # bias
    ]


class EventTweetClassifier:
    """Linear classifier over the Toretter feature groups.

    Args:
        query_words: The tracked event terms (Toretter: "earthquake",
            "shaking").
        learning_rate / epochs / seed: Gradient-descent hyperparameters.
    """

    def __init__(
        self,
        query_words: Sequence[str] = ("earthquake", "shaking"),
        learning_rate: float = 0.5,
        epochs: int = 200,
        seed: int = 7,
    ):
        self._query_words = tuple(query_words)
        self._learning_rate = learning_rate
        self._epochs = epochs
        self._seed = seed
        self._weights: list[float] | None = None

    @property
    def is_trained(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._weights is not None

    def fit(self, examples: Sequence[LabeledTweet]) -> None:
        """Train by full-batch logistic regression.

        Raises:
            InsufficientDataError: without both positive and negative
                examples.
        """
        if not any(e.is_event for e in examples) or all(e.is_event for e in examples):
            raise InsufficientDataError("training needs both classes")
        rows = [extract_features(e.text, self._query_words) for e in examples]
        labels = [1.0 if e.is_event else 0.0 for e in examples]
        dim = len(rows[0])
        rng = random.Random(self._seed)
        weights = [rng.uniform(-0.01, 0.01) for _ in range(dim)]
        n = len(rows)
        for _ in range(self._epochs):
            gradient = [0.0] * dim
            for features, label in zip(rows, labels):
                error = self._sigmoid(_dot(weights, features)) - label
                for j, value in enumerate(features):
                    gradient[j] += error * value
            for j in range(dim):
                weights[j] -= self._learning_rate * gradient[j] / n
        self._weights = weights

    def predict_proba(self, text: str) -> float:
        """P(text reports a live event).

        Raises:
            InsufficientDataError: if the model is untrained.
        """
        if self._weights is None:
            raise InsufficientDataError("classifier is not trained")
        features = extract_features(text, self._query_words)
        return self._sigmoid(_dot(self._weights, features))

    def predict(self, text: str, threshold: float = 0.5) -> bool:
        """Class decision at ``threshold``."""
        return self.predict_proba(text) >= threshold

    @staticmethod
    def _sigmoid(x: float) -> float:
        if x >= 0:
            return 1.0 / (1.0 + math.exp(-x))
        z = math.exp(x)
        return z / (1.0 + z)


def _dot(a: list[float], b: list[float]) -> float:
    return sum(x * y for x, y in zip(a, b))


def default_training_set() -> list[LabeledTweet]:
    """A small built-in labelled corpus for the earthquake task."""
    positives = [
        "earthquake!! the whole building is shaking right now",
        "whoa big earthquake just hit, everyone ok?",
        "i felt a strong earthquake just now",
        "shaking so hard here, earthquake??",
        "earthquake happening now, things falling off shelves",
        "we just felt an earthquake, that was huge",
        "omg earthquake right now!!",
        "my desk is shaking, earthquake again",
        "strong shaking here, definitely an earthquake",
        "just felt the ground shaking for a few seconds",
    ]
    negatives = [
        "watching a movie about the big earthquake of 1995",
        "earthquake insurance is so expensive these days",
        "remember the earthquake drill tomorrow at school",
        "that new song is shaking up the charts",
        "the anniversary of the great earthquake is next week",
        "if an earthquake hit this old building it would collapse",
        "reading news about earthquake preparedness",
        "this game has an earthquake spell, so cool",
        "my dog is shaking because of the thunder",
        "earthquake documentaries always make me anxious",
    ]
    return [LabeledTweet(t, True) for t in positives] + [
        LabeledTweet(t, False) for t in negatives
    ]
