"""Synthetic event scenarios and witness-report generation.

The paper's future work is to feed its reliability weights into event
localisation (Toretter-style).  To evaluate that end-to-end we need what
the original authors got from the Japan Meteorological Agency: ground
truth.  A :class:`EventScenario` fixes an epicentre and onset; witnesses
are drawn from the *study population itself* — each user's current
district at event time is sampled from their empirical tweet-district
distribution (their merged strings), so the correlation structure the
study measured is exactly what drives localisation error:

* a Top-1 witness's profile centroid is close to where they really are;
* a None-group witness's profile points somewhere they never go.

Witnesses inside the felt radius tweet about the event after an
exponential delay (Toretter's arrival model); only some reports carry GPS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.point import GeoPoint
from repro.geo.region import District
from repro.grouping.topk import UserGrouping

_EVENT_TEMPLATES = (
    "earthquake!! everything is shaking right now",
    "whoa strong earthquake just hit here",
    "did anyone else feel that earthquake just now?",
    "the building is shaking, earthquake!",
    "big earthquake, things falling off my desk",
    "omg earthquake right now, that was scary",
)


@dataclass(frozen=True, slots=True)
class EventScenario:
    """A ground-truth event.

    Attributes:
        name: Label for reports.
        epicenter: True event location.
        onset_ms: Event time, unix milliseconds.
        felt_radius_km: Users currently within this radius feel it.
        mean_report_delay_ms: Mean of the exponential tweet delay.
        report_probability: Chance a feeling user tweets about it.
    """

    name: str
    epicenter: GeoPoint
    onset_ms: int
    felt_radius_km: float = 60.0
    mean_report_delay_ms: float = 180_000.0
    report_probability: float = 0.7

    def __post_init__(self) -> None:
        if self.felt_radius_km <= 0:
            raise ConfigurationError("felt_radius_km must be positive")
        if not 0.0 < self.report_probability <= 1.0:
            raise ConfigurationError("report_probability must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class WitnessReport:
    """One event tweet with its ground truth attached.

    Attributes:
        user_id: The witness.
        timestamp_ms: Report time.
        text: Tweet body (contains the event keyword).
        gps: Coordinates if the report carried GPS, else None.
        true_position: Where the witness actually was.
        true_district: The district they were in.
    """

    user_id: int
    timestamp_ms: int
    text: str
    gps: GeoPoint | None
    true_position: GeoPoint
    true_district: District


class WitnessGenerator:
    """Draws witness reports for a scenario from study outcomes.

    Args:
        gazetteer: Catalogue the study users' districts live in.
        gps_rate: Probability a report carries GPS (the scarce, fully
            reliable case).
        seed: RNG seed.
    """

    def __init__(self, gazetteer: GazetteerBackend, gps_rate: float = 0.2, seed: int = 7):
        if not 0.0 <= gps_rate <= 1.0:
            raise ConfigurationError("gps_rate must be in [0, 1]")
        self._gazetteer = gazetteer
        self._gps_rate = gps_rate
        self._seed = seed

    def generate(
        self,
        scenario: EventScenario,
        groupings: dict[int, UserGrouping],
    ) -> list[WitnessReport]:
        """Generate the scenario's witness reports, time-ordered.

        Each study user's location at event time is sampled from their
        empirical tweet-district distribution; users within the felt
        radius report with the scenario's probability.
        """
        rng = random.Random(f"{self._seed}:{scenario.name}")
        reports: list[WitnessReport] = []
        for user_id in sorted(groupings):
            grouping = groupings[user_id]
            district = self._sample_current_district(grouping, rng)
            if district is None:
                continue
            distance = district.center.distance_km(scenario.epicenter)
            if distance > scenario.felt_radius_km:
                continue
            if rng.random() > scenario.report_probability:
                continue
            position = self._jitter_within(district, rng)
            delay = rng.expovariate(1.0 / scenario.mean_report_delay_ms)
            has_gps = rng.random() < self._gps_rate
            reports.append(
                WitnessReport(
                    user_id=user_id,
                    timestamp_ms=scenario.onset_ms + int(delay),
                    text=rng.choice(_EVENT_TEMPLATES),
                    gps=position if has_gps else None,
                    true_position=position,
                    true_district=district,
                )
            )
        reports.sort(key=lambda r: r.timestamp_ms)
        return reports

    # ------------------------------------------------------------- internals
    def _sample_current_district(
        self, grouping: UserGrouping, rng: random.Random
    ) -> District | None:
        """Sample where the user is right now from their merged strings."""
        keys = [row.record.tweet_key() for row in grouping.merged]
        counts = [row.count for row in grouping.merged]
        state, county = rng.choices(keys, weights=counts, k=1)[0]
        return self._gazetteer.find(state, county)

    @staticmethod
    def _jitter_within(district: District, rng: random.Random) -> GeoPoint:
        import math

        bearing = rng.uniform(0.0, 360.0)
        distance = district.radius_km * 0.8 * math.sqrt(rng.random())
        return district.center.destination(bearing, distance)
