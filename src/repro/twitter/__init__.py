"""Twitter substrate: synthetic accounts, tweets, APIs, and the crawler.

Public surface of :mod:`repro.twitter`:

* models — :class:`TwitterUser`, :class:`Tweet`, ground-truth enums
* :class:`PopulationGenerator` / :class:`PopulationConfig` — user base
* :class:`MobilityModel` / :class:`MobilityProfile` — where users tweet
* :class:`TweetGenerator` / :class:`CollectionWindow` — tweet histories
* :class:`FollowerGraph` / :class:`GraphConfig` — the social graph
* :class:`RestApi` / :class:`StreamingApi` / :class:`VirtualClock` — API sims
* :class:`FollowerCrawler` / :class:`CrawlConfig` — the collection crawler
"""

from repro.twitter.api import (
    FOLLOWER_PAGE_SIZE,
    TIMELINE_PAGE_SIZE,
    USER_LOOKUP_BATCH,
    ApiUsage,
    FollowerPage,
    RateLimitPolicy,
    RestApi,
    SearchPage,
    StreamingApi,
    StreamStats,
    VirtualClock,
)
from repro.twitter.crawler import CrawlConfig, CrawlResult, FollowerCrawler
from repro.twitter.idgen import (
    SNOWFLAKE_EPOCH_MS,
    SnowflakeGenerator,
    snowflake_timestamp_ms,
)
from repro.twitter.mobility import MobilityModel, MobilityProfile
from repro.twitter.models import (
    DatasetSummary,
    FollowerEdge,
    GeotaggedObservation,
    MobilityClass,
    ProfileStyle,
    Tweet,
    TwitterUser,
)
from repro.twitter.population import (
    DEFAULT_MOBILITY_MIX,
    DEFAULT_PROFILE_STYLE_MIX,
    PopulationConfig,
    PopulationGenerator,
    ProfileTextRenderer,
    SyntheticUser,
)
from repro.twitter.social_graph import FollowerGraph, GraphConfig
from repro.twitter.tweetgen import CollectionWindow, TweetGenerator

__all__ = [
    "DEFAULT_MOBILITY_MIX",
    "DEFAULT_PROFILE_STYLE_MIX",
    "FOLLOWER_PAGE_SIZE",
    "SNOWFLAKE_EPOCH_MS",
    "TIMELINE_PAGE_SIZE",
    "USER_LOOKUP_BATCH",
    "ApiUsage",
    "CollectionWindow",
    "CrawlConfig",
    "CrawlResult",
    "DatasetSummary",
    "FollowerCrawler",
    "FollowerEdge",
    "FollowerGraph",
    "FollowerPage",
    "GeotaggedObservation",
    "GraphConfig",
    "MobilityClass",
    "MobilityModel",
    "MobilityProfile",
    "PopulationConfig",
    "PopulationGenerator",
    "ProfileStyle",
    "ProfileTextRenderer",
    "RateLimitPolicy",
    "RestApi",
    "SearchPage",
    "SnowflakeGenerator",
    "StreamStats",
    "StreamingApi",
    "SyntheticUser",
    "Tweet",
    "TwitterUser",
    "VirtualClock",
    "snowflake_timestamp_ms",
]
