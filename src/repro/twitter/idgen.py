"""Snowflake-style id generation for synthetic users and tweets.

Twitter's ids encode a millisecond timestamp, a worker id, and a sequence
number.  Reproducing that layout keeps tweet ids monotone in time, which
the Search API simulator's ``since_id`` / ``max_id`` cursoring relies on —
exactly the property real collection code depends on.
"""

from __future__ import annotations

#: Twitter's snowflake epoch (2010-11-04T01:42:54.657Z) in milliseconds.
SNOWFLAKE_EPOCH_MS = 1_288_834_974_657

_TIMESTAMP_BITS = 41
_WORKER_BITS = 10
_SEQUENCE_BITS = 12
_MAX_SEQUENCE = (1 << _SEQUENCE_BITS) - 1
_MAX_WORKER = (1 << _WORKER_BITS) - 1


class SnowflakeGenerator:
    """Deterministic snowflake id generator.

    Args:
        worker_id: 10-bit worker field (0-1023).

    Raises:
        ValueError: if ``worker_id`` is out of range.
    """

    def __init__(self, worker_id: int = 0):
        if not 0 <= worker_id <= _MAX_WORKER:
            raise ValueError(f"worker_id must be 0..{_MAX_WORKER}, got {worker_id}")
        self._worker_id = worker_id
        self._last_ms = -1
        self._sequence = 0

    def next_id(self, timestamp_ms: int) -> int:
        """Generate the next id for ``timestamp_ms`` (unix milliseconds).

        Ids are strictly increasing across calls: a timestamp earlier than
        the previous call's is clamped forward, and the sequence field
        rolls the timestamp forward when more than 4096 ids share one
        millisecond.
        """
        if timestamp_ms < self._last_ms:
            timestamp_ms = self._last_ms
        if timestamp_ms == self._last_ms:
            self._sequence += 1
            if self._sequence > _MAX_SEQUENCE:
                timestamp_ms += 1
                self._sequence = 0
        else:
            self._sequence = 0
        self._last_ms = timestamp_ms
        elapsed = timestamp_ms - SNOWFLAKE_EPOCH_MS
        if elapsed < 0:
            raise ValueError(f"timestamp {timestamp_ms} predates the snowflake epoch")
        return (
            (elapsed << (_WORKER_BITS + _SEQUENCE_BITS))
            | (self._worker_id << _SEQUENCE_BITS)
            | self._sequence
        )


def snowflake_timestamp_ms(snowflake_id: int) -> int:
    """Recover the unix-millisecond timestamp embedded in a snowflake id."""
    return (snowflake_id >> (_WORKER_BITS + _SEQUENCE_BITS)) + SNOWFLAKE_EPOCH_MS
