"""Simulated Twitter REST and Streaming APIs.

The paper's two datasets were collected through the two API families of
the era: the Korean crawl used REST endpoints (followers/ids + user
timelines, "Search API" on the slide), and the Lady Gaga dataset came from
the Streaming API's ``track`` filter.  The simulators here reproduce the
client-visible behaviour collection code must handle: cursored follower
pages, ``since_id``/``max_id`` timeline paging, 15-minute-window rate
limits, and a keyword/location-filtered stream.

Time is virtual: a :class:`VirtualClock` advances when the caller "waits",
so rate-limit handling is exercised without real sleeping.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import NotFoundError, RateLimitExceededError
from repro.geo.region import BoundingBox
from repro.twitter.models import Tweet, TwitterUser
from repro.twitter.social_graph import FollowerGraph

#: Real follower/ids page size.
FOLLOWER_PAGE_SIZE = 5_000
#: Real statuses/user_timeline max count per call.
TIMELINE_PAGE_SIZE = 200
#: Real users/lookup batch size.
USER_LOOKUP_BATCH = 100


class VirtualClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start_s: float = 0.0):
        self._now_s = start_s

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_s

    def advance(self, seconds: float) -> None:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now_s += seconds


@dataclass
class RateLimitPolicy:
    """A fixed-window rate limit, as the v1.1 API enforced per endpoint.

    Attributes:
        window_s: Window length in seconds (900 = 15 minutes).
        calls_per_window: Allowed calls per window.
    """

    window_s: float = 900.0
    calls_per_window: int = 15

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.calls_per_window <= 0:
            raise ValueError("rate limit window and quota must be positive")


class _RateLimiter:
    """Tracks one endpoint's fixed-window usage against a virtual clock."""

    def __init__(self, policy: RateLimitPolicy, clock: VirtualClock):
        self._policy = policy
        self._clock = clock
        self._window_start_s = clock.now_s
        self._used = 0

    def check(self) -> None:
        now = self._clock.now_s
        if now - self._window_start_s >= self._policy.window_s:
            self._window_start_s = now
            self._used = 0
        if self._used >= self._policy.calls_per_window:
            retry_after = self._policy.window_s - (now - self._window_start_s)
            raise RateLimitExceededError(retry_after_s=max(0.0, retry_after))
        self._used += 1


@dataclass
class ApiUsage:
    """Aggregate usage counters for a simulated REST API."""

    follower_calls: int = 0
    timeline_calls: int = 0
    user_lookup_calls: int = 0
    batch_lookup_calls: int = 0
    search_calls: int = 0
    rate_limit_rejections: int = 0


@dataclass(frozen=True, slots=True)
class FollowerPage:
    """One page of followers/ids results."""

    ids: tuple[int, ...]
    next_cursor: int  # 0 means exhausted, like the real API


class RestApi:
    """Simulated REST API over a follower graph and tweet corpus.

    Args:
        users: All accounts, keyed by id.
        graph: Follower graph the followers/ids endpoint serves.
        tweets_by_user: Each user's tweets (any order; indexed at init).
        clock: Virtual clock shared with the calling collection code.
        follower_limit / timeline_limit: Per-endpoint rate policies.
    """

    def __init__(
        self,
        users: dict[int, TwitterUser],
        graph: FollowerGraph,
        tweets_by_user: dict[int, list[Tweet]],
        clock: VirtualClock | None = None,
        follower_limit: RateLimitPolicy | None = None,
        timeline_limit: RateLimitPolicy | None = None,
    ):
        self._users = users
        self._graph = graph
        self._timelines = {
            uid: sorted(tweets, key=lambda t: t.tweet_id, reverse=True)
            for uid, tweets in tweets_by_user.items()
        }
        self._all_tweets = sorted(
            (t for tweets in tweets_by_user.values() for t in tweets),
            key=lambda t: t.tweet_id,
            reverse=True,
        )
        self.clock = clock or VirtualClock()
        self._follower_limiter = _RateLimiter(
            follower_limit or RateLimitPolicy(calls_per_window=15), self.clock
        )
        self._timeline_limiter = _RateLimiter(
            timeline_limit or RateLimitPolicy(calls_per_window=180), self.clock
        )
        self._search_limiter = _RateLimiter(
            RateLimitPolicy(calls_per_window=180), self.clock
        )
        self.usage = ApiUsage()

    # --------------------------------------------------------------- lookups
    def _hydrate(self, user_id: int) -> TwitterUser:
        """Account record with live degree counts (no usage accounting)."""
        try:
            user = self._users[user_id]
        except KeyError:
            raise NotFoundError(f"unknown user {user_id}") from None
        followers, friends = self._graph.degree(user_id)
        if user.followers == followers and user.friends == friends:
            return user
        return TwitterUser(
            user_id=user.user_id,
            screen_name=user.screen_name,
            profile_location=user.profile_location,
            created_at_ms=user.created_at_ms,
            has_smartphone=user.has_smartphone,
            home_state=user.home_state,
            home_county=user.home_county,
            mobility=user.mobility,
            profile_style=user.profile_style,
            followers=followers,
            friends=friends,
        )

    def get_user(self, user_id: int) -> TwitterUser:
        """users/show — account metadata with live degree counts."""
        self.usage.user_lookup_calls += 1
        return self._hydrate(user_id)

    def lookup_users(self, user_ids: list[int]) -> list[TwitterUser]:
        """users/lookup — batch hydration, up to 100 accounts per call.

        Unknown ids are silently omitted, exactly like the real endpoint;
        order follows the request.

        Raises:
            NotFoundError: if more than ``USER_LOOKUP_BATCH`` ids are
                requested in one call.
        """
        if len(user_ids) > USER_LOOKUP_BATCH:
            raise NotFoundError(
                f"users/lookup accepts at most {USER_LOOKUP_BATCH} ids, "
                f"got {len(user_ids)}"
            )
        self.usage.batch_lookup_calls += 1
        return [
            self._hydrate(user_id) for user_id in user_ids if user_id in self._users
        ]

    def get_followers(self, user_id: int, cursor: int = -1) -> FollowerPage:
        """followers/ids — one cursored page of follower ids.

        Cursor protocol mirrors the real endpoint: ``-1`` starts, the
        returned ``next_cursor`` feeds the next call, ``0`` means done.

        Raises:
            RateLimitExceededError: when the 15-minute quota is exhausted.
            NotFoundError: for unknown users.
        """
        try:
            self._follower_limiter.check()
        except RateLimitExceededError:
            self.usage.rate_limit_rejections += 1
            raise
        self.usage.follower_calls += 1
        followers = self._graph.followers_of(user_id)
        start = 0 if cursor == -1 else cursor
        if start < 0 or start > len(followers):
            raise NotFoundError(f"bad cursor {cursor}")
        page = followers[start : start + FOLLOWER_PAGE_SIZE]
        next_start = start + len(page)
        next_cursor = 0 if next_start >= len(followers) else next_start
        return FollowerPage(ids=tuple(page), next_cursor=next_cursor)

    def get_user_timeline(
        self,
        user_id: int,
        since_id: int = 0,
        max_id: int | None = None,
        count: int = TIMELINE_PAGE_SIZE,
    ) -> list[Tweet]:
        """statuses/user_timeline — newest-first page of tweets.

        ``since_id`` is exclusive, ``max_id`` inclusive, exactly like the
        real endpoint, so standard "walk back with max_id" pagination code
        works unchanged.
        """
        try:
            self._timeline_limiter.check()
        except RateLimitExceededError:
            self.usage.rate_limit_rejections += 1
            raise
        self.usage.timeline_calls += 1
        if user_id not in self._users:
            raise NotFoundError(f"unknown user {user_id}")
        count = max(1, min(count, TIMELINE_PAGE_SIZE))
        timeline = self._timelines.get(user_id, [])
        page = []
        for tweet in timeline:  # newest first
            if max_id is not None and tweet.tweet_id > max_id:
                continue
            if tweet.tweet_id <= since_id:
                break
            page.append(tweet)
            if len(page) >= count:
                break
        return page

    def search_tweets(
        self,
        query: str,
        since_id: int = 0,
        max_id: int | None = None,
        count: int = 100,
    ) -> SearchPage:
        """search/tweets — newest-first keyword search over public tweets.

        Matching is case-insensitive substring containment, like the
        standard search's phrase behaviour.  ``since_id`` is exclusive,
        ``max_id`` inclusive; walk back by passing the returned
        ``max_id`` until it comes back ``None``.

        Raises:
            RateLimitExceededError: when the 15-minute quota is exhausted.
        """
        try:
            self._search_limiter.check()
        except RateLimitExceededError:
            self.usage.rate_limit_rejections += 1
            raise
        self.usage.search_calls += 1
        count = max(1, min(count, 100))
        lowered = query.lower()
        page: list[Tweet] = []
        exhausted = True
        for tweet in self._all_tweets:  # newest first
            if max_id is not None and tweet.tweet_id > max_id:
                continue
            if tweet.tweet_id <= since_id:
                break
            if lowered not in tweet.text.lower():
                continue
            if len(page) >= count:
                exhausted = False
                break
            page.append(tweet)
        next_max_id = None if exhausted or not page else page[-1].tweet_id - 1
        return SearchPage(tweets=tuple(page), max_id=next_max_id)

    def fetch_full_timeline(self, user_id: int, wait_on_limit: bool = True) -> list[Tweet]:
        """Collect a user's whole history by max_id pagination.

        Args:
            user_id: Account to fetch.
            wait_on_limit: Advance the virtual clock past rate-limit
                windows instead of propagating the error.
        """
        collected: list[Tweet] = []
        max_id: int | None = None
        while True:
            try:
                page = self.get_user_timeline(user_id, max_id=max_id)
            except RateLimitExceededError as exc:
                if not wait_on_limit:
                    raise
                self.clock.advance(exc.retry_after_s + 1.0)
                continue
            if not page:
                return collected
            collected.extend(page)
            max_id = page[-1].tweet_id - 1


@dataclass(frozen=True, slots=True)
class SearchPage:
    """One page of search/tweets results (newest first)."""

    tweets: tuple[Tweet, ...]
    max_id: int | None  # pass as next call's max_id-1 equivalent; None = done


@dataclass
class StreamStats:
    """Delivery accounting for a simulated stream connection."""

    delivered: int = 0
    filtered_out: int = 0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view, registrable as an engine metrics source
        (``crawl.*`` in the streaming pipeline's run snapshot)."""
        return {"delivered": self.delivered, "filtered_out": self.filtered_out}


class StreamingApi:
    """Simulated Streaming API over a global, time-ordered tweet iterator.

    Args:
        tweet_stream: All public tweets in id (time) order.
    """

    def __init__(self, tweet_stream: Iterator[Tweet] | list[Tweet]):
        self._tweets = list(tweet_stream)
        self._tweets.sort(key=lambda t: t.tweet_id)

    def filter(
        self,
        track: tuple[str, ...] = (),
        locations: BoundingBox | None = None,
        limit: int | None = None,
        stats: StreamStats | None = None,
    ) -> Iterator[Tweet]:
        """statuses/filter — tweets matching any track keyword or location.

        Track matching is case-insensitive substring containment, like the
        real endpoint's phrase matching.  ``locations`` matches only
        GPS-tagged tweets, also like the real endpoint.
        """
        lowered = tuple(k.lower() for k in track)
        delivered = 0
        for tweet in self._tweets:
            if limit is not None and delivered >= limit:
                return
            if self._matches(tweet, lowered, locations):
                delivered += 1
                if stats is not None:
                    stats.delivered += 1
                yield tweet
            elif stats is not None:
                stats.filtered_out += 1

    def sample(self, rate: float = 0.01, seed: int = 7) -> Iterator[Tweet]:
        """statuses/sample — a deterministic pseudo-random sample."""
        import random

        rng = random.Random(seed)
        for tweet in self._tweets:
            if rng.random() < rate:
                yield tweet

    @staticmethod
    def _matches(
        tweet: Tweet, track: tuple[str, ...], locations: BoundingBox | None
    ) -> bool:
        if track:
            text = tweet.text.lower()
            if any(keyword in text for keyword in track):
                return True
        if locations is not None and tweet.coordinates is not None:
            return locations.contains(tweet.coordinates)
        return not track and locations is None
