"""Follower-BFS crawler.

Reproduces the paper's collection step: "we collect the users with crawler
that explores the every followers of the given seed user" (§III-B).  The
crawler walks the follower graph breadth-first through the simulated REST
API, paginating follower lists, surviving rate limits by waiting out the
window on the shared virtual clock, and stopping at a configured user cap
(the study stopped above 50 000 users).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, RateLimitExceededError
from repro.twitter.api import RestApi
from repro.twitter.models import TwitterUser


@dataclass(frozen=True, slots=True)
class CrawlConfig:
    """Crawler parameters.

    Attributes:
        max_users: Stop once this many distinct users are collected.
        max_api_calls: Safety valve on total follower-page requests.
        wait_on_rate_limit: Advance the virtual clock past rate-limit
            windows (True) or abort the frontier item (False).
    """

    max_users: int
    max_api_calls: int = 1_000_000
    wait_on_rate_limit: bool = True

    def __post_init__(self) -> None:
        if self.max_users <= 0:
            raise ConfigurationError("max_users must be positive")
        if self.max_api_calls <= 0:
            raise ConfigurationError("max_api_calls must be positive")


@dataclass
class CrawlResult:
    """Outcome of one crawl.

    Attributes:
        users: Collected accounts in discovery (BFS) order.
        api_calls: Follower-page requests issued.
        rate_limit_waits: Times the crawler had to wait out a window.
        simulated_duration_s: Virtual seconds the crawl took.
        frontier_exhausted: True if BFS ran out of users before the cap.
    """

    users: list[TwitterUser] = field(default_factory=list)
    api_calls: int = 0
    rate_limit_waits: int = 0
    simulated_duration_s: float = 0.0
    frontier_exhausted: bool = False

    @property
    def user_ids(self) -> list[int]:
        """Ids of collected users, discovery order."""
        return [u.user_id for u in self.users]

    def snapshot(self) -> dict[str, float]:
        """Plain-dict accounting view, registrable as an engine metrics
        source (``crawl.*`` in the run snapshot)."""
        return {
            "users": len(self.users),
            "api_calls": self.api_calls,
            "rate_limit_waits": self.rate_limit_waits,
            "simulated_duration_s": round(self.simulated_duration_s, 3),
        }


class FollowerCrawler:
    """Breadth-first follower crawler over a simulated REST API."""

    def __init__(self, api: RestApi, config: CrawlConfig):
        self._api = api
        self._config = config

    def crawl(self, seed_user_id: int) -> CrawlResult:
        """Run the BFS from ``seed_user_id``.

        The seed itself is the first collected user.  Followers are
        enumerated page by page; each newly seen id is queued for its own
        follower expansion and hydrated through the batch users/lookup
        endpoint (100 ids per call, as the real API allows) — discovery
        order is preserved in ``result.users``.
        """
        from repro.twitter.api import USER_LOOKUP_BATCH

        result = CrawlResult()
        start_s = self._api.clock.now_s

        seen: set[int] = {seed_user_id}
        queue: deque[int] = deque([seed_user_id])
        result.users.append(self._api.get_user(seed_user_id))
        pending: list[int] = []

        def flush_pending() -> None:
            while pending:
                batch = pending[:USER_LOOKUP_BATCH]
                del pending[:USER_LOOKUP_BATCH]
                result.users.extend(self._api.lookup_users(batch))

        while queue and len(seen) < self._config.max_users:
            current = queue.popleft()
            for follower_id in self._follower_ids(current, result):
                if follower_id in seen:
                    continue
                seen.add(follower_id)
                pending.append(follower_id)
                queue.append(follower_id)
                if len(seen) >= self._config.max_users:
                    break
            if len(pending) >= USER_LOOKUP_BATCH:
                flush_pending()
            if result.api_calls >= self._config.max_api_calls:
                break

        flush_pending()
        result.frontier_exhausted = not queue
        result.simulated_duration_s = self._api.clock.now_s - start_s
        return result

    def _follower_ids(self, user_id: int, result: CrawlResult) -> list[int]:
        """All follower ids of ``user_id``, following cursors and limits."""
        ids: list[int] = []
        cursor = -1
        while True:
            if result.api_calls >= self._config.max_api_calls:
                return ids
            try:
                page = self._api.get_followers(user_id, cursor=cursor)
            except RateLimitExceededError as exc:
                if not self._config.wait_on_rate_limit:
                    return ids
                result.rate_limit_waits += 1
                self._api.clock.advance(exc.retry_after_s + 1.0)
                continue
            result.api_calls += 1
            ids.extend(page.ids)
            if page.next_cursor == 0:
                return ids
            cursor = page.next_cursor
