"""Tweet generation for synthetic users.

Generates each user's tweet history over a collection window: volumes are
heavy-tailed, timestamps follow a diurnal activity curve, tweet locations
come from the user's ground-truth mobility profile, and GPS coordinates
are attached with the user's device-specific probability — reproducing the
paper's central data problem that only a tiny fraction of tweets carry
coordinates.

Tweet text mixes everyday chatter with occasional mentions of the current
place (Fig. 4 shows users naming the place their GPS points at), which the
Twitris-style summariser later picks up.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.twitter.idgen import SnowflakeGenerator
from repro.twitter.models import Tweet
from repro.twitter.population import SyntheticUser

#: Hour-of-day activity weights (local time): quiet nights, evening peak.
_HOUR_WEIGHTS = (
    1, 1, 1, 1, 1, 2, 4, 8, 10, 9, 8, 10,
    12, 10, 9, 9, 10, 11, 13, 15, 16, 14, 9, 4,
)

_CHATTER = (
    "so sleepy today",
    "what should i have for lunch",
    "this bus is always late",
    "finally weekend!!",
    "new episode was so good",
    "rainy day again",
    "coffee time",
    "studying at the library",
    "traffic is terrible tonight",
    "who else is watching the game",
    "i need a vacation",
    "monday again...",
    "best dinner in a long time",
    "can't believe this weather",
    "listening to my favorite song on repeat",
    # Korean-language chatter: the study's corpus was mostly Korean
    # ("these strings were originally written in Korean", §III-B), and
    # Hangul exercises the unicode paths in storage and tokenisation.
    "오늘 너무 피곤하다",  # so tired today
    "점심 뭐 먹지",  # what's for lunch
    "버스 또 늦네",  # bus is late again
    "드디어 주말이다!!",  # finally the weekend
    "비 오는 날 좋아",  # i like rainy days
    "커피 한 잔 하면서 휴식",  # resting with a cup of coffee
    "야근 끝나고 집에 가는 중",  # heading home after overtime
)

_PLACE_TEMPLATES = (
    "having coffee in {place}",
    "just arrived at {place}",
    "dinner with friends at {place}",
    "walking around {place} tonight",
    "the view from {place} is amazing",
    "stuck in traffic near {place}",
    "shopping in {place} today",
)


@dataclass(frozen=True, slots=True)
class CollectionWindow:
    """The simulated collection period.

    Attributes:
        start_ms: Window start, unix milliseconds.
        days: Window length in whole days.
    """

    start_ms: int
    days: int

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ConfigurationError(f"window must span at least one day, got {self.days}")
        if self.start_ms < 0:
            raise ConfigurationError("window start must be a unix-ms timestamp")

    @property
    def end_ms(self) -> int:
        """Exclusive end of the window, unix milliseconds."""
        return self.start_ms + self.days * 86_400_000

    @classmethod
    def default(cls) -> "CollectionWindow":
        """90 days starting 2011-09-01, matching the study era."""
        return cls(start_ms=1_314_835_200_000, days=90)


class TweetGenerator:
    """Generates tweets for synthetic users over a collection window.

    Args:
        window: Collection period.
        seed: Master seed; per-user streams derive from it and the user id,
            so generating users in any order yields identical tweets.
        place_mention_rate: Probability a tweet names its current place.
    """

    def __init__(
        self,
        window: CollectionWindow,
        seed: int = 7,
        place_mention_rate: float = 0.15,
    ):
        self._window = window
        self._seed = seed
        self._place_mention_rate = place_mention_rate

    @property
    def window(self) -> CollectionWindow:
        """The collection period tweets are generated in."""
        return self._window

    def tweets_for(self, synthetic: SyntheticUser) -> list[Tweet]:
        """Generate the user's full tweet history, sorted by time.

        Each user gets their own snowflake generator (worker id derived
        from the user id): a single shared generator would clamp earlier
        users' timestamps forward and assign ids in *generation* order,
        destroying the global id/time coherence that stream consumers
        (Streaming API replay, trend windows) rely on.
        """
        rng = random.Random(f"{self._seed}:{synthetic.user.user_id}")
        idgen = SnowflakeGenerator(worker_id=synthetic.user.user_id % 1024)
        expected = synthetic.tweets_per_day * self._window.days
        count = self._sample_count(expected, rng)
        timestamps = sorted(self._sample_timestamp(rng) for _ in range(count))

        tweets = []
        for ts in timestamps:
            district, point = synthetic.mobility_profile.sample_point(rng)
            has_gps = rng.random() < synthetic.gps_attach_prob
            tweets.append(
                Tweet(
                    tweet_id=idgen.next_id(ts),
                    user_id=synthetic.user.user_id,
                    created_at_ms=ts,
                    text=self._render_text(district.name, rng),
                    coordinates=point if has_gps else None,
                    true_state=district.state,
                    true_county=district.name,
                )
            )
        return tweets

    def stream(self, population: list[SyntheticUser]) -> Iterator[Tweet]:
        """All tweets of a population in global time order.

        Materialises per-user histories (they are small) and merges them;
        the global order is what the Streaming API simulator replays.
        """
        everything: list[Tweet] = []
        for synthetic in population:
            everything.extend(self.tweets_for(synthetic))
        everything.sort(key=lambda t: t.tweet_id)
        return iter(everything)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _sample_count(expected: float, rng: random.Random) -> int:
        """Draw a tweet count around ``expected`` (>= 1).

        A uniform band around the expectation keeps the heavy tail that the
        per-user lognormal rate already provides without compounding it.
        """
        low = max(1.0, expected * 0.6)
        high = max(2.0, expected * 1.4)
        return max(1, int(rng.uniform(low, high)))

    def _sample_timestamp(self, rng: random.Random) -> int:
        """Draw a posting time inside the window with a diurnal profile.

        Millisecond jitter keeps cross-user snowflake collisions (same
        millisecond, same 10-bit worker, same sequence) out of reach.
        """
        day = rng.randrange(self._window.days)
        hour = rng.choices(range(24), weights=_HOUR_WEIGHTS, k=1)[0]
        second = rng.randrange(3_600)
        millis = rng.randrange(1_000)
        return (
            self._window.start_ms
            + ((day * 24 + hour) * 3_600 + second) * 1_000
            + millis
        )

    def _render_text(self, place_name: str, rng: random.Random) -> str:
        if rng.random() < self._place_mention_rate:
            template = rng.choice(_PLACE_TEMPLATES)
            return template.format(place=place_name)
        return rng.choice(_CHATTER)
