"""Follower-graph generation.

The paper collected its Korean users "with crawler that explores the every
followers of the given seed user" (§III-B).  To give that crawler
something real to walk, this module grows a directed follower graph with
preferential attachment: each new account follows a handful of existing
accounts, preferring popular ones, plus a couple of uniformly random ones
(interest-driven follows).  The construction guarantees every account is
reachable from the seed by follower-BFS — each new node follows at least
one earlier node — so a complete crawl is possible, as it was for the
study's single connected crawl.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError, NotFoundError
from repro.twitter.models import FollowerEdge


@dataclass(frozen=True, slots=True)
class GraphConfig:
    """Parameters of the preferential-attachment follower graph.

    Attributes:
        mean_follows: Average number of accounts a new user follows.
        preferential_fraction: Share of follow choices driven by
            popularity (the rest are uniform random).
        seed: RNG seed for the wiring.
    """

    mean_follows: int = 6
    preferential_fraction: float = 0.7
    seed: int = 7

    def __post_init__(self) -> None:
        if self.mean_follows < 1:
            raise ConfigurationError("mean_follows must be >= 1")
        if not 0.0 <= self.preferential_fraction <= 1.0:
            raise ConfigurationError("preferential_fraction must be in [0, 1]")


class FollowerGraph:
    """A directed follower graph over a fixed set of user ids."""

    def __init__(self, user_ids: list[int]):
        if not user_ids:
            raise ConfigurationError("graph needs at least one user")
        self._order = list(user_ids)
        self._following: dict[int, list[int]] = {uid: [] for uid in user_ids}
        self._followers: dict[int, list[int]] = {uid: [] for uid in user_ids}

    # ---------------------------------------------------------------- access
    @property
    def user_ids(self) -> list[int]:
        """All user ids, in insertion order (index 0 is the natural seed)."""
        return list(self._order)

    @property
    def seed_user_id(self) -> int:
        """The oldest account — the crawl's natural seed."""
        return self._order[0]

    def followers_of(self, user_id: int) -> list[int]:
        """Accounts that follow ``user_id`` (crawl frontier expansion).

        Raises:
            NotFoundError: if the user is not in the graph.
        """
        try:
            return list(self._followers[user_id])
        except KeyError:
            raise NotFoundError(f"unknown user {user_id}") from None

    def following_of(self, user_id: int) -> list[int]:
        """Accounts ``user_id`` follows."""
        try:
            return list(self._following[user_id])
        except KeyError:
            raise NotFoundError(f"unknown user {user_id}") from None

    def degree(self, user_id: int) -> tuple[int, int]:
        """``(followers, friends)`` counts for ``user_id``."""
        return len(self.followers_of(user_id)), len(self.following_of(user_id))

    def edge_count(self) -> int:
        """Total number of follow edges."""
        return sum(len(v) for v in self._following.values())

    def edges(self) -> list[FollowerEdge]:
        """All edges as :class:`FollowerEdge` records."""
        return [
            FollowerEdge(follower_id=src, followee_id=dst)
            for src, dsts in self._following.items()
            for dst in dsts
        ]

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (edge u -> v means u follows v).

        For downstream graph analytics (centrality, communities) without
        re-implementing them here; the library's own pipelines never
        require networkx.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self._order)
        graph.add_edges_from(
            (src, dst) for src, dsts in self._following.items() for dst in dsts
        )
        return graph

    # --------------------------------------------------------------- mutation
    def add_edge(self, follower_id: int, followee_id: int) -> bool:
        """Add a follow edge; returns False if it already existed.

        Raises:
            NotFoundError: if either endpoint is unknown.
            ConfigurationError: on a self-follow.
        """
        if follower_id == followee_id:
            raise ConfigurationError("self-follows are not allowed")
        if follower_id not in self._following:
            raise NotFoundError(f"unknown follower {follower_id}")
        if followee_id not in self._following:
            raise NotFoundError(f"unknown followee {followee_id}")
        if followee_id in self._following[follower_id]:
            return False
        self._following[follower_id].append(followee_id)
        self._followers[followee_id].append(follower_id)
        return True

    # ---------------------------------------------------------------- build
    @classmethod
    def generate(cls, user_ids: list[int], config: GraphConfig | None = None) -> "FollowerGraph":
        """Grow a preferential-attachment follower graph over ``user_ids``.

        Users join in list order; each follows ~``mean_follows`` earlier
        users (at least one, guaranteeing seed reachability by follower
        BFS from ``user_ids[0]``).
        """
        config = config or GraphConfig()
        graph = cls(user_ids)
        rng = random.Random(config.seed)

        # repeated-nodes trick: sampling uniformly from this list is
        # sampling proportionally to (in-degree + 1).
        attachment_pool: list[int] = [user_ids[0]]
        for index in range(1, len(user_ids)):
            uid = user_ids[index]
            want = max(1, min(index, int(rng.expovariate(1.0 / config.mean_follows)) + 1))
            chosen: set[int] = set()
            attempts = 0
            while len(chosen) < want and attempts < want * 10:
                attempts += 1
                if rng.random() < config.preferential_fraction:
                    candidate = rng.choice(attachment_pool)
                else:
                    candidate = user_ids[rng.randrange(index)]
                if candidate != uid:
                    chosen.add(candidate)
            if not chosen:  # pathological RNG run; follow the seed
                chosen.add(user_ids[0])
            for followee in chosen:
                graph.add_edge(uid, followee)
                attachment_pool.append(followee)
            attachment_pool.append(uid)
        return graph
