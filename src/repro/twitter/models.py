"""Data models for synthetic Twitter users and tweets.

These mirror the fields the study consumes (paper §III-A): each user's
free-text profile location, and each tweet's optional GPS coordinates.
Ground-truth fields (home district, mobility class) are carried alongside
so experiments can validate the pipeline against what the generator
actually did — something the original study could never do with live data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.geo.point import GeoPoint


class MobilityClass(enum.Enum):
    """Ground-truth mobility archetype of a synthetic user.

    The paper speculates about exactly these behaviours (§IV): users who
    tweet mostly from their profile location, commuters who "stay outside
    for work and return home late only for sleep", and users who "stick in
    a specific place" that is not their stated location.
    """

    HOME_ANCHORED = "home_anchored"  # most tweets at the profile district
    COMMUTER = "commuter"  # workplace district dominates, home second
    WANDERER = "wanderer"  # many districts, none dominant
    RELOCATED = "relocated"  # profile says hometown; tweets never there
    FIXED_ELSEWHERE = "fixed_elsewhere"  # low mobility, but not at profile


class ProfileStyle(enum.Enum):
    """How a synthetic user filled in the profile-location field."""

    DISTRICT = "district"  # "Yangcheon-gu, Seoul" — well defined
    CITY_ONLY = "city_only"  # bare metro name — insufficient
    COUNTRY_ONLY = "country_only"  # "Korea" — insufficient
    VAGUE = "vague"  # "my home", "Earth"
    COORDINATES = "coordinates"  # raw GPS pair in the field
    MULTI = "multi"  # several locations listed
    GARBAGE = "garbage"  # unresolvable junk
    EMPTY = "empty"  # field left blank


@dataclass(frozen=True, slots=True)
class TwitterUser:
    """A synthetic Twitter user.

    Attributes:
        user_id: Numeric account id.
        screen_name: Handle without the ``@``.
        profile_location: Raw free-text location field (may be empty).
        created_at_ms: Account creation time, unix milliseconds.
        has_smartphone: Whether the user can attach GPS to tweets.
        home_state / home_county: Ground-truth residence district key.
        mobility: Ground-truth mobility archetype.
        profile_style: Ground-truth shape of the profile field.
        followers / friends: Follower-graph degree summary (filled by the
            graph generator; 0 until then).
    """

    user_id: int
    screen_name: str
    profile_location: str
    created_at_ms: int
    has_smartphone: bool
    home_state: str
    home_county: str
    mobility: MobilityClass
    profile_style: ProfileStyle
    followers: int = 0
    friends: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable dict (enums as values)."""
        return {
            "user_id": self.user_id,
            "screen_name": self.screen_name,
            "profile_location": self.profile_location,
            "created_at_ms": self.created_at_ms,
            "has_smartphone": self.has_smartphone,
            "home_state": self.home_state,
            "home_county": self.home_county,
            "mobility": self.mobility.value,
            "profile_style": self.profile_style.value,
            "followers": self.followers,
            "friends": self.friends,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TwitterUser":
        """Inverse of :meth:`to_dict`."""
        return cls(
            user_id=int(data["user_id"]),
            screen_name=str(data["screen_name"]),
            profile_location=str(data["profile_location"]),
            created_at_ms=int(data["created_at_ms"]),
            has_smartphone=bool(data["has_smartphone"]),
            home_state=str(data["home_state"]),
            home_county=str(data["home_county"]),
            mobility=MobilityClass(data["mobility"]),
            profile_style=ProfileStyle(data["profile_style"]),
            followers=int(data.get("followers", 0)),
            friends=int(data.get("friends", 0)),
        )


@dataclass(frozen=True, slots=True)
class Tweet:
    """A synthetic tweet.

    Attributes:
        tweet_id: Snowflake id (monotone in time).
        user_id: Author's account id.
        created_at_ms: Posting time, unix milliseconds.
        text: Tweet body.
        coordinates: GPS fix if posted from a smart mobile device.
        true_state / true_county: Ground-truth district the author was in
            when posting (set even when ``coordinates`` is None).
    """

    tweet_id: int
    user_id: int
    created_at_ms: int
    text: str
    coordinates: GeoPoint | None = None
    true_state: str = ""
    true_county: str = ""

    @property
    def has_gps(self) -> bool:
        """True if the tweet carries GPS coordinates."""
        return self.coordinates is not None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable dict."""
        data: dict[str, Any] = {
            "tweet_id": self.tweet_id,
            "user_id": self.user_id,
            "created_at_ms": self.created_at_ms,
            "text": self.text,
            "true_state": self.true_state,
            "true_county": self.true_county,
        }
        if self.coordinates is not None:
            data["lat"] = self.coordinates.lat
            data["lon"] = self.coordinates.lon
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Tweet":
        """Inverse of :meth:`to_dict`."""
        coordinates = None
        if "lat" in data and "lon" in data:
            coordinates = GeoPoint(float(data["lat"]), float(data["lon"]))
        return cls(
            tweet_id=int(data["tweet_id"]),
            user_id=int(data["user_id"]),
            created_at_ms=int(data["created_at_ms"]),
            text=str(data["text"]),
            coordinates=coordinates,
            true_state=str(data.get("true_state", "")),
            true_county=str(data.get("true_county", "")),
        )


@dataclass(frozen=True, slots=True)
class GeotaggedObservation:
    """One (profile district, tweet district) observation for the study.

    This is the row the grouping method consumes after reverse geocoding:
    paper Table I's ``user id # state # county # state # county`` record in
    structured form.  ``timestamp_ms`` carries the tweet's posting time so
    temporal analyses (e.g. group stability across window halves) can
    split the observation stream.
    """

    user_id: int
    profile_state: str
    profile_county: str
    tweet_state: str
    tweet_county: str
    timestamp_ms: int = 0

    def profile_key(self) -> tuple[str, str]:
        """The profile-side (state, county)."""
        return (self.profile_state, self.profile_county)

    def tweet_key(self) -> tuple[str, str]:
        """The tweet-side (state, county)."""
        return (self.tweet_state, self.tweet_county)

    @property
    def matched(self) -> bool:
        """True when the tweet was posted in the profile district."""
        return self.profile_key() == self.tweet_key()


@dataclass(frozen=True, slots=True)
class FollowerEdge:
    """A directed follower edge: ``follower`` follows ``followee``."""

    follower_id: int
    followee_id: int


@dataclass
class DatasetSummary:
    """Slide-1-style dataset summary (users / tweets / collection API)."""

    name: str
    collection_api: str
    user_count: int = 0
    tweet_count: int = 0
    geotagged_tweet_count: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable dict."""
        return {
            "name": self.name,
            "collection_api": self.collection_api,
            "user_count": self.user_count,
            "tweet_count": self.tweet_count,
            "geotagged_tweet_count": self.geotagged_tweet_count,
            **self.extra,
        }
