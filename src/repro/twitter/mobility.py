"""Mobility models: where a synthetic user posts tweets from.

The Top-k structure the paper measures is a direct consequence of user
mobility: someone who tweets mostly from home lands in Top-1, a commuter
whose workplace dominates lands in Top-2/3, and a user who moved away from
their stated hometown never produces a matched string at all (the None
group).  Each archetype in :class:`~repro.twitter.models.MobilityClass`
gets a categorical distribution over districts built here; tweet
generation samples districts (and jittered GPS points inside them) from
that distribution.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.point import GeoPoint
from repro.geo.region import District
from repro.twitter.models import MobilityClass


@dataclass(frozen=True, slots=True)
class MobilityProfile:
    """A user's ground-truth tweeting distribution over districts.

    Attributes:
        home: The district the user's profile claims (their "home").
        archetype: Mobility class the distribution was built for.
        districts: Support of the distribution.
        weights: Matching sampling weights (sum to 1).
        sample_radii_km: Per-district cap on GPS jitter, aligned with
            ``districts``.  Empty means the legacy ``0.8 * radius_km``
            cap; :class:`MobilityModel` fills it with the Voronoi-safe
            radius so a sampled fix always reverse-geocodes back to the
            district it was sampled in.
    """

    home: District
    archetype: MobilityClass
    districts: tuple[District, ...]
    weights: tuple[float, ...]
    sample_radii_km: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if len(self.districts) != len(self.weights):
            raise ConfigurationError("districts and weights must align")
        if not self.districts:
            raise ConfigurationError("mobility profile needs at least one district")
        if self.sample_radii_km and len(self.sample_radii_km) != len(self.districts):
            raise ConfigurationError("sample_radii_km must align with districts")
        total = sum(self.weights)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ConfigurationError(f"weights must sum to 1, got {total}")

    @property
    def home_weight(self) -> float:
        """Probability mass the user puts on their home district."""
        home_key = self.home.key()
        return sum(w for d, w in zip(self.districts, self.weights) if d.key() == home_key)

    def sample_district(self, rng: random.Random) -> District:
        """Draw the district for one tweet."""
        return rng.choices(self.districts, weights=self.weights, k=1)[0]

    def sample_point(self, rng: random.Random) -> tuple[District, GeoPoint]:
        """Draw a district and a GPS fix uniformly inside it.

        The radial draw is capped at the district's entry in
        ``sample_radii_km`` (falling back to 80 % of the district radius
        when unset).  The model-supplied cap never crosses the Voronoi
        boundary to the nearest other centroid, so the fix is guaranteed
        to reverse-geocode to the district it was sampled in — without
        it, a fix drawn near the edge of a district whose neighbour's
        centroid is closer than its own would flip districts and break
        the generator's ground truth (seen with Dobong-gu fixes
        resolving to the adjacent Nowon-gu).
        """
        index = rng.choices(range(len(self.districts)), weights=self.weights, k=1)[0]
        district = self.districts[index]
        if self.sample_radii_km:
            cap_km = self.sample_radii_km[index]
        else:
            cap_km = district.radius_km * 0.8
        bearing = rng.uniform(0.0, 360.0)
        # sqrt for an area-uniform radial draw inside the disc.
        distance = cap_km * math.sqrt(rng.random())
        return district, district.center.destination(bearing, distance)


class MobilityModel:
    """Builds :class:`MobilityProfile` instances per archetype.

    Args:
        gazetteer: District catalogue to roam over.
        nearby_radius_km: How far "everyday" secondary districts may be
            from home (work, shopping, friends).
        travel_radius_km: How far occasional trips reach.
    """

    def __init__(
        self,
        gazetteer: GazetteerBackend,
        nearby_radius_km: float = 45.0,
        travel_radius_km: float = 500.0,
    ):
        self._gazetteer = gazetteer
        self._nearby_radius_km = nearby_radius_km
        self._travel_radius_km = travel_radius_km
        self._safe_radius_cache: dict[tuple[str, str], float] = {}

    # ---------------------------------------------------------------- public
    def build_profile(
        self, home: District, archetype: MobilityClass, rng: random.Random
    ) -> MobilityProfile:
        """Build the tweeting distribution for ``home`` and ``archetype``."""
        builders = {
            MobilityClass.HOME_ANCHORED: self._home_anchored,
            MobilityClass.COMMUTER: self._commuter,
            MobilityClass.WANDERER: self._wanderer,
            MobilityClass.RELOCATED: self._relocated,
            MobilityClass.FIXED_ELSEWHERE: self._fixed_elsewhere,
        }
        districts, weights = builders[archetype](home, rng)
        total = sum(weights)
        normalized = tuple(w / total for w in weights)
        return MobilityProfile(
            home=home,
            archetype=archetype,
            districts=tuple(districts),
            weights=normalized,
            sample_radii_km=tuple(self._safe_radius_km(d) for d in districts),
        )

    def _safe_radius_km(self, district: District) -> float:
        """GPS-jitter cap that keeps fixes on ``district``'s side of the
        Voronoi boundary.

        Nearest-centroid reverse geocoding assigns a point to whichever
        centroid is closest, so any fix within half the distance to the
        nearest *other* centroid provably resolves back to ``district``.
        The cap is the smaller of that bound (with a float-safety margin)
        and the legacy ``0.8 * radius_km``; isolated districts (nothing
        within 200 km) keep the legacy cap, which cannot flip either.
        """
        key = district.key()
        cached = self._safe_radius_cache.get(key)
        if cached is not None:
            return cached
        cap = district.radius_km * 0.8
        for neighbour in self._gazetteer.within(district.center, 200.0):
            if neighbour.key() == key:
                continue
            gap = neighbour.center.distance_km(district.center)
            cap = min(cap, gap * 0.49)
            break  # within() is sorted by distance: first other is nearest
        self._safe_radius_cache[key] = cap
        return cap

    # ----------------------------------------------------------- archetypes
    def _home_anchored(
        self, home: District, rng: random.Random
    ) -> tuple[list[District], list[float]]:
        """Home takes most of the mass; a few nearby spots share the rest."""
        extra_count = rng.randint(1, 4)
        extras = self._pick_nearby(home, extra_count, rng)
        home_w = rng.uniform(0.55, 0.85)
        extra_ws = self._decaying_weights(len(extras), 1.0 - home_w, rng)
        return [home, *extras], [home_w, *extra_ws]

    def _commuter(
        self, home: District, rng: random.Random
    ) -> tuple[list[District], list[float]]:
        """Workplace dominates; home is the clear runner-up."""
        work_pool = self._pick_nearby(home, 4, rng)
        if not work_pool:
            # Isolated home (e.g. Jeju with a tiny gazetteer): degrade to
            # home-anchored rather than fabricate an impossible commute.
            return self._home_anchored(home, rng)
        work = work_pool[0]
        others = self._pick_nearby(home, rng.randint(0, 3), rng, exclude={work.key()})
        work_w = rng.uniform(0.40, 0.55)
        home_w = rng.uniform(0.22, 0.36)
        if len(work_pool) >= 2 and rng.random() < 0.35:
            # A second regular anchor (gym, partner's place) that can
            # outrank home, pushing the matched string to rank 3.
            second = work_pool[1]
            second_w = home_w * rng.uniform(0.8, 1.3)
            others = [second, *[d for d in others if d.key() != second.key()]]
            rest = self._decaying_weights(len(others) - 1, 0.08, rng)
            return [work, home, *others], [work_w, home_w, second_w, *rest]
        other_ws = self._decaying_weights(len(others), 1.0 - work_w - home_w, rng)
        return [work, home, *others], [work_w, home_w, *other_ws]

    def _wanderer(
        self, home: District, rng: random.Random
    ) -> tuple[list[District], list[float]]:
        """High mobility in a wide range; home is just one stop of many."""
        count = rng.randint(3, 8)
        spots = self._pick_anywhere(home, count, rng)
        districts = [home, *spots]
        # Zipf-ish weights over a shuffled order so home's rank is random.
        rng.shuffle(districts)
        weights = [1.0 / (rank + 1) ** rng.uniform(0.6, 1.1) for rank in range(len(districts))]
        return districts, weights

    def _relocated(
        self, home: District, rng: random.Random
    ) -> tuple[list[District], list[float]]:
        """Profile says hometown; actual life happens somewhere else."""
        residence_pool = self._pick_anywhere(home, 6, rng)
        residence = residence_pool[0] if residence_pool else home
        extra_count = rng.randint(0, 3)
        extras = self._pick_nearby(
            residence, extra_count, rng, exclude={home.key(), residence.key()}
        )
        res_w = rng.uniform(0.55, 0.9)
        extra_ws = self._decaying_weights(len(extras), 1.0 - res_w, rng)
        districts = [residence, *extras]
        weights = [res_w, *extra_ws]
        # Guarantee the None-group property: home never appears.
        keep = [(d, w) for d, w in zip(districts, weights) if d.key() != home.key()]
        if not keep:
            # Degenerate gazetteer with nowhere to relocate to; stay home.
            return [home], [1.0]
        return [d for d, _ in keep], [w for _, w in keep]

    def _fixed_elsewhere(
        self, home: District, rng: random.Random
    ) -> tuple[list[District], list[float]]:
        """Low mobility, but the one fixed spot is not the profile district."""
        pool = self._pick_nearby(home, 4, rng, exclude={home.key()})
        if not pool:
            pool = self._pick_anywhere(home, 2, rng)
        if not pool:
            return [home], [1.0]  # isolated home: nowhere else to be
        spot = pool[0]
        if rng.random() < 0.5 or len(pool) == 1:
            return [spot], [1.0]
        second = pool[1]
        w = rng.uniform(0.7, 0.95)
        return [spot, second], [w, 1.0 - w]

    # ------------------------------------------------------------- internals
    def _pick_nearby(
        self,
        anchor: District,
        count: int,
        rng: random.Random,
        exclude: set[tuple[str, str]] | None = None,
    ) -> list[District]:
        """Sample up to ``count`` distinct districts near ``anchor``."""
        excluded = {anchor.key()} | (exclude or set())
        pool = [
            d
            for d in self._gazetteer.within(anchor.center, self._nearby_radius_km)
            if d.key() not in excluded
        ]
        if not pool:
            return []
        weights = [d.population_weight for d in pool]
        return self._weighted_sample(pool, weights, min(count, len(pool)), rng)

    def _pick_anywhere(
        self, anchor: District, count: int, rng: random.Random
    ) -> list[District]:
        """Sample up to ``count`` distinct districts within travel range.

        Falls back to the whole catalogue for isolated anchors (a world
        city with no neighbour in range — its residents fly).
        """
        pool = [
            d
            for d in self._gazetteer.within(anchor.center, self._travel_radius_km)
            if d.key() != anchor.key()
        ]
        if not pool:
            pool = [d for d in self._gazetteer.districts if d.key() != anchor.key()]
        if not pool:
            return []
        weights = [d.population_weight for d in pool]
        return self._weighted_sample(pool, weights, min(count, len(pool)), rng)

    @staticmethod
    def _weighted_sample(
        pool: list[District],
        weights: list[float],
        count: int,
        rng: random.Random,
    ) -> list[District]:
        """Weighted sampling without replacement (small pools)."""
        chosen: list[District] = []
        pool = list(pool)
        weights = list(weights)
        for _ in range(count):
            pick = rng.choices(range(len(pool)), weights=weights, k=1)[0]
            chosen.append(pool.pop(pick))
            weights.pop(pick)
        return chosen

    @staticmethod
    def _decaying_weights(count: int, mass: float, rng: random.Random) -> list[float]:
        """Split ``mass`` across ``count`` slots with geometric decay."""
        if count == 0:
            return []
        raw = [rng.uniform(0.6, 1.0) * (0.55**i) for i in range(count)]
        total = sum(raw)
        return [mass * r / total for r in raw]
