"""Synthetic user population generation.

Builds the user base the crawler later walks: every user gets a home
district (drawn by population weight), a mobility archetype, a profile
style (how — and how badly — they filled in the free-text location field,
mirroring the paper's Fig. 3 menagerie), and device/tweeting parameters.

Mixture weights are configurable; the defaults are calibrated so the
refined study population lands near the paper's headline shape (~half of
users in Top-1/Top-2, ~30 % in None) — EXPERIMENTS.md documents the
calibration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.region import District, DistrictKind
from repro.twitter.mobility import MobilityModel, MobilityProfile
from repro.twitter.models import MobilityClass, ProfileStyle, TwitterUser

#: Default mixture over mobility archetypes (Korean dataset calibration).
DEFAULT_MOBILITY_MIX: dict[MobilityClass, float] = {
    MobilityClass.HOME_ANCHORED: 0.43,
    MobilityClass.COMMUTER: 0.21,
    MobilityClass.WANDERER: 0.10,
    MobilityClass.RELOCATED: 0.15,
    MobilityClass.FIXED_ELSEWHERE: 0.11,
}

#: Default mixture over profile styles.  Only DISTRICT (and the occasional
#: resolvable COORDINATES field) survives the paper's refinement, which is
#: why "we had to remove many users from our data collection".
DEFAULT_PROFILE_STYLE_MIX: dict[ProfileStyle, float] = {
    ProfileStyle.DISTRICT: 0.34,
    ProfileStyle.CITY_ONLY: 0.22,
    ProfileStyle.COUNTRY_ONLY: 0.08,
    ProfileStyle.VAGUE: 0.12,
    ProfileStyle.COORDINATES: 0.02,
    ProfileStyle.MULTI: 0.04,
    ProfileStyle.GARBAGE: 0.08,
    ProfileStyle.EMPTY: 0.10,
}

_SCREEN_NAME_HEADS = (
    "happy", "lucky", "sunny", "coffee", "night", "blue", "star", "cloud",
    "tiger", "rabbit", "daily", "lovely", "cool", "real", "little", "big",
)
_SCREEN_NAME_TAILS = (
    "cat", "dev", "girl", "boy", "day", "story", "note", "talk", "walker",
    "dreamer", "maker", "rider", "fan", "holic", "mind", "seoulite",
)

_VAGUE_CHOICES = (
    "my home", "Earth", "somewhere", "in my bed", "the internet", "우리집",
    "지구", "everywhere", "wonderland", "darangland :)", "Heaven", "my heart",
)
_GARBAGE_CHOICES = (
    "~*~*~", "♥♥♥", "ask me", "behind you", "s2n4x", "missing...",
    "between dreams", "404 not found", "loading...", "???",
)


@dataclass(frozen=True, slots=True)
class PopulationConfig:
    """Configuration for a synthetic population.

    Attributes:
        size: Number of users to generate.
        seed: Master seed; the whole population is deterministic in it.
        smartphone_rate: Fraction of users able to attach GPS.
        gps_attach_range: (low, high) per-user probability that a
            smartphone tweet carries GPS.  The paper found GPS tweets
            scarce (~0.2 % of the Korean corpus), so the default keeps
            attach rates low.
        mobility_mix: Mixture over mobility archetypes.
        profile_style_mix: Mixture over profile styles.
        id_offset: First user id (lets two datasets avoid id collisions).
    """

    size: int
    seed: int = 7
    smartphone_rate: float = 0.55
    gps_attach_range: tuple[float, float] = (0.02, 0.30)
    mobility_mix: dict[MobilityClass, float] = field(
        default_factory=lambda: dict(DEFAULT_MOBILITY_MIX)
    )
    profile_style_mix: dict[ProfileStyle, float] = field(
        default_factory=lambda: dict(DEFAULT_PROFILE_STYLE_MIX)
    )
    id_offset: int = 1_000

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"population size must be positive, got {self.size}")
        if not 0.0 <= self.smartphone_rate <= 1.0:
            raise ConfigurationError("smartphone_rate must be in [0, 1]")
        low, high = self.gps_attach_range
        if not 0.0 <= low <= high <= 1.0:
            raise ConfigurationError("gps_attach_range must satisfy 0 <= low <= high <= 1")
        for name, mix in (("mobility_mix", self.mobility_mix),
                          ("profile_style_mix", self.profile_style_mix)):
            total = sum(mix.values())
            if total <= 0:
                raise ConfigurationError(f"{name} weights must sum to a positive value")


@dataclass(frozen=True, slots=True)
class SyntheticUser:
    """A generated user bundled with its ground-truth generator state."""

    user: TwitterUser
    mobility_profile: MobilityProfile
    gps_attach_prob: float
    tweets_per_day: float


class ProfileTextRenderer:
    """Renders the free-text profile-location field for a (district, style)."""

    def render(self, home: District, style: ProfileStyle, rng: random.Random) -> str:
        """Produce the raw field text a user with this style would type."""
        if style is ProfileStyle.EMPTY:
            return ""
        if style is ProfileStyle.VAGUE:
            return rng.choice(_VAGUE_CHOICES)
        if style is ProfileStyle.GARBAGE:
            return rng.choice(_GARBAGE_CHOICES)
        if style is ProfileStyle.COUNTRY_ONLY:
            if home.country == "South Korea":
                return rng.choice(("Korea", "South Korea", "대한민국", "Republic of Korea"))
            return home.country
        if style is ProfileStyle.CITY_ONLY:
            if home.kind is DistrictKind.WORLD_CITY:
                # For world users the city itself is the grouping unit, so the
                # insufficient variant is the bare country.
                return home.country
            return home.state
        if style is ProfileStyle.COORDINATES:
            jitter_lat = home.center.lat + rng.uniform(-0.01, 0.01)
            jitter_lon = home.center.lon + rng.uniform(-0.01, 0.01)
            return f"{jitter_lat:.4f},{jitter_lon:.4f}"
        if style is ProfileStyle.MULTI:
            other = rng.choice(("Gold Coast Australia", "NYC", "Tokyo", "Paris", "London"))
            return f"{self._district_text(home, rng)} / {other}"
        return self._district_text(home, rng)

    @staticmethod
    def _district_text(home: District, rng: random.Random) -> str:
        """A well-formed district mention, in one of the shapes of Fig. 3."""
        if home.kind is DistrictKind.WORLD_CITY:
            variants = (
                home.name,
                f"{home.name}, {home.state}",
                f"{home.name}, {home.country}",
                home.name.lower(),
            )
        else:
            variants = (
                f"{home.name}, {home.state}",
                f"{home.state} {home.name}",
                home.name,
                f"{home.name.lower()}, {home.state.lower()}",
            )
        return rng.choice(variants)


class PopulationGenerator:
    """Generates a deterministic synthetic user population.

    Args:
        gazetteer: Districts users live in and roam over.
        config: Population parameters.
    """

    #: Account-creation window: 2009-01-01 .. 2011-06-30 (unix ms).
    _CREATED_AT_RANGE_MS = (1_230_768_000_000, 1_309_392_000_000)

    def __init__(self, gazetteer: GazetteerBackend, config: PopulationConfig):
        self._gazetteer = gazetteer
        self._config = config
        self._mobility_model = MobilityModel(gazetteer)
        self._renderer = ProfileTextRenderer()

    def generate(self) -> list[SyntheticUser]:
        """Generate the full population (deterministic in the seed)."""
        rng = random.Random(self._config.seed)
        districts = list(self._gazetteer.districts)
        district_weights = [d.population_weight for d in districts]
        mobility_classes = list(self._config.mobility_mix)
        mobility_weights = [self._config.mobility_mix[c] for c in mobility_classes]
        styles = list(self._config.profile_style_mix)
        style_weights = [self._config.profile_style_mix[s] for s in styles]

        users: list[SyntheticUser] = []
        for index in range(self._config.size):
            home = rng.choices(districts, weights=district_weights, k=1)[0]
            archetype = rng.choices(mobility_classes, weights=mobility_weights, k=1)[0]
            style = rng.choices(styles, weights=style_weights, k=1)[0]
            profile = self._mobility_model.build_profile(home, archetype, rng)

            has_smartphone = rng.random() < self._config.smartphone_rate
            low, high = self._config.gps_attach_range
            gps_attach_prob = rng.uniform(low, high) if has_smartphone else 0.0
            # Heavy-tailed activity: most users tweet a little, a few a lot.
            tweets_per_day = min(40.0, rng.lognormvariate(0.2, 1.0))

            user = TwitterUser(
                user_id=self._config.id_offset + index,
                screen_name=self._screen_name(index, rng),
                profile_location=self._renderer.render(home, style, rng),
                created_at_ms=rng.randint(*self._CREATED_AT_RANGE_MS),
                has_smartphone=has_smartphone,
                home_state=home.state,
                home_county=home.name,
                mobility=archetype,
                profile_style=style,
            )
            users.append(
                SyntheticUser(
                    user=user,
                    mobility_profile=profile,
                    gps_attach_prob=gps_attach_prob,
                    tweets_per_day=tweets_per_day,
                )
            )
        return users

    @staticmethod
    def _screen_name(index: int, rng: random.Random) -> str:
        head = rng.choice(_SCREEN_NAME_HEADS)
        tail = rng.choice(_SCREEN_NAME_TAILS)
        return f"{head}_{tail}{index}"
