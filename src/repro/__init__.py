"""repro — reproduction of Lee & Hwang (ICDE 2012 Workshops):
*A Study of the Correlation between the Spatial Attributes on Twitter*.

The library answers the paper's question — how reliable is the free-text
profile location on Twitter as a proxy for where users actually tweet? —
over fully synthetic but behaviourally faithful Twitter data, and then
applies the answer the way the paper proposes: as weight factors in
event-localisation systems.

Quick start::

    from repro import run_korean_study, render_fig7

    output = run_korean_study()
    print(render_fig7(output.study.statistics))

Subpackages: :mod:`repro.geo` (districts, geocoding), :mod:`repro.yahooapi`
(the simulated PlaceFinder), :mod:`repro.twitter` (synthetic platform),
:mod:`repro.storage` (tweet/user stores), :mod:`repro.text` (normalisation,
TF-IDF), :mod:`repro.grouping` (the paper's method), :mod:`repro.analysis`
(study + reliability weights), :mod:`repro.events` (Toretter/Twitris and
weighted localisation), :mod:`repro.datasets` and :mod:`repro.pipelines`
(builders, funnel, experiment registry), :mod:`repro.engine` (the staged
execution substrate: stages, run context, metrics, sharding), and
:mod:`repro.streaming` (live firehose ingestion with backpressure and
checkpoint/resume), and :mod:`repro.serving` (online query API over
saved studies: versioned hot-swappable snapshots, single-flight geocode
batching, admission control).
"""

from repro.analysis import (
    ReliabilityTable,
    StudyResult,
    WeightingScheme,
    render_comparison,
    render_dataset_summary,
    render_fig6,
    render_fig7,
    render_funnel,
    render_tweet_distribution,
    run_study,
)
from repro.engine import (
    EngineConfig,
    MetricsRegistry,
    RunContext,
    ShardedExecutor,
    StudyEngine,
)
from repro.errors import ReproError
from repro.grouping import (
    GroupStatistics,
    LocationString,
    TopKGroup,
    UserGrouping,
    compute_group_statistics,
    group_users,
)
from repro.pipelines import (
    EXPERIMENTS,
    run_experiment,
    run_korean_study,
    run_ladygaga_study,
)

__version__ = "1.0.0"

__all__ = [
    "EXPERIMENTS",
    "EngineConfig",
    "GroupStatistics",
    "LocationString",
    "MetricsRegistry",
    "ReliabilityTable",
    "ReproError",
    "RunContext",
    "ShardedExecutor",
    "StudyEngine",
    "StudyResult",
    "TopKGroup",
    "UserGrouping",
    "WeightingScheme",
    "__version__",
    "compute_group_statistics",
    "group_users",
    "render_comparison",
    "render_dataset_summary",
    "render_fig6",
    "render_fig7",
    "render_funnel",
    "render_tweet_distribution",
    "run_experiment",
    "run_korean_study",
    "run_ladygaga_study",
    "run_study",
]
