"""The offline ``repro geodata prepare`` pipeline.

Compiles a district catalogue into an ``RGAZ1`` artifact from either of
two sources:

* a **builtin catalogue** (``korean`` / ``world`` / ``combined``) — the
  exact district sequences and grid sizes the in-memory factories use,
  so the artifact is a drop-in, bit-identical stand-in;
* **external files** — a districts JSONL (one object per district) plus
  an optional polygons JSON carrying boundary rings.

Before packing, every district passes through the per-country
**admin-level remap hooks** registered here — the generalisation of the
paper's rule that metropolitan cities are split into their *gu* while
provinces group at the *si* level.  Hooks normalise external data to
that convention; on the builtin catalogues (already normalised) they are
no-ops by construction.

External districts JSONL, one JSON object per line::

    {"name": "Yangcheon-gu", "state": "Seoul", "country": "South Korea",
     "kind": "gu", "lat": 37.52, "lon": 126.85, "radius_km": 4.0,
     "aliases": ["yangcheon"], "population_weight": 18.0}

External polygons JSON: a list of objects, each naming a district and
its rings (outer ring first; extra rings punch holes)::

    [{"state": "Seoul", "county": "Yangcheon-gu",
      "rings": [[[37.50, 126.83], [37.55, 126.83], [37.55, 126.88]]]}]
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Sequence
from dataclasses import replace
from pathlib import Path
from typing import Any

from repro.errors import StorageError
from repro.geo.gazetteer import combined_districts
from repro.geo.polygon import BoundaryPolygon
from repro.geo.region import District, DistrictKind
from repro.geodata.artifact import write_gazetteer_artifact

#: A hook rewrites one district to the country's grouping convention.
AdminRemapHook = Callable[[District], District]

#: Grid cell sizes of the builtin catalogues (must match the factories).
BUILTIN_GRID_DEG = {"korean": 0.5, "world": 2.0, "combined": 1.0}

_ADMIN_REMAPS: dict[str, list[AdminRemapHook]] = {}


def register_admin_remap(country: str, hook: AdminRemapHook) -> None:
    """Register ``hook`` to run over every district of ``country``."""
    _ADMIN_REMAPS.setdefault(country, []).append(hook)


def admin_remaps(country: str) -> tuple[AdminRemapHook, ...]:
    """The registered hooks for ``country``, in registration order."""
    return tuple(_ADMIN_REMAPS.get(country, ()))


def apply_admin_remaps(districts: Iterable[District]) -> list[District]:
    """Run every district through its country's registered hooks."""
    normalised = []
    for district in districts:
        for hook in _ADMIN_REMAPS.get(district.country, ()):
            district = hook(district)
        normalised.append(district)
    return normalised


def korea_metro_gu_split(district: District) -> District:
    """The paper's grouping rule as a remap hook.

    Metropolitan cities are "too large and the populations are extremely
    high", so COUNTY-level units inside them group as districts (*gu*),
    not cities (*si*).  External data sometimes tags such units ``si``;
    this rewrites the kind.  The builtin catalogues already follow the
    convention, so the hook is a no-op there.
    """
    from repro.geo.korea import METROPOLITAN_STATES

    if district.state in METROPOLITAN_STATES and district.kind is DistrictKind.CITY:
        return replace(district, kind=DistrictKind.DISTRICT)
    return district


register_admin_remap("South Korea", korea_metro_gu_split)


def builtin_catalogue(name: str) -> tuple[list[District], float]:
    """The builtin district sequence and grid size for ``name``.

    Raises:
        StorageError: for a name that is not a builtin catalogue.
    """
    if name == "korean":
        from repro.geo.korea import korean_districts

        return list(korean_districts()), BUILTIN_GRID_DEG[name]
    if name == "world":
        from repro.geo.world import world_cities

        return list(world_cities()), BUILTIN_GRID_DEG[name]
    if name == "combined":
        return combined_districts(), BUILTIN_GRID_DEG[name]
    raise StorageError(
        f"unknown builtin catalogue {name!r} "
        f"(expected one of {sorted(BUILTIN_GRID_DEG)})"
    )


def load_districts_jsonl(path: str | Path) -> list[District]:
    """Parse an external districts JSONL file.

    Raises:
        StorageError: if the file is missing or any line is malformed.
    """
    target = Path(path)
    if not target.exists():
        raise StorageError(f"districts file not found: {target}")
    districts: list[District] = []
    with target.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                districts.append(
                    District(
                        name=row["name"],
                        state=row["state"],
                        country=row["country"],
                        kind=DistrictKind(row["kind"]),
                        center=_point(row["lat"], row["lon"]),
                        radius_km=float(row["radius_km"]),
                        aliases=tuple(row.get("aliases", ())),
                        population_weight=float(row.get("population_weight", 1.0)),
                    )
                )
            except Exception as exc:
                raise StorageError(
                    f"{target}:{lineno}: bad district row: {exc}"
                ) from exc
    if not districts:
        raise StorageError(f"{target} holds no districts")
    return districts


def _point(lat: Any, lon: Any):
    """Build the centroid GeoPoint (deferred import keeps this module light)."""
    from repro.geo.point import GeoPoint

    return GeoPoint(float(lat), float(lon))


def load_polygons_json(
    path: str | Path,
) -> list[tuple[tuple[str, str], BoundaryPolygon]]:
    """Parse an external polygons JSON file into keyed boundary polygons.

    Raises:
        StorageError: if the file is missing or any entry is malformed.
    """
    target = Path(path)
    if not target.exists():
        raise StorageError(f"polygons file not found: {target}")
    try:
        entries = json.loads(target.read_text(encoding="utf-8"))
        polygons = [
            (
                (entry["state"], entry["county"]),
                BoundaryPolygon(entry["rings"]),
            )
            for entry in entries
        ]
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(f"{target}: bad polygons file: {exc}") from exc
    return polygons


def prepare_artifact(
    out: str | Path,
    *,
    catalogue: str | None = None,
    districts_path: str | Path | None = None,
    polygons_path: str | Path | None = None,
    grid_deg: float | None = None,
) -> dict[str, Any]:
    """Compile an artifact from a builtin catalogue or external files.

    Exactly one of ``catalogue`` / ``districts_path`` selects the
    district source; ``polygons_path`` optionally layers boundaries on
    either.  ``grid_deg`` defaults to the builtin catalogue's grid (or
    0.5° for external data).

    Returns:
        A summary dict (source, districts, polygons, grid_deg, path) for
        the CLI to print.

    Raises:
        StorageError: on a missing/invalid source or conflicting options.
    """
    if (catalogue is None) == (districts_path is None):
        raise StorageError(
            "exactly one district source required: --catalogue or --districts"
        )
    if catalogue is not None:
        districts, default_grid = builtin_catalogue(catalogue)
        source = f"builtin:{catalogue}"
    else:
        districts = load_districts_jsonl(districts_path)  # type: ignore[arg-type]
        default_grid = 0.5
        source = f"jsonl:{Path(districts_path).name}"  # type: ignore[arg-type]
    districts = apply_admin_remaps(districts)
    polygons: Sequence[tuple[tuple[str, str], BoundaryPolygon]] = ()
    if polygons_path is not None:
        polygons = load_polygons_json(polygons_path)
    path = write_gazetteer_artifact(
        out,
        districts,
        grid_deg=grid_deg if grid_deg is not None else default_grid,
        polygons=polygons,
        source=source,
    )
    return {
        "path": str(path),
        "source": source,
        "districts": len(districts),
        "polygons": len(polygons),
        "grid_deg": grid_deg if grid_deg is not None else default_grid,
        "bytes": path.stat().st_size,
    }
