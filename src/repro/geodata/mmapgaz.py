"""MmapGazetteer: the catalogue read zero-copy out of an ``RGAZ1`` file.

Where the in-memory :class:`~repro.geo.gazetteer.Gazetteer` holds a
Python object graph, this backend holds :class:`memoryview` slices of
one read-only mmap.  Opening is O(header): no district, string, or
polygon is decoded until a query touches it, and everything decoded is
memoised.  N worker processes mapping the same artifact share a single
page-cache copy — the reason sharded runs ship a *path* to workers
instead of pickling the catalogue (see :meth:`MmapGazetteer.__reduce__`).

Query semantics are bit-identical to the in-memory backend: both derive
the entire spatial search from
:class:`~repro.geo.gazetteer.SpatialGridCore`, and the artifact stores
grid buckets, alias hits, and state members in catalogue order, so every
tie breaks the same way.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator, Sequence
from pathlib import Path
from typing import Any

from repro.errors import UnknownRegionError
from repro.geo.gazetteer import SpatialGridCore
from repro.geo.point import GeoPoint
from repro.geo.polygon import BoundaryPolygon
from repro.geo.region import BoundingBox, District, DistrictKind
from repro.geodata.artifact import open_gazetteer_artifact

_EMPTY: tuple[int, ...] = ()


class MmapGazetteer(SpatialGridCore):
    """A :class:`~repro.geo.gazetteer.GazetteerBackend` over an artifact.

    Args:
        path: An ``RGAZ1`` artifact written by
            :func:`~repro.geodata.artifact.write_gazetteer_artifact`.

    Raises:
        StorageError: if the file is missing, corrupt, or a version this
            build does not read.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._reader, self._meta = open_gazetteer_artifact(self._path)
        reader = self._reader
        self._strings = reader.strings("strings")
        self._count: int = int(self._meta["districts"])
        self._init_spatial(float(self._meta["grid_deg"]))

        self._name_ids = reader.i64("districts.name_ids")
        self._state_ids = reader.i64("districts.state_ids")
        self._country_ids = reader.i64("districts.country_ids")
        self._kind_ids = reader.i64("districts.kind_ids")
        self._lat = reader.f64("districts.lat")
        self._lon = reader.f64("districts.lon")
        self._radius = reader.f64("districts.radius_km")
        self._weight = reader.f64("districts.weight")
        self._alias_offsets = reader.i64("districts.alias_offsets")
        self._alias_ids = reader.i64("districts.alias_ids")
        self._key_order = reader.i64("keys.order")
        self._state_name_ids = reader.i64("states.name_ids")
        self._state_offsets = reader.i64("states.offsets")
        self._state_district_ids = reader.i64("states.district_ids")
        self._alias_keys = reader.strings("alias_index.keys")
        self._alias_key_offsets = reader.i64("alias_index.offsets")
        self._alias_key_ids = reader.i64("alias_index.district_ids")
        self._grid_keys = reader.i64("grid.keys")
        self._grid_offsets = reader.i64("grid.offsets")
        self._grid_ids = reader.i64("grid.district_ids")
        self._poly_district_ids = reader.i64("polygons.district_ids")
        self._poly_bbox = reader.f64("polygons.bbox")
        self._poly_ring_offsets = reader.i64("polygons.ring_offsets")
        self._ring_point_offsets = reader.i64("rings.point_offsets")
        self._ring_lat = reader.f64("rings.lat")
        self._ring_lon = reader.f64("rings.lon")

        self._district_cache: dict[int, District] = {}
        self._polygon_cache: dict[int, BoundaryPolygon] = {}
        self._districts_tuple: tuple[District, ...] | None = None
        self._states_tuple: tuple[str, ...] | None = None
        self._state_spans: dict[str, tuple[int, int]] | None = None

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[District]:
        return (self._district_at(index) for index in range(self._count))

    @property
    def path(self) -> Path:
        """The mapped artifact file."""
        return self._path

    @property
    def meta(self) -> dict[str, Any]:
        """A copy of the artifact's meta section (format, counts, grid)."""
        return dict(self._meta)

    @property
    def grid_deg(self) -> float:
        """Cell size of the spatial index in degrees."""
        return self._grid_deg

    @property
    def districts(self) -> tuple[District, ...]:
        """All districts, in catalogue order (materialised once, memoised)."""
        if self._districts_tuple is None:
            self._districts_tuple = tuple(
                self._district_at(index) for index in range(self._count)
            )
        return self._districts_tuple

    @property
    def states(self) -> tuple[str, ...]:
        """All STATE-level names, sorted."""
        if self._states_tuple is None:
            self._states_tuple = tuple(
                self._strings.lookup(sid) for sid in self._state_name_ids
            )
        return self._states_tuple

    def in_state(self, state: str) -> tuple[District, ...]:
        """Districts belonging to ``state``.

        Raises:
            UnknownRegionError: if the state is not in the catalogue.
        """
        if self._state_spans is None:
            spans: dict[str, tuple[int, int]] = {}
            for position, name in enumerate(self.states):
                spans[name] = (
                    self._state_offsets[position],
                    self._state_offsets[position + 1],
                )
            self._state_spans = spans
        span = self._state_spans.get(state)
        if span is None:
            raise UnknownRegionError(f"unknown state: {state!r}")
        return tuple(
            self._district_at(self._state_district_ids[index])
            for index in range(span[0], span[1])
        )

    # ----------------------------------------------------------------- lookup
    def get(self, state: str, county: str) -> District:
        """Exact lookup by ``(state, county)``.

        Raises:
            UnknownRegionError: if no such district exists.
        """
        district = self.find(state, county)
        if district is None:
            raise UnknownRegionError(f"unknown district: ({state!r}, {county!r})")
        return district

    def find(self, state: str, county: str) -> District | None:
        """Exact lookup returning ``None`` instead of raising.

        Binary search over ``keys.order``; only the O(log n) probed keys
        are ever decoded (and memoised by the string table).
        """
        target = (state, county)
        lo, hi = 0, self._count
        while lo < hi:
            mid = (lo + hi) // 2
            index = self._key_order[mid]
            key = (
                self._strings.lookup(self._state_ids[index]),
                self._strings.lookup(self._name_ids[index]),
            )
            if key < target:
                lo = mid + 1
            else:
                hi = mid
        if lo == self._count:
            return None
        index = self._key_order[lo]
        if (
            self._strings.lookup(self._state_ids[index]),
            self._strings.lookup(self._name_ids[index]),
        ) != target:
            return None
        return self._district_at(index)

    def lookup_alias(self, alias: str) -> tuple[District, ...]:
        """All districts matching a case-folded alias (possibly several).

        Binary search over the sorted case-folded key table; per-key hit
        lists come back in catalogue order, like the in-memory index.
        """
        query = alias.casefold().strip()
        lo, hi = 0, len(self._alias_keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._alias_keys.lookup(mid) < query:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self._alias_keys) or self._alias_keys.lookup(lo) != query:
            return ()
        return tuple(
            self._district_at(self._alias_key_ids[index])
            for index in range(
                self._alias_key_offsets[lo], self._alias_key_offsets[lo + 1]
            )
        )

    # ------------------------------------------------------- index accessors
    def _bucket(self, cell: tuple[int, int]) -> Sequence[int]:
        """District ids homed in ``cell`` — a zero-copy slice of the CSR."""
        key = cell[0] * self._lon_cells + cell[1]
        position = bisect_left(self._grid_keys, key)
        if position == len(self._grid_keys) or self._grid_keys[position] != key:
            return _EMPTY
        return self._grid_ids[
            self._grid_offsets[position] : self._grid_offsets[position + 1]
        ]

    def _district_at(self, index: int) -> District:
        """Materialise (and memoise) the district at catalogue ``index``."""
        district = self._district_cache.get(index)
        if district is None:
            lookup = self._strings.lookup
            district = District(
                name=lookup(self._name_ids[index]),
                state=lookup(self._state_ids[index]),
                country=lookup(self._country_ids[index]),
                kind=DistrictKind(lookup(self._kind_ids[index])),
                center=GeoPoint(self._lat[index], self._lon[index]),
                radius_km=self._radius[index],
                aliases=tuple(
                    lookup(self._alias_ids[position])
                    for position in range(
                        self._alias_offsets[index], self._alias_offsets[index + 1]
                    )
                ),
                population_weight=self._weight[index],
            )
            self._district_cache[index] = district
        return district

    def _center_at(self, index: int) -> GeoPoint:
        """Centroid at ``index`` — straight off the float64 columns."""
        district = self._district_cache.get(index)
        if district is not None:
            return district.center
        return GeoPoint(self._lat[index], self._lon[index])

    def _polygon_count(self) -> int:
        """Number of boundary polygons in the artifact."""
        return len(self._poly_district_ids)

    def _polygon_bbox(self, index: int) -> BoundingBox:
        """Bounding box of polygon ``index`` from the packed bbox column."""
        base = 4 * index
        return BoundingBox(
            self._poly_bbox[base],
            self._poly_bbox[base + 1],
            self._poly_bbox[base + 2],
            self._poly_bbox[base + 3],
        )

    def _polygon_district_index(self, index: int) -> int:
        """Catalogue index of the district polygon ``index`` outlines."""
        return self._poly_district_ids[index]

    def _polygon_at(self, index: int) -> BoundaryPolygon:
        """Materialise (and memoise) polygon ``index`` from the CSR rings."""
        polygon = self._polygon_cache.get(index)
        if polygon is None:
            rings = []
            for ring in range(
                self._poly_ring_offsets[index], self._poly_ring_offsets[index + 1]
            ):
                start = self._ring_point_offsets[ring]
                stop = self._ring_point_offsets[ring + 1]
                rings.append(
                    tuple(
                        (self._ring_lat[position], self._ring_lon[position])
                        for position in range(start, stop)
                    )
                )
            polygon = BoundaryPolygon(rings)
            self._polygon_cache[index] = polygon
        return polygon

    # -------------------------------------------------------------- lifecycle
    def __reduce__(self) -> tuple[Any, tuple[str]]:
        """Pickle as the artifact *path*, not the object graph.

        A sharded run's worker payload therefore carries a few dozen
        bytes; each worker re-maps the same file and the OS page cache
        holds one copy for all of them — the same trick the columnar
        grouping buffers use.
        """
        return (type(self), (str(self._path),))

    def close(self) -> None:
        """Release the underlying mapping (queries are invalid after)."""
        self._reader.close()

    def __repr__(self) -> str:
        return (
            f"MmapGazetteer({str(self._path)!r}, districts={self._count}, "
            f"polygons={self._polygon_count()})"
        )
