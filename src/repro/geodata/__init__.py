"""Offline gazetteer data pipeline and the mmap-backed catalogue.

``repro geodata prepare`` compiles districts (+ optional boundary
polygons, normalised by per-country admin remap hooks) into a versioned
``RGAZ1`` artifact; :class:`MmapGazetteer` serves it zero-copy, and
:func:`dataset_gazetteer` (driven by ``REPRO_GAZETTEER``) decides which
backend the dataset builders hand to every downstream layer.
"""

from repro.geodata.artifact import (
    GAZETTEER_FORMAT,
    GAZETTEER_FORMAT_VERSION,
    gazetteer_artifact_info,
    open_gazetteer_artifact,
    write_gazetteer_artifact,
)
from repro.geodata.mmapgaz import MmapGazetteer
from repro.geodata.prepare import (
    AdminRemapHook,
    admin_remaps,
    apply_admin_remaps,
    builtin_catalogue,
    korea_metro_gu_split,
    load_districts_jsonl,
    load_polygons_json,
    prepare_artifact,
    register_admin_remap,
)
from repro.geodata.registry import (
    GAZETTEER_KINDS,
    builtin_artifact,
    dataset_gazetteer,
    gazetteer_backend_kind,
)

__all__ = [
    "GAZETTEER_FORMAT",
    "GAZETTEER_FORMAT_VERSION",
    "GAZETTEER_KINDS",
    "AdminRemapHook",
    "MmapGazetteer",
    "admin_remaps",
    "apply_admin_remaps",
    "builtin_artifact",
    "builtin_catalogue",
    "dataset_gazetteer",
    "gazetteer_artifact_info",
    "gazetteer_backend_kind",
    "korea_metro_gu_split",
    "load_districts_jsonl",
    "load_polygons_json",
    "open_gazetteer_artifact",
    "prepare_artifact",
    "register_admin_remap",
    "write_gazetteer_artifact",
]
