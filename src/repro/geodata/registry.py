"""Backend selection: which gazetteer implementation datasets get.

``REPRO_GAZETTEER`` picks the implementation behind every dataset build:

* ``mmap`` (default) — compile the catalogue once per process into a
  temp ``RGAZ1`` artifact and serve it through
  :class:`~repro.geodata.mmapgaz.MmapGazetteer`.  Sharded runs then ship
  workers a file path instead of a pickled object graph, and all
  processes share one page-cache copy.
* ``memory`` — the classic in-memory :class:`~repro.geo.gazetteer.Gazetteer`
  object graph; the escape hatch if the artifact path misbehaves.

Both answer every query bit-identically (enforced by the equivalence
suite in ``tests/geodata/``), so the switch is purely operational.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
from pathlib import Path

from repro.errors import ConfigurationError
from repro.geo.gazetteer import Gazetteer, GazetteerBackend
from repro.geodata.mmapgaz import MmapGazetteer
from repro.geodata.prepare import builtin_catalogue, prepare_artifact

#: Accepted ``REPRO_GAZETTEER`` values.
GAZETTEER_KINDS = ("mmap", "memory")

_artifact_dir: Path | None = None
_mmap_cache: dict[str, MmapGazetteer] = {}


def gazetteer_backend_kind() -> str:
    """The backend selected by ``REPRO_GAZETTEER`` (default ``mmap``).

    Raises:
        ConfigurationError: on an unrecognised value.
    """
    kind = os.environ.get("REPRO_GAZETTEER", "").strip().lower() or "mmap"
    if kind not in GAZETTEER_KINDS:
        raise ConfigurationError(
            f"REPRO_GAZETTEER={kind!r} is not one of {GAZETTEER_KINDS}"
        )
    return kind


def _workdir() -> Path:
    """This process's artifact scratch directory (created lazily)."""
    global _artifact_dir
    if _artifact_dir is None:
        _artifact_dir = Path(tempfile.mkdtemp(prefix="repro-geodata-"))
        atexit.register(shutil.rmtree, _artifact_dir, ignore_errors=True)
    return _artifact_dir


def builtin_artifact(catalogue: str, directory: str | Path | None = None) -> Path:
    """Compile (or reuse) the artifact for a builtin ``catalogue``.

    With no ``directory`` the artifact lands in a per-process temp dir
    removed at interpreter exit; repeated calls reuse the same file.
    """
    base = Path(directory) if directory is not None else _workdir()
    path = base / f"{catalogue}.rgaz"
    if not path.exists():
        prepare_artifact(path, catalogue=catalogue)
    return path


def dataset_gazetteer(catalogue: str) -> GazetteerBackend:
    """The gazetteer backend dataset builds should use for ``catalogue``.

    ``catalogue`` is a builtin name (``korean`` / ``world`` /
    ``combined``).  Under ``mmap`` the per-process instance is cached —
    every dataset build (and every pickle of it crossing to a worker)
    maps the same artifact file.
    """
    if gazetteer_backend_kind() == "memory":
        districts, grid_deg = builtin_catalogue(catalogue)
        return Gazetteer(districts, grid_deg=grid_deg)
    cached = _mmap_cache.get(catalogue)
    if cached is None:
        cached = MmapGazetteer(builtin_artifact(catalogue))
        _mmap_cache[catalogue] = cached
    return cached
