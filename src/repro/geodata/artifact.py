"""The ``RGAZ1`` gazetteer artifact: districts packed for zero-copy mmap.

``repro geodata prepare`` compiles a district catalogue (plus optional
boundary polygons) into one file that
:class:`~repro.geodata.mmapgaz.MmapGazetteer` maps read-only.  The file
reuses the columnar ``RCOLBUF1`` section machinery
(:mod:`repro.columnar.share`) — the gazetteer payload is just a named set
of sections inside that envelope:

* ``meta`` — JSON blob carrying the ``RGAZ1`` format marker, version,
  grid geometry, and entity counts; readers refuse unknown formats and
  newer versions.
* ``strings`` — one interned table for every name, state, country, kind,
  and alias; ids are dense first-encounter order.
* ``districts.*`` — per-district columns in catalogue order: string-id
  columns (name/state/country/kind), float64 centroid/radius/weight
  columns, and a CSR alias list preserving original alias spelling.
* ``keys.order`` — district indices sorted by ``(state, name)`` for
  binary-searched exact lookup.
* ``states.*`` — distinct state string-ids sorted by name, plus a CSR
  list of member districts in catalogue order.
* ``alias_index.*`` — sorted case-folded alias keys with CSR district
  ids (catalogue order per key), binary searched at query time.
* ``grid.*`` — the spatial index: sorted packed cell keys
  (``ci * lon_cells + cj``) with CSR district-id buckets in catalogue
  order, so nearest-neighbour tie-breaks match the in-memory backend
  exactly.
* ``polygons.* / rings.*`` — the optional boundary layer: per-polygon
  district ids (ascending), bounding boxes, and CSR ring/vertex float64
  arrays.

Every column is written with the host's byte order and read back
zero-copy; ``BufferReader`` already rejects cross-endian files.
"""

from __future__ import annotations

import json
import math
from array import array
from collections import defaultdict
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.columnar.interner import StringInterner
from repro.columnar.share import BufferReader, BufferWriter
from repro.errors import StorageError, UnknownRegionError
from repro.geo.polygon import BoundaryPolygon
from repro.geo.region import District

#: Format marker stored in the artifact's meta section.
GAZETTEER_FORMAT = "RGAZ1"

#: Newest artifact version this build reads and writes.
GAZETTEER_FORMAT_VERSION = 1


def _pack_cell(ci: int, cj: int, lon_cells: int) -> int:
    """One int64 per grid cell; unique because ``0 <= cj < lon_cells``."""
    return ci * lon_cells + cj


def _csr(groups: Iterable[Sequence[int]]) -> tuple[array, array]:
    """Flatten ``groups`` into (offsets, values) int64 CSR arrays."""
    offsets = array("q", [0])
    values = array("q")
    total = 0
    for group in groups:
        values.extend(group)
        total += len(group)
        offsets.append(total)
    return offsets, values


def write_gazetteer_artifact(
    path: str | Path,
    districts: Sequence[District],
    *,
    grid_deg: float,
    polygons: Iterable[tuple[tuple[str, str], BoundaryPolygon]] = (),
    source: str = "custom",
) -> Path:
    """Compile ``districts`` (+ optional ``polygons``) into an artifact.

    Args:
        path: Destination file.
        districts: Catalogue in canonical order; ``(state, name)`` keys
            must be unique.
        grid_deg: Spatial-grid cell size in degrees — must match the
            in-memory gazetteer the artifact stands in for.
        polygons: ``((state, county), polygon)`` pairs; keys must name
            catalogue districts.
        source: Free-text provenance label recorded in the meta section.

    Returns:
        The written path.

    Raises:
        UnknownRegionError: on an empty catalogue, duplicate keys, or a
            polygon referencing an unknown district.
    """
    catalogue = tuple(districts)
    if not catalogue:
        raise UnknownRegionError("gazetteer artifact requires at least one district")
    lon_cells = max(1, round(360.0 / grid_deg))

    by_key: dict[tuple[str, str], int] = {}
    for index, district in enumerate(catalogue):
        key = district.key()
        if key in by_key:
            raise UnknownRegionError(f"duplicate district key {key}")
        by_key[key] = index

    interner = StringInterner()
    name_ids = array("q")
    state_ids = array("q")
    country_ids = array("q")
    kind_ids = array("q")
    lats = array("d")
    lons = array("d")
    radii = array("d")
    weights = array("d")
    alias_groups: list[list[int]] = []
    for district in catalogue:
        name_ids.append(interner.intern(district.name))
        state_ids.append(interner.intern(district.state))
        country_ids.append(interner.intern(district.country))
        kind_ids.append(interner.intern(district.kind.value))
        lats.append(district.center.lat)
        lons.append(district.center.lon)
        radii.append(district.radius_km)
        weights.append(district.population_weight)
        alias_groups.append([interner.intern(alias) for alias in district.aliases])
    alias_offsets, alias_ids = _csr(alias_groups)

    key_order = array(
        "q",
        sorted(range(len(catalogue)), key=lambda i: catalogue[i].key()),
    )

    state_members: dict[str, list[int]] = defaultdict(list)
    for index, district in enumerate(catalogue):
        state_members[district.state].append(index)
    state_names = sorted(state_members)
    state_name_ids = array("q", [interner.intern(name) for name in state_names])
    state_offsets, state_district_ids = _csr(
        [state_members[name] for name in state_names]
    )

    alias_index: dict[str, list[int]] = defaultdict(list)
    for index, district in enumerate(catalogue):
        for alias in district.aliases:
            alias_index[alias.casefold()].append(index)
    alias_keys = sorted(alias_index)
    alias_key_offsets, alias_key_ids = _csr(
        [alias_index[key] for key in alias_keys]
    )

    grid: dict[int, list[int]] = defaultdict(list)
    for index, district in enumerate(catalogue):
        ci = int(math.floor(district.center.lat / grid_deg))
        cj = int(math.floor(district.center.lon / grid_deg)) % lon_cells
        grid[_pack_cell(ci, cj, lon_cells)].append(index)
    grid_keys = array("q", sorted(grid))
    grid_offsets, grid_ids = _csr([grid[key] for key in grid_keys])

    poly_entries: list[tuple[int, BoundaryPolygon]] = []
    for key, polygon in polygons:
        district_index = by_key.get(tuple(key))
        if district_index is None:
            raise UnknownRegionError(
                f"polygon references unknown district {tuple(key)!r}"
            )
        poly_entries.append((district_index, polygon))
    poly_entries.sort(key=lambda entry: entry[0])
    poly_district_ids = array("q", [index for index, _ in poly_entries])
    poly_bbox = array("d")
    poly_ring_offsets = array("q", [0])
    ring_point_offsets = array("q", [0])
    ring_lats = array("d")
    ring_lons = array("d")
    ring_count = 0
    point_count = 0
    for _, polygon in poly_entries:
        box = polygon.bbox
        poly_bbox.extend((box.south, box.west, box.north, box.east))
        for ring in polygon.rings:
            for lat, lon in ring:
                ring_lats.append(lat)
                ring_lons.append(lon)
            point_count += len(ring)
            ring_point_offsets.append(point_count)
        ring_count += len(polygon.rings)
        poly_ring_offsets.append(ring_count)

    meta = {
        "format": GAZETTEER_FORMAT,
        "version": GAZETTEER_FORMAT_VERSION,
        "grid_deg": grid_deg,
        "lon_cells": lon_cells,
        "districts": len(catalogue),
        "states": len(state_names),
        "aliases": len(alias_keys),
        "grid_cells": len(grid_keys),
        "polygons": len(poly_entries),
        "rings": ring_count,
        "vertices": point_count,
        "source": source,
    }

    writer = BufferWriter()
    writer.add_blob("meta", json.dumps(meta, sort_keys=True).encode("utf-8"))
    writer.add_strings("strings", interner.to_lines())
    writer.add_i64("districts.name_ids", name_ids)
    writer.add_i64("districts.state_ids", state_ids)
    writer.add_i64("districts.country_ids", country_ids)
    writer.add_i64("districts.kind_ids", kind_ids)
    writer.add_f64("districts.lat", lats)
    writer.add_f64("districts.lon", lons)
    writer.add_f64("districts.radius_km", radii)
    writer.add_f64("districts.weight", weights)
    writer.add_i64("districts.alias_offsets", alias_offsets)
    writer.add_i64("districts.alias_ids", alias_ids)
    writer.add_i64("keys.order", key_order)
    writer.add_i64("states.name_ids", state_name_ids)
    writer.add_i64("states.offsets", state_offsets)
    writer.add_i64("states.district_ids", state_district_ids)
    writer.add_strings("alias_index.keys", alias_keys)
    writer.add_i64("alias_index.offsets", alias_key_offsets)
    writer.add_i64("alias_index.district_ids", alias_key_ids)
    writer.add_i64("grid.keys", grid_keys)
    writer.add_i64("grid.offsets", grid_offsets)
    writer.add_i64("grid.district_ids", grid_ids)
    writer.add_i64("polygons.district_ids", poly_district_ids)
    writer.add_f64("polygons.bbox", poly_bbox)
    writer.add_i64("polygons.ring_offsets", poly_ring_offsets)
    writer.add_i64("rings.point_offsets", ring_point_offsets)
    writer.add_f64("rings.lat", ring_lats)
    writer.add_f64("rings.lon", ring_lons)
    return writer.write(path)


def open_gazetteer_artifact(path: str | Path) -> tuple[BufferReader, dict[str, Any]]:
    """Map an artifact and validate its meta section.

    Returns:
        ``(reader, meta)`` — the caller owns the reader.

    Raises:
        StorageError: if the file is missing, not an ``RCOLBUF1`` buffer,
            not an ``RGAZ1`` gazetteer, or a newer version than this
            build understands.
    """
    target = Path(path)
    if not target.exists():
        raise StorageError(f"gazetteer artifact not found: {target}")
    reader = BufferReader(target)
    try:
        try:
            meta = json.loads(bytes(reader.blob("meta")))
        except (StorageError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StorageError(
                f"{target} has no readable gazetteer meta section: {exc}"
            ) from exc
        if meta.get("format") != GAZETTEER_FORMAT:
            raise StorageError(
                f"{target} is not a gazetteer artifact "
                f"(format {meta.get('format')!r}, expected {GAZETTEER_FORMAT!r})"
            )
        version = meta.get("version")
        if version != GAZETTEER_FORMAT_VERSION:
            raise StorageError(
                f"{target} is gazetteer format version {version}; this build "
                f"reads version {GAZETTEER_FORMAT_VERSION}"
            )
    except StorageError:
        reader.close()
        raise
    return reader, meta


def gazetteer_artifact_info(path: str | Path) -> dict[str, Any]:
    """Meta plus the section listing, for ``repro geodata info``.

    Raises:
        StorageError: on any of the :func:`open_gazetteer_artifact` failures.
    """
    reader, meta = open_gazetteer_artifact(path)
    try:
        info = dict(meta)
        info["path"] = str(Path(path))
        info["bytes"] = Path(path).stat().st_size
        info["sections"] = list(reader.section_names)
        return info
    finally:
        reader.close()
