"""World-city gazetteer for the streaming ("Lady Gaga") dataset.

The slides appended to the paper compare the Korean crawl against a second
dataset collected through the Streaming API on a worldwide topical keyword.
Its users are spread across major world cities, so the gazetteer here maps
the globe at city granularity: ``state`` is the country subdivision the
Yahoo API would return (US state, UK constituent country, etc.) and
``county`` is the city itself.

Coordinates are city-centre approximations; radii are generous because the
fixture population roams whole metro areas.
"""

from __future__ import annotations

from repro.geo.point import GeoPoint
from repro.geo.region import District, DistrictKind

_CITY = DistrictKind.WORLD_CITY

# (city, state/subdivision, country, lat, lon, radius_km, weight, aliases)
_ROWS: tuple[tuple[str, str, str, float, float, float, float, tuple[str, ...]], ...] = (
    ("New York", "New York", "United States", 40.713, -74.006, 20.0, 90.0, ("nyc", "new york city", "manhattan", "brooklyn")),
    ("Los Angeles", "California", "United States", 34.052, -118.244, 25.0, 70.0, ("la", "hollywood")),
    ("Chicago", "Illinois", "United States", 41.878, -87.630, 18.0, 45.0, ("chi-town",)),
    ("Houston", "Texas", "United States", 29.760, -95.370, 22.0, 35.0, ()),
    ("Dallas", "Texas", "United States", 32.777, -96.797, 20.0, 30.0, ()),
    ("Austin", "Texas", "United States", 30.267, -97.743, 15.0, 18.0, ("atx",)),
    ("Philadelphia", "Pennsylvania", "United States", 39.953, -75.164, 15.0, 28.0, ("philly",)),
    ("Phoenix", "Arizona", "United States", 33.448, -112.074, 20.0, 24.0, ()),
    ("San Francisco", "California", "United States", 37.775, -122.419, 12.0, 35.0, ("sf", "bay area")),
    ("San Diego", "California", "United States", 32.716, -117.161, 16.0, 22.0, ()),
    ("Seattle", "Washington", "United States", 47.606, -122.332, 14.0, 26.0, ()),
    ("Boston", "Massachusetts", "United States", 42.360, -71.059, 12.0, 26.0, ()),
    ("Miami", "Florida", "United States", 25.762, -80.192, 15.0, 28.0, ()),
    ("Orlando", "Florida", "United States", 28.538, -81.379, 14.0, 14.0, ()),
    ("Atlanta", "Georgia", "United States", 33.749, -84.388, 18.0, 30.0, ("atl",)),
    ("Washington", "District of Columbia", "United States", 38.907, -77.037, 14.0, 28.0, ("dc", "washington dc")),
    ("Detroit", "Michigan", "United States", 42.331, -83.046, 16.0, 16.0, ()),
    ("Minneapolis", "Minnesota", "United States", 44.978, -93.265, 14.0, 14.0, ()),
    ("Denver", "Colorado", "United States", 39.739, -104.990, 15.0, 16.0, ()),
    ("Las Vegas", "Nevada", "United States", 36.170, -115.140, 15.0, 16.0, ("vegas",)),
    ("Nashville", "Tennessee", "United States", 36.163, -86.781, 14.0, 12.0, ()),
    ("Portland", "Oregon", "United States", 45.515, -122.679, 13.0, 14.0, ("pdx",)),
    ("Toronto", "Ontario", "Canada", 43.653, -79.383, 18.0, 34.0, ()),
    ("Vancouver", "British Columbia", "Canada", 49.283, -123.121, 14.0, 16.0, ()),
    ("Montreal", "Quebec", "Canada", 45.502, -73.567, 15.0, 20.0, ()),
    ("Mexico City", "Mexico City", "Mexico", 19.433, -99.133, 22.0, 40.0, ("cdmx", "df")),
    ("Sao Paulo", "Sao Paulo", "Brazil", -23.551, -46.633, 25.0, 45.0, ("sampa",)),
    ("Rio de Janeiro", "Rio de Janeiro", "Brazil", -22.907, -43.173, 20.0, 30.0, ("rio",)),
    ("Buenos Aires", "Buenos Aires", "Argentina", -34.603, -58.382, 20.0, 26.0, ()),
    ("Santiago", "Santiago Metropolitan", "Chile", -33.449, -70.669, 18.0, 16.0, ()),
    ("Bogota", "Bogota", "Colombia", 4.711, -74.072, 18.0, 18.0, ()),
    ("London", "England", "United Kingdom", 51.507, -0.128, 20.0, 60.0, ("ldn",)),
    ("Manchester", "England", "United Kingdom", 53.481, -2.242, 12.0, 16.0, ()),
    ("Birmingham", "England", "United Kingdom", 52.486, -1.890, 12.0, 14.0, ("brum",)),
    ("Glasgow", "Scotland", "United Kingdom", 55.861, -4.250, 11.0, 10.0, ()),
    ("Dublin", "Leinster", "Ireland", 53.349, -6.260, 12.0, 12.0, ()),
    ("Paris", "Ile-de-France", "France", 48.857, 2.352, 15.0, 38.0, ()),
    ("Berlin", "Berlin", "Germany", 52.520, 13.405, 16.0, 26.0, ()),
    ("Munich", "Bavaria", "Germany", 48.135, 11.582, 12.0, 14.0, ("muenchen",)),
    ("Amsterdam", "North Holland", "Netherlands", 52.368, 4.904, 10.0, 16.0, ()),
    ("Madrid", "Community of Madrid", "Spain", 40.417, -3.703, 15.0, 24.0, ()),
    ("Barcelona", "Catalonia", "Spain", 41.387, 2.170, 12.0, 22.0, ("bcn",)),
    ("Rome", "Lazio", "Italy", 41.903, 12.496, 14.0, 18.0, ("roma",)),
    ("Milan", "Lombardy", "Italy", 45.464, 9.190, 12.0, 16.0, ("milano",)),
    ("Stockholm", "Stockholm", "Sweden", 59.329, 18.069, 12.0, 12.0, ()),
    ("Istanbul", "Istanbul", "Turkey", 41.008, 28.978, 20.0, 26.0, ()),
    ("Moscow", "Moscow", "Russia", 55.756, 37.617, 20.0, 22.0, ()),
    ("Tokyo", "Tokyo", "Japan", 35.690, 139.692, 22.0, 50.0, ()),
    ("Osaka", "Osaka", "Japan", 34.694, 135.502, 16.0, 24.0, ()),
    ("Nagoya", "Aichi", "Japan", 35.181, 136.906, 14.0, 14.0, ()),
    ("Singapore", "Singapore", "Singapore", 1.352, 103.820, 14.0, 22.0, ("sg",)),
    ("Hong Kong", "Hong Kong", "China", 22.319, 114.170, 14.0, 22.0, ("hk",)),
    ("Manila", "Metro Manila", "Philippines", 14.600, 120.984, 18.0, 34.0, ()),
    ("Jakarta", "Jakarta", "Indonesia", -6.208, 106.846, 20.0, 40.0, ("jkt",)),
    ("Bangkok", "Bangkok", "Thailand", 13.756, 100.502, 18.0, 26.0, ("bkk",)),
    ("Kuala Lumpur", "Kuala Lumpur", "Malaysia", 3.139, 101.687, 15.0, 18.0, ("kl",)),
    ("Mumbai", "Maharashtra", "India", 19.076, 72.878, 20.0, 30.0, ("bombay",)),
    ("Delhi", "Delhi", "India", 28.614, 77.209, 20.0, 28.0, ("new delhi",)),
    ("Sydney", "New South Wales", "Australia", -33.869, 151.209, 18.0, 26.0, ()),
    ("Melbourne", "Victoria", "Australia", -37.814, 144.963, 18.0, 24.0, ()),
    ("Gold Coast", "Queensland", "Australia", -28.017, 153.400, 14.0, 8.0, ("gold coast australia",)),
    ("Auckland", "Auckland", "New Zealand", -36.848, 174.763, 14.0, 10.0, ()),
    ("Seoul", "Seoul", "South Korea", 37.566, 126.978, 18.0, 20.0, ("seoul korea",)),
    ("Johannesburg", "Gauteng", "South Africa", -26.204, 28.047, 18.0, 14.0, ("joburg",)),
    ("Lagos", "Lagos", "Nigeria", 6.524, 3.379, 18.0, 16.0, ()),
    ("Cairo", "Cairo", "Egypt", 30.044, 31.236, 18.0, 16.0, ()),
)


def world_cities() -> tuple[District, ...]:
    """Build the world-city district list (fresh tuple each call)."""
    districts = []
    for city, state, country, lat, lon, radius_km, weight, extra in _ROWS:
        aliases = {city.lower()}
        aliases.update(a.lower() for a in extra)
        districts.append(
            District(
                name=city,
                state=state,
                country=country,
                kind=_CITY,
                center=GeoPoint(lat, lon),
                radius_km=radius_km,
                aliases=tuple(sorted(aliases)),
                population_weight=weight,
            )
        )
    return tuple(districts)
