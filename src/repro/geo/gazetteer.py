"""Gazetteer: the district catalogue with name and spatial indexes.

The gazetteer is the single source of truth shared by the synthetic data
generators (which scatter GPS fixes inside districts), the reverse geocoder
(which maps a fix back to a district), and the forward geocoder (which
resolves free-text profile locations).  Keeping one catalogue guarantees
the round trip "resident of X tweets near X's centroid -> reverse geocodes
to X" that the study's matched-string logic depends on.

Lookup structures:

* ``by_key`` — exact ``(state, county)`` lookup.
* ``alias index`` — lower-cased alias -> candidate districts (an alias such
  as ``"jung-gu"`` is ambiguous across metropolitan cities, so the index
  maps to a list).
* ``spatial grid`` — a uniform lat/lon grid for nearest-centroid queries;
  with a few hundred districts this keeps nearest-neighbour searches to a
  handful of candidate cells instead of a full scan.  Longitude cells wrap
  modulo the cell count, so a query at lon 179.9° sees candidates indexed
  at -179.9° — the antimeridian is an ordinary cell boundary, not an edge.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.errors import UnknownRegionError
from repro.geo.point import EARTH_RADIUS_KM, GeoPoint
from repro.geo.region import District


class Gazetteer:
    """An immutable catalogue of districts with fast lookups."""

    def __init__(self, districts: Iterable[District], grid_deg: float = 0.5):
        """Build a gazetteer over ``districts``.

        Args:
            districts: The districts to index.  ``(state, name)`` pairs must
                be unique.
            grid_deg: Cell size of the spatial index in degrees.
        """
        self._districts: tuple[District, ...] = tuple(districts)
        if not self._districts:
            raise UnknownRegionError("gazetteer requires at least one district")
        self._grid_deg = grid_deg
        # Longitude columns wrap: floor(180/g) and floor(-180/g) land in the
        # same column modulo this count, so ring expansion crosses the
        # antimeridian for free.
        self._lon_cells = max(1, round(360.0 / grid_deg))

        self._by_key: dict[tuple[str, str], District] = {}
        for district in self._districts:
            key = district.key()
            if key in self._by_key:
                raise UnknownRegionError(f"duplicate district key {key}")
            self._by_key[key] = district

        self._by_alias: dict[str, list[District]] = defaultdict(list)
        for district in self._districts:
            for alias in district.aliases:
                self._by_alias[alias].append(district)

        self._grid: dict[tuple[int, int], list[District]] = defaultdict(list)
        for district in self._districts:
            self._grid[self._cell(district.center)].append(district)

        self._states: dict[str, list[District]] = defaultdict(list)
        for district in self._districts:
            self._states[district.state].append(district)

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return len(self._districts)

    def __iter__(self) -> Iterator[District]:
        return iter(self._districts)

    @property
    def districts(self) -> tuple[District, ...]:
        """All districts, in catalogue order."""
        return self._districts

    @property
    def states(self) -> tuple[str, ...]:
        """All STATE-level names, sorted."""
        return tuple(sorted(self._states))

    def in_state(self, state: str) -> tuple[District, ...]:
        """Districts belonging to ``state``.

        Raises:
            UnknownRegionError: if the state is not in the catalogue.
        """
        if state not in self._states:
            raise UnknownRegionError(f"unknown state: {state!r}")
        return tuple(self._states[state])

    # ----------------------------------------------------------------- lookup
    def get(self, state: str, county: str) -> District:
        """Exact lookup by ``(state, county)``.

        Raises:
            UnknownRegionError: if no such district exists.
        """
        try:
            return self._by_key[(state, county)]
        except KeyError:
            raise UnknownRegionError(f"unknown district: ({state!r}, {county!r})") from None

    def find(self, state: str, county: str) -> District | None:
        """Exact lookup returning ``None`` instead of raising."""
        return self._by_key.get((state, county))

    def lookup_alias(self, alias: str) -> tuple[District, ...]:
        """All districts matching a lower-cased alias (possibly several)."""
        return tuple(self._by_alias.get(alias.lower().strip(), ()))

    # ---------------------------------------------------------------- spatial
    def _cell(self, point: GeoPoint) -> tuple[int, int]:
        return (
            int(math.floor(point.lat / self._grid_deg)),
            int(math.floor(point.lon / self._grid_deg)) % self._lon_cells,
        )

    def _shell(self, ci: int, cj: int, ring: int) -> Iterator[tuple[int, int]]:
        """Grid keys on the Chebyshev shell at ``ring`` around ``(ci, cj)``.

        O(ring) cells per shell.  Longitude offsets are taken modulo the
        column count, so once ``2*ring + 1`` exceeds it a shell revisits
        wrapped columns — callers dedupe across shells with a seen-set.
        """
        n = self._lon_cells
        if ring == 0:
            yield (ci, cj % n)
            return
        for dj in range(-ring, ring + 1):
            yield (ci - ring, (cj + dj) % n)
            yield (ci + ring, (cj + dj) % n)
        for di in range(-ring + 1, ring):
            yield (ci + di, (cj - ring) % n)
            yield (ci + di, (cj + ring) % n)

    def _candidates(
        self, point: GeoPoint, ring: int, seen: set[tuple[int, int]]
    ) -> list[District]:
        ci, cj = self._cell(point)
        found: list[District] = []
        for cell in self._shell(ci, cj, ring):
            if cell in seen:
                continue
            seen.add(cell)
            found.extend(self._grid.get(cell, ()))
        return found

    def _ring_lower_bound_km(self, point: GeoPoint, ring: int) -> float:
        """A distance every centroid beyond ``ring`` provably exceeds.

        A cell outside the scanned square is at least ``ring`` rows away in
        latitude or at least ``ring`` columns away in longitude.  The
        latitude bound is the meridian arc of ``ring`` cell heights.  The
        longitude bound is the haversine distance for a ``ring``-cell
        longitude gap, minimised over the latitudes such a cell can occupy
        (within ``ring + 1`` rows of the query); once the scanned square
        wraps the whole globe in longitude only the latitude bound applies.
        """
        g = self._grid_deg
        lat_bound = math.radians(ring * g) * EARTH_RADIUS_KM
        if 2 * ring + 1 >= self._lon_cells:
            return lat_bound
        cos_here = max(0.0, math.cos(math.radians(point.lat)))
        reach = min(90.0, abs(point.lat) + (ring + 1) * g)
        cos_far = max(0.0, math.cos(math.radians(reach)))
        half_gap = math.radians(min(180.0, ring * g)) / 2.0
        h = min(1.0, math.sqrt(cos_here * cos_far) * math.sin(half_gap))
        lon_bound = 2.0 * EARTH_RADIUS_KM * math.asin(h)
        return min(lat_bound, lon_bound)

    def nearest(self, point: GeoPoint) -> District:
        """The district whose centroid is closest to ``point``.

        Expands Chebyshev shells outwards through the grid and stops once
        the best distance so far is provably shorter than anything a
        further shell could hold (:meth:`_ring_lower_bound_km`) — exact at
        cell boundaries, near the poles, and across the antimeridian.
        """
        max_ring = int(math.ceil(360.0 / self._grid_deg)) + 2
        best: District | None = None
        best_d = math.inf
        seen: set[tuple[int, int]] = set()
        for ring in range(max_ring):
            for district in self._candidates(point, ring, seen):
                d = district.center.distance_km(point)
                if d < best_d:
                    best, best_d = district, d
            if best is not None and best_d <= self._ring_lower_bound_km(point, ring):
                break
        if best is None:  # pragma: no cover - gazetteer is never empty
            raise UnknownRegionError("nearest() on empty gazetteer")
        return best

    def nearest_within(self, point: GeoPoint, max_km: float) -> District | None:
        """Like :meth:`nearest` but ``None`` if the best match is too far."""
        district = self.nearest(point)
        if district.center.distance_km(point) > max_km:
            return None
        return district

    def within(self, point: GeoPoint, radius_km: float) -> tuple[District, ...]:
        """All districts whose centroid is within ``radius_km`` of ``point``.

        Used by event localisation to enumerate plausible witness districts.
        """
        # Ring count that covers radius_km in latitude and — widened by the
        # bounding-box asin formula, which accounts for meridian convergence
        # — in longitude; a disk touching a pole needs every column.
        arc = radius_km / EARTH_RADIUS_KM
        lat_deg = math.degrees(arc)
        cos_lat = math.cos(math.radians(point.lat))
        if abs(point.lat) + lat_deg >= 90.0 or math.sin(arc) >= cos_lat:
            lon_deg = 180.0
        else:
            lon_deg = math.degrees(math.asin(math.sin(arc) / cos_lat))
        deg = max(lat_deg, lon_deg) + self._grid_deg
        rings = int(math.ceil(deg / self._grid_deg))
        hits = []
        seen: set[tuple[int, int]] = set()
        for ring in range(rings + 1):
            for district in self._candidates(point, ring, seen):
                if district.center.distance_km(point) <= radius_km:
                    hits.append(district)
        hits.sort(key=lambda d: d.center.distance_km(point))
        return tuple(hits)

    # ---------------------------------------------------------------- factory
    @classmethod
    def korean(cls) -> "Gazetteer":
        """The Korean administrative gazetteer used by the main study."""
        from repro.geo.korea import korean_districts

        return cls(korean_districts())

    @classmethod
    def world(cls) -> "Gazetteer":
        """The world-city gazetteer used by the streaming dataset."""
        from repro.geo.world import world_cities

        return cls(world_cities(), grid_deg=2.0)

    @classmethod
    def combined(cls) -> "Gazetteer":
        """Korean districts plus world cities (minus the duplicate Seoul).

        The combined catalogue backs the Lady Gaga pipeline, whose stream
        contains both Korean and worldwide users.
        """
        from repro.geo.korea import korean_districts
        from repro.geo.world import world_cities

        districts = list(korean_districts())
        seen = {d.key() for d in districts}
        for city in world_cities():
            if city.key() not in seen and city.country != "South Korea":
                districts.append(city)
        return cls(districts, grid_deg=1.0)
