"""Gazetteer: the district catalogue with name and spatial indexes.

The gazetteer is the single source of truth shared by the synthetic data
generators (which scatter GPS fixes inside districts), the reverse geocoder
(which maps a fix back to a district), and the forward geocoder (which
resolves free-text profile locations).  Keeping one catalogue guarantees
the round trip "resident of X tweets near X's centroid -> reverse geocodes
to X" that the study's matched-string logic depends on.

Two implementations share one contract:

* :class:`Gazetteer` — the in-memory catalogue built from Python
  :class:`~repro.geo.region.District` objects (this module).
* :class:`~repro.geodata.mmapgaz.MmapGazetteer` — the same catalogue read
  zero-copy out of an ``RGAZ1`` artifact produced by
  ``repro geodata prepare``.

Both subclass :class:`SpatialGridCore`, which owns the *entire* spatial
search algorithm — cell mapping, Chebyshev shell expansion, the provable
stopping bound, tie-breaking, and point-in-polygon candidate lookup —
parameterised only by tiny index accessors.  Because the algorithm is
shared and both backends store grid buckets in catalogue order, the two
return bit-identical answers, ties included; consumers depend on the
structural :class:`GazetteerBackend` protocol rather than either class.

Lookup structures:

* ``by_key`` — exact ``(state, county)`` lookup.
* ``alias index`` — case-folded alias -> candidate districts (an alias
  such as ``"jung-gu"`` is ambiguous across metropolitan cities, so the
  index maps to a list).  ``str.casefold()`` rather than ``lower()`` so
  non-ASCII aliases (German sharp-s, Turkish dotted-I) match all their
  spellings.
* ``spatial grid`` — a uniform lat/lon grid for nearest-centroid queries;
  with a few hundred districts this keeps nearest-neighbour searches to a
  handful of candidate cells instead of a full scan.  Longitude cells wrap
  modulo the cell count, so a query at lon 179.9° sees candidates indexed
  at -179.9° — the antimeridian is an ordinary cell boundary, not an edge.
* ``polygon grid`` — optional boundary polygons bucketed by bounding box
  into the same cells, for authoritative point-in-polygon resolution.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable, Iterator, Sequence
from typing import Protocol, runtime_checkable

from repro.errors import UnknownRegionError
from repro.geo.point import EARTH_RADIUS_KM, GeoPoint
from repro.geo.polygon import BoundaryPolygon
from repro.geo.region import BoundingBox, District


@runtime_checkable
class GazetteerBackend(Protocol):
    """The catalogue contract every gazetteer consumer depends on.

    Structural: any object with these members qualifies — the in-memory
    :class:`Gazetteer` and the mmap-backed
    :class:`~repro.geodata.mmapgaz.MmapGazetteer` both do.  Implementations
    must agree bit-for-bit on every query (including nearest-neighbour
    tie-breaks), which is why both derive from :class:`SpatialGridCore`.
    """

    def __len__(self) -> int:
        """Number of districts in the catalogue."""
        ...

    def __iter__(self) -> Iterator[District]:
        """Iterate districts in catalogue order."""
        ...

    @property
    def districts(self) -> tuple[District, ...]:
        """All districts, in catalogue order."""
        ...

    @property
    def states(self) -> tuple[str, ...]:
        """All STATE-level names, sorted."""
        ...

    def in_state(self, state: str) -> tuple[District, ...]:
        """Districts belonging to ``state`` (raises on unknown states)."""
        ...

    def get(self, state: str, county: str) -> District:
        """Exact lookup by ``(state, county)`` (raises on a miss)."""
        ...

    def find(self, state: str, county: str) -> District | None:
        """Exact lookup returning ``None`` instead of raising."""
        ...

    def lookup_alias(self, alias: str) -> tuple[District, ...]:
        """All districts matching a case-folded alias (possibly several)."""
        ...

    def nearest(self, point: GeoPoint) -> District:
        """The district whose centroid is closest to ``point``."""
        ...

    def nearest_within(self, point: GeoPoint, max_km: float) -> District | None:
        """Like ``nearest`` but ``None`` if the best match is too far."""
        ...

    def within(self, point: GeoPoint, radius_km: float) -> tuple[District, ...]:
        """All districts whose centroid is within ``radius_km``, nearest first."""
        ...

    def polygon_locate(self, point: GeoPoint) -> District | None:
        """The district whose boundary polygon contains ``point``, if any."""
        ...


class SpatialGridCore:
    """The shared spatial-search algorithm behind every gazetteer backend.

    Subclasses call :meth:`_init_spatial` during construction and provide
    the index accessors below; everything else — cell mapping, shell
    expansion, the provable stopping bound, first-seen-wins tie-breaking,
    and polygon candidate lookup — lives here exactly once, so the
    in-memory and mmap backends cannot drift apart:

    * :meth:`_bucket` — district indices homed in one grid cell, in
      catalogue order (tie-breaks depend on it).
    * :meth:`_district_at` / :meth:`_center_at` — materialise a district /
      read its centroid by catalogue index.
    * :meth:`_polygon_count` / :meth:`_polygon_bbox` /
      :meth:`_polygon_district_index` / :meth:`_polygon_at` — the optional
      boundary-polygon layer, indexed ``0..count`` in ascending district
      order.
    """

    def _init_spatial(self, grid_deg: float) -> None:
        """Configure grid geometry; must run before any spatial query."""
        self._grid_deg = grid_deg
        # Longitude columns wrap: floor(180/g) and floor(-180/g) land in the
        # same column modulo this count, so ring expansion crosses the
        # antimeridian for free.
        self._lon_cells = max(1, round(360.0 / grid_deg))
        self._poly_cells: dict[tuple[int, int], tuple[int, ...]] | None = None

    # ------------------------------------------------------- index accessors
    def _bucket(self, cell: tuple[int, int]) -> Sequence[int]:
        """District indices homed in ``cell``, in catalogue order."""
        raise NotImplementedError

    def _district_at(self, index: int) -> District:
        """The district at catalogue ``index``."""
        raise NotImplementedError

    def _center_at(self, index: int) -> GeoPoint:
        """Centroid of the district at catalogue ``index``."""
        raise NotImplementedError

    def _polygon_count(self) -> int:
        """Number of boundary polygons (0 when the layer is absent)."""
        raise NotImplementedError

    def _polygon_bbox(self, index: int) -> BoundingBox:
        """Bounding box of polygon ``index``."""
        raise NotImplementedError

    def _polygon_district_index(self, index: int) -> int:
        """Catalogue index of the district polygon ``index`` outlines."""
        raise NotImplementedError

    def _polygon_at(self, index: int) -> BoundaryPolygon:
        """Materialise polygon ``index``."""
        raise NotImplementedError

    # ---------------------------------------------------------------- spatial
    def _cell(self, point: GeoPoint) -> tuple[int, int]:
        return (
            int(math.floor(point.lat / self._grid_deg)),
            int(math.floor(point.lon / self._grid_deg)) % self._lon_cells,
        )

    def _shell(self, ci: int, cj: int, ring: int) -> Iterator[tuple[int, int]]:
        """Grid keys on the Chebyshev shell at ``ring`` around ``(ci, cj)``.

        O(ring) cells per shell.  Longitude offsets are taken modulo the
        column count, so once ``2*ring + 1`` exceeds it a shell revisits
        wrapped columns — callers dedupe across shells with a seen-set.
        """
        n = self._lon_cells
        if ring == 0:
            yield (ci, cj % n)
            return
        for dj in range(-ring, ring + 1):
            yield (ci - ring, (cj + dj) % n)
            yield (ci + ring, (cj + dj) % n)
        for di in range(-ring + 1, ring):
            yield (ci + di, (cj - ring) % n)
            yield (ci + di, (cj + ring) % n)

    def _candidate_ids(
        self, point: GeoPoint, ring: int, seen: set[tuple[int, int]]
    ) -> list[int]:
        """Catalogue indices in unseen cells of shell ``ring`` around ``point``."""
        ci, cj = self._cell(point)
        found: list[int] = []
        for cell in self._shell(ci, cj, ring):
            if cell in seen:
                continue
            seen.add(cell)
            found.extend(self._bucket(cell))
        return found

    def _ring_lower_bound_km(self, point: GeoPoint, ring: int) -> float:
        """A distance every centroid beyond ``ring`` provably exceeds.

        A cell outside the scanned square is at least ``ring`` rows away in
        latitude or at least ``ring`` columns away in longitude.  The
        latitude bound is the meridian arc of ``ring`` cell heights.  The
        longitude bound is the haversine distance for a ``ring``-cell
        longitude gap, minimised over the latitudes such a cell can occupy
        (within ``ring + 1`` rows of the query); once the scanned square
        wraps the whole globe in longitude only the latitude bound applies.
        """
        g = self._grid_deg
        lat_bound = math.radians(ring * g) * EARTH_RADIUS_KM
        if 2 * ring + 1 >= self._lon_cells:
            return lat_bound
        cos_here = max(0.0, math.cos(math.radians(point.lat)))
        reach = min(90.0, abs(point.lat) + (ring + 1) * g)
        cos_far = max(0.0, math.cos(math.radians(reach)))
        half_gap = math.radians(min(180.0, ring * g)) / 2.0
        h = min(1.0, math.sqrt(cos_here * cos_far) * math.sin(half_gap))
        lon_bound = 2.0 * EARTH_RADIUS_KM * math.asin(h)
        return min(lat_bound, lon_bound)

    def nearest(self, point: GeoPoint) -> District:
        """The district whose centroid is closest to ``point``.

        Expands Chebyshev shells outwards through the grid and stops once
        the best distance so far is provably shorter than anything a
        further shell could hold (:meth:`_ring_lower_bound_km`) — exact at
        cell boundaries, near the poles, and across the antimeridian.
        Ties break to the first candidate encountered (strict ``<``), so
        identical bucket ordering across backends yields identical answers.
        """
        max_ring = int(math.ceil(360.0 / self._grid_deg)) + 2
        best = -1
        best_d = math.inf
        seen: set[tuple[int, int]] = set()
        for ring in range(max_ring):
            for index in self._candidate_ids(point, ring, seen):
                d = self._center_at(index).distance_km(point)
                if d < best_d:
                    best, best_d = index, d
            if best >= 0 and best_d <= self._ring_lower_bound_km(point, ring):
                break
        if best < 0:  # pragma: no cover - gazetteer is never empty
            raise UnknownRegionError("nearest() on empty gazetteer")
        return self._district_at(best)

    def nearest_within(self, point: GeoPoint, max_km: float) -> District | None:
        """Like :meth:`nearest` but ``None`` if the best match is too far."""
        district = self.nearest(point)
        if district.center.distance_km(point) > max_km:
            return None
        return district

    def within(self, point: GeoPoint, radius_km: float) -> tuple[District, ...]:
        """All districts whose centroid is within ``radius_km`` of ``point``.

        Used by event localisation to enumerate plausible witness districts.
        Sorted by distance; equidistant districts keep encounter order
        (stable sort over the shell scan).
        """
        # Ring count that covers radius_km in latitude and — widened by the
        # bounding-box asin formula, which accounts for meridian convergence
        # — in longitude; a disk touching a pole needs every column.
        arc = radius_km / EARTH_RADIUS_KM
        lat_deg = math.degrees(arc)
        cos_lat = math.cos(math.radians(point.lat))
        if abs(point.lat) + lat_deg >= 90.0 or math.sin(arc) >= cos_lat:
            lon_deg = 180.0
        else:
            lon_deg = math.degrees(math.asin(math.sin(arc) / cos_lat))
        deg = max(lat_deg, lon_deg) + self._grid_deg
        rings = int(math.ceil(deg / self._grid_deg))
        hits: list[tuple[int, float]] = []
        seen: set[tuple[int, int]] = set()
        for ring in range(rings + 1):
            for index in self._candidate_ids(point, ring, seen):
                d = self._center_at(index).distance_km(point)
                if d <= radius_km:
                    hits.append((index, d))
        hits.sort(key=lambda pair: pair[1])
        return tuple(self._district_at(index) for index, _ in hits)

    # --------------------------------------------------------------- polygons
    def _polygon_cells(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """Lazy cell index over polygon bounding boxes.

        Each polygon is registered in every grid cell its bbox overlaps;
        per-cell lists keep ascending polygon order, which (polygons being
        stored in ascending district order) makes overlapping claims
        resolve to the lowest catalogue index on every backend.
        """
        if self._poly_cells is None:
            cells: dict[tuple[int, int], list[int]] = defaultdict(list)
            g, n = self._grid_deg, self._lon_cells
            for index in range(self._polygon_count()):
                box = self._polygon_bbox(index)
                i0 = int(math.floor(box.south / g))
                i1 = int(math.floor(box.north / g))
                j0 = int(math.floor(box.west / g))
                j1 = int(math.floor(box.east / g))
                columns = (
                    range(n) if j1 - j0 + 1 >= n
                    else sorted({cj % n for cj in range(j0, j1 + 1)})
                )
                for ci in range(i0, i1 + 1):
                    for cj in columns:
                        cells[(ci, cj)].append(index)
            self._poly_cells = {
                cell: tuple(indices) for cell, indices in cells.items()
            }
        return self._poly_cells

    def polygon_locate(self, point: GeoPoint) -> District | None:
        """The district whose boundary polygon contains ``point``, if any.

        Authoritative where boundary data exists: a hit overrides the
        nearest-centroid heuristic.  Returns ``None`` when no polygon
        claims the point (including on catalogues with no polygon layer),
        letting resolvers fall back to :meth:`nearest`.
        """
        if self._polygon_count() == 0:
            return None
        for index in self._polygon_cells().get(self._cell(point), ()):
            if self._polygon_bbox(index).contains(point) and self._polygon_at(
                index
            ).contains(point):
                return self._district_at(self._polygon_district_index(index))
        return None


class Gazetteer(SpatialGridCore):
    """An immutable in-memory catalogue of districts with fast lookups."""

    def __init__(
        self,
        districts: Iterable[District],
        grid_deg: float = 0.5,
        polygons: Iterable[tuple[tuple[str, str], BoundaryPolygon]] = (),
    ):
        """Build a gazetteer over ``districts``.

        Args:
            districts: The districts to index.  ``(state, name)`` pairs must
                be unique.
            grid_deg: Cell size of the spatial index in degrees.
            polygons: Optional boundary layer as ``((state, county),
                polygon)`` pairs; every key must name a catalogue district.
        """
        self._districts: tuple[District, ...] = tuple(districts)
        if not self._districts:
            raise UnknownRegionError("gazetteer requires at least one district")
        self._init_spatial(grid_deg)

        self._by_key: dict[tuple[str, str], int] = {}
        for index, district in enumerate(self._districts):
            key = district.key()
            if key in self._by_key:
                raise UnknownRegionError(f"duplicate district key {key}")
            self._by_key[key] = index

        self._by_alias: dict[str, list[District]] = defaultdict(list)
        for district in self._districts:
            for alias in district.aliases:
                self._by_alias[alias.casefold()].append(district)

        self._grid: dict[tuple[int, int], list[int]] = defaultdict(list)
        for index, district in enumerate(self._districts):
            self._grid[self._cell(district.center)].append(index)

        self._states: dict[str, list[District]] = defaultdict(list)
        for district in self._districts:
            self._states[district.state].append(district)

        entries: list[tuple[int, BoundaryPolygon]] = []
        for key, polygon in polygons:
            index = self._by_key.get(tuple(key))
            if index is None:
                raise UnknownRegionError(
                    f"polygon references unknown district {tuple(key)!r}"
                )
            entries.append((index, polygon))
        entries.sort(key=lambda entry: entry[0])
        self._polygons: tuple[tuple[int, BoundaryPolygon], ...] = tuple(entries)

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return len(self._districts)

    def __iter__(self) -> Iterator[District]:
        return iter(self._districts)

    @property
    def districts(self) -> tuple[District, ...]:
        """All districts, in catalogue order."""
        return self._districts

    @property
    def states(self) -> tuple[str, ...]:
        """All STATE-level names, sorted."""
        return tuple(sorted(self._states))

    @property
    def grid_deg(self) -> float:
        """Cell size of the spatial index in degrees."""
        return self._grid_deg

    @property
    def polygons(self) -> tuple[tuple[int, BoundaryPolygon], ...]:
        """The boundary layer as ``(district index, polygon)`` pairs."""
        return self._polygons

    def in_state(self, state: str) -> tuple[District, ...]:
        """Districts belonging to ``state``.

        Raises:
            UnknownRegionError: if the state is not in the catalogue.
        """
        if state not in self._states:
            raise UnknownRegionError(f"unknown state: {state!r}")
        return tuple(self._states[state])

    # ----------------------------------------------------------------- lookup
    def get(self, state: str, county: str) -> District:
        """Exact lookup by ``(state, county)``.

        Raises:
            UnknownRegionError: if no such district exists.
        """
        try:
            return self._districts[self._by_key[(state, county)]]
        except KeyError:
            raise UnknownRegionError(f"unknown district: ({state!r}, {county!r})") from None

    def find(self, state: str, county: str) -> District | None:
        """Exact lookup returning ``None`` instead of raising."""
        index = self._by_key.get((state, county))
        return None if index is None else self._districts[index]

    def lookup_alias(self, alias: str) -> tuple[District, ...]:
        """All districts matching a case-folded alias (possibly several)."""
        return tuple(self._by_alias.get(alias.casefold().strip(), ()))

    # ------------------------------------------------------- index accessors
    def _bucket(self, cell: tuple[int, int]) -> Sequence[int]:
        """District indices homed in ``cell``, in catalogue order."""
        return self._grid.get(cell, ())

    def _district_at(self, index: int) -> District:
        """The district at catalogue ``index``."""
        return self._districts[index]

    def _center_at(self, index: int) -> GeoPoint:
        """Centroid of the district at catalogue ``index``."""
        return self._districts[index].center

    def _polygon_count(self) -> int:
        """Number of boundary polygons attached to this catalogue."""
        return len(self._polygons)

    def _polygon_bbox(self, index: int) -> BoundingBox:
        """Bounding box of polygon ``index``."""
        return self._polygons[index][1].bbox

    def _polygon_district_index(self, index: int) -> int:
        """Catalogue index of the district polygon ``index`` outlines."""
        return self._polygons[index][0]

    def _polygon_at(self, index: int) -> BoundaryPolygon:
        """The polygon at ``index``."""
        return self._polygons[index][1]

    # ---------------------------------------------------------------- factory
    @classmethod
    def korean(cls) -> "Gazetteer":
        """The Korean administrative gazetteer used by the main study."""
        from repro.geo.korea import korean_districts

        return cls(korean_districts())

    @classmethod
    def world(cls) -> "Gazetteer":
        """The world-city gazetteer used by the streaming dataset."""
        from repro.geo.world import world_cities

        return cls(world_cities(), grid_deg=2.0)

    @classmethod
    def combined(cls) -> "Gazetteer":
        """Korean districts plus world cities (minus the duplicate Seoul).

        The combined catalogue backs the Lady Gaga pipeline, whose stream
        contains both Korean and worldwide users.
        """
        return cls(combined_districts(), grid_deg=1.0)


def combined_districts() -> list[District]:
    """The combined Korean + world catalogue, in canonical order.

    Shared by :meth:`Gazetteer.combined` and the ``geodata prepare``
    pipeline so both backends index the identical district sequence.
    """
    from repro.geo.korea import korean_districts
    from repro.geo.world import world_cities

    districts = list(korean_districts())
    seen = {d.key() for d in districts}
    for city in world_cities():
        if city.key() not in seen and city.country != "South Korea":
            districts.append(city)
    return districts
