"""Gazetteer: the district catalogue with name and spatial indexes.

The gazetteer is the single source of truth shared by the synthetic data
generators (which scatter GPS fixes inside districts), the reverse geocoder
(which maps a fix back to a district), and the forward geocoder (which
resolves free-text profile locations).  Keeping one catalogue guarantees
the round trip "resident of X tweets near X's centroid -> reverse geocodes
to X" that the study's matched-string logic depends on.

Lookup structures:

* ``by_key`` — exact ``(state, county)`` lookup.
* ``alias index`` — lower-cased alias -> candidate districts (an alias such
  as ``"jung-gu"`` is ambiguous across metropolitan cities, so the index
  maps to a list).
* ``spatial grid`` — a uniform lat/lon grid for nearest-centroid queries;
  with a few hundred districts this keeps nearest-neighbour searches to a
  handful of candidate cells instead of a full scan.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.errors import UnknownRegionError
from repro.geo.point import GeoPoint
from repro.geo.region import District


class Gazetteer:
    """An immutable catalogue of districts with fast lookups."""

    def __init__(self, districts: Iterable[District], grid_deg: float = 0.5):
        """Build a gazetteer over ``districts``.

        Args:
            districts: The districts to index.  ``(state, name)`` pairs must
                be unique.
            grid_deg: Cell size of the spatial index in degrees.
        """
        self._districts: tuple[District, ...] = tuple(districts)
        if not self._districts:
            raise UnknownRegionError("gazetteer requires at least one district")
        self._grid_deg = grid_deg

        self._by_key: dict[tuple[str, str], District] = {}
        for district in self._districts:
            key = district.key()
            if key in self._by_key:
                raise UnknownRegionError(f"duplicate district key {key}")
            self._by_key[key] = district

        self._by_alias: dict[str, list[District]] = defaultdict(list)
        for district in self._districts:
            for alias in district.aliases:
                self._by_alias[alias].append(district)

        self._grid: dict[tuple[int, int], list[District]] = defaultdict(list)
        for district in self._districts:
            self._grid[self._cell(district.center)].append(district)

        self._states: dict[str, list[District]] = defaultdict(list)
        for district in self._districts:
            self._states[district.state].append(district)

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return len(self._districts)

    def __iter__(self) -> Iterator[District]:
        return iter(self._districts)

    @property
    def districts(self) -> tuple[District, ...]:
        """All districts, in catalogue order."""
        return self._districts

    @property
    def states(self) -> tuple[str, ...]:
        """All STATE-level names, sorted."""
        return tuple(sorted(self._states))

    def in_state(self, state: str) -> tuple[District, ...]:
        """Districts belonging to ``state``.

        Raises:
            UnknownRegionError: if the state is not in the catalogue.
        """
        if state not in self._states:
            raise UnknownRegionError(f"unknown state: {state!r}")
        return tuple(self._states[state])

    # ----------------------------------------------------------------- lookup
    def get(self, state: str, county: str) -> District:
        """Exact lookup by ``(state, county)``.

        Raises:
            UnknownRegionError: if no such district exists.
        """
        try:
            return self._by_key[(state, county)]
        except KeyError:
            raise UnknownRegionError(f"unknown district: ({state!r}, {county!r})") from None

    def find(self, state: str, county: str) -> District | None:
        """Exact lookup returning ``None`` instead of raising."""
        return self._by_key.get((state, county))

    def lookup_alias(self, alias: str) -> tuple[District, ...]:
        """All districts matching a lower-cased alias (possibly several)."""
        return tuple(self._by_alias.get(alias.lower().strip(), ()))

    # ---------------------------------------------------------------- spatial
    def _cell(self, point: GeoPoint) -> tuple[int, int]:
        return (
            int(math.floor(point.lat / self._grid_deg)),
            int(math.floor(point.lon / self._grid_deg)),
        )

    def _candidates(self, point: GeoPoint, ring: int) -> list[District]:
        ci, cj = self._cell(point)
        found: list[District] = []
        for di in range(-ring, ring + 1):
            for dj in range(-ring, ring + 1):
                if max(abs(di), abs(dj)) != ring:
                    continue  # only the ring's shell; inner rings already done
                found.extend(self._grid.get((ci + di, cj + dj), ()))
        return found

    def nearest(self, point: GeoPoint) -> District:
        """The district whose centroid is closest to ``point``.

        Expands the search ring outwards through the grid; once a candidate
        is found, one extra ring is scanned so a centroid just across a cell
        boundary cannot be missed.
        """
        max_ring = int(math.ceil(360.0 / self._grid_deg))
        best: District | None = None
        best_d = math.inf
        found_at: int | None = None
        for ring in range(max_ring):
            for district in self._candidates(point, ring):
                d = district.center.distance_km(point)
                if d < best_d:
                    best, best_d = district, d
            if best is not None:
                if found_at is None:
                    found_at = ring
                elif ring > found_at:
                    break  # scanned one extra shell beyond the first hit
        if best is None:  # pragma: no cover - gazetteer is never empty
            raise UnknownRegionError("nearest() on empty gazetteer")
        return best

    def nearest_within(self, point: GeoPoint, max_km: float) -> District | None:
        """Like :meth:`nearest` but ``None`` if the best match is too far."""
        district = self.nearest(point)
        if district.center.distance_km(point) > max_km:
            return None
        return district

    def within(self, point: GeoPoint, radius_km: float) -> tuple[District, ...]:
        """All districts whose centroid is within ``radius_km`` of ``point``.

        Used by event localisation to enumerate plausible witness districts.
        """
        # Ring radius in cells that safely covers radius_km at this latitude.
        deg = radius_km / 111.32 + self._grid_deg
        rings = int(math.ceil(deg / self._grid_deg))
        hits = []
        for ring in range(rings + 1):
            for district in self._candidates(point, ring):
                if district.center.distance_km(point) <= radius_km:
                    hits.append(district)
        hits.sort(key=lambda d: d.center.distance_km(point))
        return tuple(hits)

    # ---------------------------------------------------------------- factory
    @classmethod
    def korean(cls) -> "Gazetteer":
        """The Korean administrative gazetteer used by the main study."""
        from repro.geo.korea import korean_districts

        return cls(korean_districts())

    @classmethod
    def world(cls) -> "Gazetteer":
        """The world-city gazetteer used by the streaming dataset."""
        from repro.geo.world import world_cities

        return cls(world_cities(), grid_deg=2.0)

    @classmethod
    def combined(cls) -> "Gazetteer":
        """Korean districts plus world cities (minus the duplicate Seoul).

        The combined catalogue backs the Lady Gaga pipeline, whose stream
        contains both Korean and worldwide users.
        """
        from repro.geo.korea import korean_districts
        from repro.geo.world import world_cities

        districts = list(korean_districts())
        seen = {d.key() for d in districts}
        for city in world_cities():
            if city.key() not in seen and city.country != "South Korea":
                districts.append(city)
        return cls(districts, grid_deg=1.0)
