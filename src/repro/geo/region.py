"""Administrative-region model used by the gazetteer.

The paper groups locations by Korean administrative districts: provinces
(*-do*) and metropolitan cities at the top level (the Yahoo API's
``<state>``), and cities (*-si*) / districts (*-gu*) / counties (*-gun*)
below them (the API's ``<county>``).  Metropolitan cities are "too large
and the populations are extremely high", so the paper splits them into
their districts; ordinary provinces are grouped at the city level.

A :class:`District` is modelled as a centroid plus an effective radius.
That is coarse compared to true polygon boundaries, but reverse geocoding
in this reproduction assigns a point to the *nearest* district centroid
(weighted by radius), which reproduces the only property the study needs:
a deterministic point -> (state, county) mapping consistent with the
generator that scatters synthetic GPS fixes around those same centroids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import InvalidCoordinateError
from repro.geo.point import GeoPoint


class RegionLevel(enum.Enum):
    """Administrative level of a region, mirroring the Yahoo response."""

    COUNTRY = "country"
    STATE = "state"  # province (-do) or metropolitan city
    COUNTY = "county"  # city (-si), district (-gu), or county (-gun)
    TOWN = "town"  # neighbourhood (-dong); finest level, informational only


class DistrictKind(enum.Enum):
    """Kind of COUNTY-level unit; drives grouping granularity decisions."""

    CITY = "si"  # city within a province
    DISTRICT = "gu"  # district within a metropolitan city
    COUNTY = "gun"  # rural county
    WORLD_CITY = "city"  # non-Korean city (Lady Gaga dataset)


@dataclass(frozen=True, slots=True)
class AdminPath:
    """The (country, state, county, town) tuple the Yahoo API returns.

    ``town`` is optional; the study only consumes ``state`` and ``county``.
    """

    country: str
    state: str
    county: str
    town: str = ""

    def key(self) -> tuple[str, str]:
        """The (state, county) pair the grouping method operates on."""
        return (self.state, self.county)

    def __str__(self) -> str:
        parts = [self.country, self.state, self.county]
        if self.town:
            parts.append(self.town)
        return " / ".join(parts)


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned lat/lon bounding box (no antimeridian crossing)."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south > self.north:
            raise InvalidCoordinateError(f"south {self.south} > north {self.north}")
        if self.west > self.east:
            raise InvalidCoordinateError(f"west {self.west} > east {self.east}")

    def contains(self, point: GeoPoint) -> bool:
        """Return True if ``point`` lies inside (inclusive) the box."""
        return self.south <= point.lat <= self.north and self.west <= point.lon <= self.east

    def center(self) -> GeoPoint:
        """Centre of the box."""
        return GeoPoint((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    def expanded(self, margin_deg: float) -> "BoundingBox":
        """Return a copy grown by ``margin_deg`` on every side (clamped)."""
        return BoundingBox(
            max(-90.0, self.south - margin_deg),
            max(-180.0, self.west - margin_deg),
            min(90.0, self.north + margin_deg),
            min(180.0, self.east + margin_deg),
        )

    @classmethod
    def around(cls, center: GeoPoint, half_side_km: float) -> "BoundingBox":
        """Build a box of roughly ``2 * half_side_km`` per side around a point."""
        import math

        dlat = half_side_km / 111.32
        dlon = half_side_km / (111.32 * max(0.01, math.cos(math.radians(center.lat))))
        return cls(
            max(-90.0, center.lat - dlat),
            max(-180.0, center.lon - dlon),
            min(90.0, center.lat + dlat),
            min(180.0, center.lon + dlon),
        )


@dataclass(frozen=True, slots=True)
class District:
    """A COUNTY-level administrative unit known to the gazetteer.

    Attributes:
        name: Canonical romanised name (e.g. ``"Yangcheon-gu"``).
        state: Name of the parent STATE-level unit (e.g. ``"Seoul"``).
        country: Country name (``"South Korea"`` for the Korean gazetteer).
        kind: Whether this is a -si, -gu, -gun, or a world city.
        center: Approximate centroid of the unit.
        radius_km: Effective radius; synthetic GPS fixes for residents are
            scattered within it and reverse geocoding treats it as the
            district's size prior.
        aliases: Alternative spellings users type in profiles (lower-cased
            matching), e.g. ``("yangcheon", "yangchun-gu")``.
        population_weight: Relative sampling weight when drawing residents.
    """

    name: str
    state: str
    country: str
    kind: DistrictKind
    center: GeoPoint
    radius_km: float
    aliases: tuple[str, ...] = field(default=())
    population_weight: float = 1.0

    def admin_path(self, town: str = "") -> AdminPath:
        """The Yahoo-style admin path for this district."""
        return AdminPath(country=self.country, state=self.state, county=self.name, town=town)

    def key(self) -> tuple[str, str]:
        """The (state, county) grouping key."""
        return (self.state, self.name)

    def contains(self, point: GeoPoint, slack: float = 1.0) -> bool:
        """True if ``point`` is within ``slack * radius_km`` of the centroid."""
        return self.center.distance_km(point) <= self.radius_km * slack
