"""Boundary polygons: authoritative district outlines.

A :class:`BoundaryPolygon` is one or more closed rings of ``(lat, lon)``
vertices with a precomputed bounding box.  Containment uses the even-odd
(ray casting) rule across *all* rings, so a polygon's second ring punches
a hole in its first — the standard GeoJSON-style multipolygon-with-holes
reading, flattened.

Geometry is evaluated on the plate carrée plane (latitude and longitude
treated as planar y/x).  That is exact for the decision this repository
needs — "which administrative district is this GPS fix inside" — because
administrative boundaries are themselves defined by their surveyed
vertex coordinates, not by great-circle edges.  Two documented limits:

* Rings must not cross the antimeridian; split such shapes into one ring
  per side (the same rule :class:`~repro.geo.region.BoundingBox` imposes).
* Points exactly *on* a boundary edge may fall on either side; resolvers
  treat a miss as "no polygon claims this point" and fall back to
  nearest-centroid, so boundary ties degrade gracefully.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import InvalidCoordinateError
from repro.geo.point import GeoPoint
from repro.geo.region import BoundingBox

#: One closed ring: a tuple of (lat, lon) vertices; the closing edge back
#: to the first vertex is implicit.
Ring = tuple[tuple[float, float], ...]


def _ring_crossings(ring: Ring, lat: float, lon: float) -> bool:
    """Parity of eastward ray crossings from ``(lat, lon)`` through ``ring``."""
    inside = False
    j = len(ring) - 1
    for i in range(len(ring)):
        lat_i, lon_i = ring[i]
        lat_j, lon_j = ring[j]
        if (lat_i > lat) != (lat_j > lat):
            lon_at = lon_i + (lat - lat_i) * (lon_j - lon_i) / (lat_j - lat_i)
            if lon < lon_at:
                inside = not inside
        j = i
    return inside


class BoundaryPolygon:
    """An immutable polygon (outer ring + optional holes) with a bbox.

    Attributes:
        rings: The validated vertex rings, outer ring first by convention.
        bbox: Axis-aligned bounding box over every vertex, used as the
            fast-reject test before exact containment.
    """

    __slots__ = ("rings", "bbox")

    def __init__(self, rings: Iterable[Iterable[tuple[float, float]]]):
        """Validate and freeze ``rings``.

        Raises:
            InvalidCoordinateError: on an empty polygon, a ring with fewer
                than three vertices, or a vertex outside lat/lon range.
        """
        frozen: list[Ring] = []
        for ring in rings:
            vertices = tuple((float(lat), float(lon)) for lat, lon in ring)
            if len(vertices) < 3:
                raise InvalidCoordinateError(
                    f"polygon ring needs >= 3 vertices, got {len(vertices)}"
                )
            for lat, lon in vertices:
                if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
                    raise InvalidCoordinateError(
                        f"polygon vertex out of range: ({lat}, {lon})"
                    )
            frozen.append(vertices)
        if not frozen:
            raise InvalidCoordinateError("polygon requires at least one ring")
        self.rings: tuple[Ring, ...] = tuple(frozen)
        lats = [lat for ring in self.rings for lat, _ in ring]
        lons = [lon for ring in self.rings for _, lon in ring]
        self.bbox = BoundingBox(min(lats), min(lons), max(lats), max(lons))

    def contains(self, point: GeoPoint) -> bool:
        """Even-odd containment test with a bounding-box fast reject."""
        if not self.bbox.contains(point):
            return False
        inside = False
        for ring in self.rings:
            if _ring_crossings(ring, point.lat, point.lon):
                inside = not inside
        return inside

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundaryPolygon):
            return NotImplemented
        return self.rings == other.rings

    def __hash__(self) -> int:
        return hash(self.rings)

    def __repr__(self) -> str:
        total = sum(len(ring) for ring in self.rings)
        return f"BoundaryPolygon(rings={len(self.rings)}, vertices={total})"
