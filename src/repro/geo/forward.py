"""Forward geocoding: free-text profile locations -> districts.

Implements the "choose well-defined locations from the user profiles"
step (paper §III-B).  A profile field can resolve cleanly, or fall into
one of the failure classes the paper removed from its study population:

* **vague** — names no place ("my home", "Earth");
* **country-only / state-only** — a real place but too coarse to group by
  district ("Korea", bare "Seoul");
* **ambiguous** — several resolvable locations in one field (the paper's
  Fig. 3 example listing both Gold Coast and a Seoul district), or a
  district name shared by several cities with no disambiguating city;
* **unresolved** — informative-looking text the gazetteer does not know.

Coordinates embedded in the field are honoured by reverse geocoding them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geo.gazetteer import GazetteerBackend
from repro.geo.korea import STATE_ALIASES
from repro.geo.point import GeoPoint
from repro.geo.region import District
from repro.text.normalize import strip_punctuation
from repro.text.profile_parser import ProfileShape, parse_profile_location
from repro.text.tokenize import ngrams
from repro.text.vague import is_country_only, is_vague


class GeocodeStatus(enum.Enum):
    """Outcome of resolving one profile-location field."""

    RESOLVED = "resolved"
    EMPTY = "empty"
    VAGUE = "vague"
    COUNTRY_ONLY = "country_only"
    STATE_ONLY = "state_only"
    AMBIGUOUS = "ambiguous"
    UNRESOLVED = "unresolved"


#: Statuses the paper treats as "well-defined" profile locations.
WELL_DEFINED = frozenset({GeocodeStatus.RESOLVED})


@dataclass(frozen=True, slots=True)
class ForwardGeocodeResult:
    """Result of forward-geocoding a profile-location field.

    Attributes:
        status: Outcome classification.
        district: Resolved district when ``status`` is RESOLVED.
        candidates: Distinct candidate districts seen while resolving
            (useful diagnostics for AMBIGUOUS fields).
        matched_text: The alias or phrase that produced the match.
    """

    status: GeocodeStatus
    district: District | None = None
    candidates: tuple[District, ...] = ()
    matched_text: str = ""

    @property
    def is_well_defined(self) -> bool:
        """True if the paper's refinement would keep this profile."""
        return self.status in WELL_DEFINED


class TextGeocoder:
    """Resolves free-text location fields against a gazetteer."""

    def __init__(self, gazetteer: GazetteerBackend):
        self._gazetteer = gazetteer
        # State-name lookup: canonical gazetteer states plus romanisation
        # aliases for the Korean ones.
        self._state_names: dict[str, str] = {s.lower(): s for s in gazetteer.states}
        for alias, canonical in STATE_ALIASES.items():
            if canonical in gazetteer.states:
                self._state_names[alias] = canonical

    @property
    def gazetteer(self) -> GazetteerBackend:
        """The underlying district catalogue."""
        return self._gazetteer

    # ------------------------------------------------------------------ api
    def geocode(self, raw: str) -> ForwardGeocodeResult:
        """Resolve one raw profile-location field."""
        parsed = parse_profile_location(raw)

        if parsed.shape is ProfileShape.EMPTY:
            return ForwardGeocodeResult(status=GeocodeStatus.EMPTY)

        if parsed.shape is ProfileShape.COORDINATES:
            assert parsed.coordinates is not None
            lat, lon = parsed.coordinates
            district = self._gazetteer.nearest_within(GeoPoint(lat, lon), max_km=150.0)
            if district is None:
                return ForwardGeocodeResult(status=GeocodeStatus.UNRESOLVED)
            return ForwardGeocodeResult(
                status=GeocodeStatus.RESOLVED,
                district=district,
                candidates=(district,),
                matched_text=f"{lat},{lon}",
            )

        if parsed.shape is ProfileShape.MULTI:
            return self._geocode_multi(parsed.phrases)

        # SINGLE or ADDRESS: one phrase to resolve.
        return self._geocode_phrase(parsed.phrases[0])

    # -------------------------------------------------------------- internals
    def _geocode_multi(self, phrases: tuple[str, ...]) -> ForwardGeocodeResult:
        """Several listed locations: resolvable in >1 place -> ambiguous."""
        resolutions = []
        for phrase in phrases:
            result = self._geocode_phrase(phrase)
            if result.status is GeocodeStatus.RESOLVED:
                resolutions.append(result)
        distinct = {r.district.key() for r in resolutions if r.district is not None}
        if len(distinct) == 1:
            return resolutions[0]
        if len(distinct) > 1:
            candidates = tuple(r.district for r in resolutions if r.district is not None)
            return ForwardGeocodeResult(
                status=GeocodeStatus.AMBIGUOUS, candidates=candidates
            )
        return ForwardGeocodeResult(status=GeocodeStatus.UNRESOLVED)

    def _geocode_phrase(self, phrase: str) -> ForwardGeocodeResult:
        """Resolve a single normalised phrase."""
        if is_vague(phrase):
            return ForwardGeocodeResult(status=GeocodeStatus.VAGUE)
        if is_country_only(phrase):
            return ForwardGeocodeResult(status=GeocodeStatus.COUNTRY_ONLY)

        cleaned = strip_punctuation(phrase)
        tokens = cleaned.split()
        if not tokens:
            return ForwardGeocodeResult(status=GeocodeStatus.VAGUE)

        # A field that is exactly a STATE-level name is insufficient, even
        # when the name doubles as a district alias elsewhere ("Gwangju"
        # is both a metropolitan city and a Gyeonggi-do city).  Exception:
        # single-city states in the world gazetteer ("Tokyo" the city IS
        # the grouping unit of "Tokyo" the state), where the bare name
        # resolves to that city.
        exact_state = self._state_names.get(cleaned)
        if exact_state is not None:
            own_city = [
                d for d in self._gazetteer.lookup_alias(cleaned) if d.state == exact_state
            ]
            if len(own_city) == 1:
                district = own_city[0]
                return ForwardGeocodeResult(
                    status=GeocodeStatus.RESOLVED,
                    district=district,
                    candidates=(district,),
                    matched_text=cleaned,
                )
            return ForwardGeocodeResult(status=GeocodeStatus.STATE_ONLY)

        mentioned_state = self._mentioned_state(tokens)
        candidates = self._candidate_districts(tokens)

        if not candidates:
            if mentioned_state is not None:
                return ForwardGeocodeResult(status=GeocodeStatus.STATE_ONLY)
            return ForwardGeocodeResult(status=GeocodeStatus.UNRESOLVED)

        if mentioned_state is not None:
            narrowed = [d for d in candidates if d.state == mentioned_state]
            if narrowed:
                candidates = narrowed

        distinct = {d.key(): d for d in candidates}
        if len(distinct) == 1:
            district = next(iter(distinct.values()))
            return ForwardGeocodeResult(
                status=GeocodeStatus.RESOLVED,
                district=district,
                candidates=(district,),
                matched_text=cleaned,
            )
        return ForwardGeocodeResult(
            status=GeocodeStatus.AMBIGUOUS,
            candidates=tuple(distinct.values()),
            matched_text=cleaned,
        )

    def _mentioned_state(self, tokens: list[str]) -> str | None:
        """The STATE-level name mentioned in the phrase, if any.

        Scans longest n-grams first so "gyeonggi-do" beats "gyeonggi".
        """
        for n in (3, 2, 1):
            for gram in ngrams(tokens, n):
                name = self._state_names.get(" ".join(gram))
                if name is not None:
                    return name
        return None

    def _candidate_districts(self, tokens: list[str]) -> list[District]:
        """Districts whose alias matches any n-gram of the phrase.

        Longer matches win: once an n-gram matches, its sub-grams are not
        considered, so "gold coast australia" does not also fire on
        "gold".
        """
        matched: list[District] = []
        consumed: set[int] = set()
        for n in (4, 3, 2, 1):
            for start, gram in enumerate(ngrams(tokens, n)):
                positions = set(range(start, start + n))
                if positions & consumed:
                    continue
                hits = self._gazetteer.lookup_alias(" ".join(gram))
                if hits:
                    matched.extend(hits)
                    consumed |= positions
        return matched
