"""Reverse geocoding: GPS coordinates -> administrative path.

This is the library-level equivalent of the Yahoo PlaceFinder lookups the
paper performed for every GPS-tagged tweet (paper §III-B, Fig. 5).  The
:mod:`repro.yahooapi` package wraps this resolver in an XML/HTTP-shaped
client; pipelines that do not need the API simulation can call the
resolver directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeocodingError
from repro.geo.gazetteer import GazetteerBackend
from repro.geo.point import GeoPoint
from repro.geo.region import AdminPath, District


@dataclass(frozen=True, slots=True)
class ReverseGeocodeResult:
    """Result of a reverse-geocode lookup.

    Attributes:
        path: The administrative path (country/state/county/town).
        district: The matched gazetteer district.
        distance_km: Distance from the query point to the district centroid.
        quality: 0-100 score in the PlaceFinder style; decays with distance
            relative to the district radius.
        via_polygon: True when an authoritative boundary polygon resolved
            the point; False for the nearest-centroid path.
    """

    path: AdminPath
    district: District
    distance_km: float
    quality: int
    via_polygon: bool = False


class ReverseGeocoder:
    """Maps GPS points to gazetteer districts.

    Resolution is polygon-first: where the catalogue carries boundary
    polygons, a containment hit is authoritative — Voronoi-style
    nearest-centroid mis-assignments near district borders cannot happen.
    Everywhere else (including both seed catalogues, which ship no
    polygons) the Voronoi-safe nearest-centroid path applies unchanged.

    Args:
        gazetteer: District catalogue to resolve against (any
            :class:`~repro.geo.gazetteer.GazetteerBackend`).
        max_distance_km: Points farther than this from every district
            centroid are considered unresolvable (ocean, wilderness).
            Polygon hits are exempt — being inside the boundary *is* the
            district, however far its centroid sits.
    """

    def __init__(self, gazetteer: GazetteerBackend, max_distance_km: float = 150.0):
        self._gazetteer = gazetteer
        self._max_distance_km = max_distance_km

    @property
    def gazetteer(self) -> GazetteerBackend:
        """The underlying district catalogue."""
        return self._gazetteer

    def resolve(self, point: GeoPoint) -> ReverseGeocodeResult:
        """Resolve ``point`` to a district, polygon-first.

        Raises:
            GeocodingError: if no polygon contains the point and no
                district centroid lies within ``max_distance_km``.
        """
        district = self._gazetteer.polygon_locate(point)
        if district is not None:
            # Inside the surveyed boundary: coordinate-level match, the
            # quality the real PlaceFinder reports for an exact fix.
            return ReverseGeocodeResult(
                path=district.admin_path(),
                district=district,
                distance_km=district.center.distance_km(point),
                quality=87,
                via_polygon=True,
            )
        district = self._gazetteer.nearest(point)
        distance_km = district.center.distance_km(point)
        if distance_km > self._max_distance_km:
            raise GeocodingError(
                f"no district within {self._max_distance_km:.0f} km of {point}"
            )
        return ReverseGeocodeResult(
            path=district.admin_path(),
            district=district,
            distance_km=distance_km,
            quality=self._quality(distance_km, district.radius_km),
        )

    def try_resolve(self, point: GeoPoint) -> ReverseGeocodeResult | None:
        """Like :meth:`resolve` but ``None`` on failure."""
        try:
            return self.resolve(point)
        except GeocodingError:
            return None

    @staticmethod
    def _quality(distance_km: float, radius_km: float) -> int:
        """PlaceFinder-style quality score: 87 inside the district (the score
        the real API reports for coordinate-level matches), decaying once
        the point falls outside the nominal radius."""
        if distance_km <= radius_km:
            return 87
        overshoot = (distance_km - radius_km) / max(radius_km, 0.1)
        return max(10, int(87 - 20 * overshoot))
