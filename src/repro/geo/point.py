"""Geographic points and great-circle math on the WGS-84 sphere.

The paper correlates GPS coordinates attached to tweets with the free-text
location in user profiles.  Everything spatial in this library bottoms out
in :class:`GeoPoint` and the great-circle helpers defined here.

Distances use the haversine formula on a spherical Earth, which is accurate
to ~0.5 % — far below the size of the administrative districts the study
groups by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidCoordinateError

#: Mean Earth radius in kilometres (IUGG).
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """An immutable WGS-84 coordinate pair in decimal degrees.

    Attributes:
        lat: Latitude in degrees, ``-90.0 <= lat <= 90.0``.
        lon: Longitude in degrees, ``-180.0 <= lon <= 180.0``.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.lat) and math.isfinite(self.lon)):
            raise InvalidCoordinateError(f"non-finite coordinate: ({self.lat}, {self.lon})")
        if not -90.0 <= self.lat <= 90.0:
            raise InvalidCoordinateError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise InvalidCoordinateError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Return the great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)

    def destination(self, bearing_deg: float, distance_km: float) -> "GeoPoint":
        """Return the point ``distance_km`` away along ``bearing_deg``.

        Bearings are measured clockwise from true north.  Useful for
        scattering synthetic GPS fixes around a district centroid.
        """
        return destination_point(self, bearing_deg, distance_km)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)`` as a plain tuple."""
        return (self.lat, self.lon)

    def __str__(self) -> str:
        return f"{self.lat:.6f},{self.lon:.6f}"

    @classmethod
    def parse(cls, text: str) -> "GeoPoint":
        """Parse a ``"lat,lon"`` string such as ``"37.5326,126.9904"``.

        Raises:
            InvalidCoordinateError: if the string is not two floats separated
                by a comma, or the values are out of range.
        """
        parts = text.split(",")
        if len(parts) != 2:
            raise InvalidCoordinateError(f"expected 'lat,lon', got {text!r}")
        try:
            lat = float(parts[0].strip())
            lon = float(parts[1].strip())
        except ValueError as exc:
            raise InvalidCoordinateError(f"non-numeric coordinate in {text!r}") from exc
        return cls(lat, lon)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    # Clamp to guard against floating-point overshoot at antipodal points.
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in ``[0, 360)`` degrees."""
    lat1, lat2 = math.radians(a.lat), math.radians(b.lat)
    dlon = math.radians(b.lon - a.lon)
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
    return math.degrees(math.atan2(x, y)) % 360.0


def destination_point(start: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """Return the point reached from ``start`` along a great circle.

    Args:
        start: Starting point.
        bearing_deg: Bearing clockwise from north, in degrees.
        distance_km: Distance to travel, in kilometres (must be >= 0).
    """
    if distance_km < 0:
        raise InvalidCoordinateError(f"negative distance: {distance_km}")
    ang = distance_km / EARTH_RADIUS_KM
    brg = math.radians(bearing_deg)
    lat1 = math.radians(start.lat)
    lon1 = math.radians(start.lon)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(ang) + math.cos(lat1) * math.sin(ang) * math.cos(brg)
    )
    lon2 = lon1 + math.atan2(
        math.sin(brg) * math.sin(ang) * math.cos(lat1),
        math.cos(ang) - math.sin(lat1) * math.sin(lat2),
    )
    lon2 = (math.degrees(lon2) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat2), lon2)


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Great-circle midpoint between ``a`` and ``b``."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2 = math.radians(b.lat)
    dlon = math.radians(b.lon - a.lon)
    bx = math.cos(lat2) * math.cos(dlon)
    by = math.cos(lat2) * math.sin(dlon)
    lat3 = math.atan2(
        math.sin(lat1) + math.sin(lat2),
        math.sqrt((math.cos(lat1) + bx) ** 2 + by**2),
    )
    lon3 = lon1 + math.atan2(by, math.cos(lat1) + bx)
    lon3 = (math.degrees(lon3) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat3), lon3)


def centroid(points: list[GeoPoint]) -> GeoPoint:
    """Spherical centroid (centre of mass on the unit sphere) of ``points``.

    Raises:
        InvalidCoordinateError: if ``points`` is empty.
    """
    if not points:
        raise InvalidCoordinateError("centroid of empty point list")
    x = y = z = 0.0
    for p in points:
        lat = math.radians(p.lat)
        lon = math.radians(p.lon)
        x += math.cos(lat) * math.cos(lon)
        y += math.cos(lat) * math.sin(lon)
        z += math.sin(lat)
    n = len(points)
    x, y, z = x / n, y / n, z / n
    norm = math.sqrt(x * x + y * y + z * z)
    if norm < 1e-12:
        # Degenerate (e.g. two antipodal points); fall back to the first point.
        return points[0]
    lat = math.asin(z / norm)
    lon = math.atan2(y, x)
    return GeoPoint(math.degrees(lat), math.degrees(lon))


def geographic_median(points: list[GeoPoint], iterations: int = 50) -> GeoPoint:
    """Approximate geometric median via Weiszfeld iteration on lat/lon.

    Toretter reports both an estimated *centre* (mean) and an estimated
    *median* of witness locations (paper Fig. 2); the median is robust to
    the far-away retweeters that drag the mean.
    """
    if not points:
        raise InvalidCoordinateError("median of empty point list")
    current = centroid(points)
    for _ in range(iterations):
        num_lat = num_lon = denom = 0.0
        coincident = None
        for p in points:
            d = haversine_km(current, p)
            if d < 1e-9:
                coincident = p
                continue
            w = 1.0 / d
            num_lat += w * p.lat
            num_lon += w * p.lon
            denom += w
        if denom == 0.0:
            return coincident if coincident is not None else current
        nxt = GeoPoint(num_lat / denom, num_lon / denom)
        if haversine_km(current, nxt) < 1e-6:
            return nxt
        current = nxt
    return current
